//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! vendored `serde`'s JSON-tree model, parsing the item token stream by hand
//! (the build environment has no network access, so `syn`/`quote` are not
//! available). Supported shapes — the ones this workspace actually derives:
//!
//! * structs with named fields → JSON objects (deserialization rejects
//!   unknown keys, and reads missing keys as `null` so `Option` fields may be
//!   omitted);
//! * tuple structs — single field is transparent (covers
//!   `#[serde(transparent)]` newtypes), multi-field becomes an array;
//! * enums with unit, tuple and struct variants, externally tagged like serde
//!   (`"Variant"` / `{"Variant": …}`).
//!
//! Generics and `where` clauses are rejected with a `compile_error!`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of the item the derive is attached to.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// One enum variant.
enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<String>),
}

impl Item {
    fn name(&self) -> &str {
        match self {
            Item::NamedStruct { name, .. }
            | Item::TupleStruct { name, .. }
            | Item::UnitStruct { name }
            | Item::Enum { name, .. } => name,
        }
    }
}

/// Derives the vendored `serde::Serialize` (render to a JSON value tree).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(msg) => error(&msg),
    }
}

/// Derives the vendored `serde::Deserialize` (rebuild from a JSON value tree).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Parses `[attrs] [vis] (struct|enum) Name (fields|variants|;)`.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "derive(Serialize): generic type `{name}` is not supported by the vendored serde"
        ));
    }

    match (kind.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream())?,
            })
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(Item::TupleStruct {
                name,
                arity: count_top_level_items(g.stream()),
            })
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => {
            Ok(Item::UnitStruct { name })
        }
        ("struct", None) => Ok(Item::UnitStruct { name }),
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            })
        }
        (k, other) => Err(format!("cannot derive for `{k}` with body {other:?}")),
    }
}

/// Advances past any `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // `#` + `[...]`
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => return i,
        }
    }
}

/// Splits a token stream on top-level commas. Angle brackets are bare puncts
/// (not groups), so generic arguments like `HashMap<K, V>` are tracked by
/// depth; `->` is the only `>` in type position that is not a closer.
fn split_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = vec![Vec::new()];
    let mut depth = 0usize;
    let mut prev_dash = false;
    for tt in stream {
        let mut is_dash = false;
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                ',' if depth == 0 => {
                    out.push(Vec::new());
                    continue;
                }
                '<' => depth += 1,
                '>' if !prev_dash => depth = depth.saturating_sub(1),
                '-' => is_dash = true,
                _ => {}
            }
        }
        prev_dash = is_dash;
        out.last_mut().unwrap().push(tt);
    }
    out.retain(|item| !item.is_empty());
    out
}

fn count_top_level_items(stream: TokenStream) -> usize {
    split_commas(stream).len()
}

/// `field: Type, ...` → field names, skipping attributes and visibility.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    split_commas(stream)
        .into_iter()
        .map(|field| {
            let i = skip_attrs_and_vis(&field, 0);
            match field.get(i) {
                Some(TokenTree::Ident(id)) => Ok(id.to_string()),
                other => Err(format!("expected field name, found {other:?}")),
            }
        })
        .collect()
}

/// `Variant, Variant(T, U), Variant { a: T }, ...`.
fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    split_commas(stream)
        .into_iter()
        .map(|var| {
            let i = skip_attrs_and_vis(&var, 0);
            let name = match var.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => return Err(format!("expected variant name, found {other:?}")),
            };
            match var.get(i + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Ok(Variant::Tuple(name, count_top_level_items(g.stream())))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Ok(Variant::Struct(name, parse_named_fields(g.stream())?))
                }
                _ => Ok(Variant::Unit(name)), // `= discriminant` also lands here
            }
        })
        .collect()
}

fn gen_serialize(item: &Item) -> String {
    let body = match item {
        Item::NamedStruct { fields, .. } => {
            let entries = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_json(&self.{f}))"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::json::Value::Object(vec![{entries}])")
        }
        Item::TupleStruct { arity: 1, .. } => {
            // Single-field newtypes serialize transparently (covers
            // `#[serde(transparent)]`).
            "::serde::Serialize::to_json(&self.0)".to_string()
        }
        Item::TupleStruct { arity, .. } => {
            let entries = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_json(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::json::Value::Array(vec![{entries}])")
        }
        Item::UnitStruct { .. } => "::serde::json::Value::Null".to_string(),
        Item::Enum { name, variants } => {
            let arms = variants
                .iter()
                .map(|v| gen_variant_arm(name, v))
                .collect::<Vec<_>>()
                .join("\n            ");
            format!("match self {{\n            {arms}\n        }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {} {{\n    \
             fn to_json(&self) -> ::serde::json::Value {{\n        {body}\n    }}\n\
         }}",
        item.name()
    )
}

/// One `match self` arm, externally tagged like real serde.
fn gen_variant_arm(enum_name: &str, variant: &Variant) -> String {
    match variant {
        Variant::Unit(v) => {
            format!("{enum_name}::{v} => ::serde::json::Value::String({v:?}.to_string()),")
        }
        Variant::Tuple(v, 1) => format!(
            "{enum_name}::{v}(f0) => ::serde::json::Value::Object(vec![\
                ({v:?}.to_string(), ::serde::Serialize::to_json(f0))]),"
        ),
        Variant::Tuple(v, arity) => {
            let binders = (0..*arity)
                .map(|i| format!("f{i}"))
                .collect::<Vec<_>>()
                .join(", ");
            let items = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_json(f{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{enum_name}::{v}({binders}) => ::serde::json::Value::Object(vec![\
                    ({v:?}.to_string(), ::serde::json::Value::Array(vec![{items}]))]),"
            )
        }
        Variant::Struct(v, fields) => {
            let binders = fields.join(", ");
            let entries = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_json({f}))"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{enum_name}::{v} {{ {binders} }} => ::serde::json::Value::Object(vec![\
                    ({v:?}.to_string(), ::serde::json::Value::Object(vec![{entries}]))]),"
            )
        }
    }
}

/// The expression rebuilding a named-fields body `Ty { a: ..., b: ... }` from
/// the object entries bound to `entries`, with unknown-key rejection.
fn gen_named_body(ty_path: &str, ty_label: &str, fields: &[String]) -> String {
    let known = fields
        .iter()
        .map(|f| format!("{f:?}"))
        .collect::<Vec<_>>()
        .join(", ");
    let inits = fields
        .iter()
        .map(|f| format!("{f}: ::serde::de::field(entries, {f:?}, {ty_label:?})?"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{ ::serde::de::deny_unknown(entries, &[{known}], {ty_label:?})?; \
             ::std::result::Result::Ok({ty_path} {{ {inits} }}) }}"
    )
}

/// The expression rebuilding a tuple body `Ty(...)` of the given arity from
/// the array value bound to `inner`.
fn gen_tuple_body(ty_path: &str, ty_label: &str, arity: usize) -> String {
    let elems = (0..arity)
        .map(|i| format!("::serde::de::element(items, {i}, {ty_label:?})?"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{ let items = ::serde::de::array(inner, {arity}, {ty_label:?})?; \
             ::std::result::Result::Ok({ty_path}({elems})) }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = item.name();
    let body = match item {
        Item::NamedStruct { fields, .. } => format!(
            "let entries = ::serde::de::object(v, {name:?})?;\n        {}",
            gen_named_body(name, name, fields)
        ),
        Item::TupleStruct { arity: 1, .. } => format!(
            // Transparent newtype: delegate straight to the inner field.
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_json(v)\
                 .map_err(|e| format!(\"{name}: {{e}}\"))?))"
        ),
        Item::TupleStruct { arity, .. } => format!(
            "let inner = v;\n        {}",
            gen_tuple_body(name, name, *arity)
        ),
        Item::UnitStruct { .. } => format!(
            "match v {{\n            \
                 ::serde::json::Value::Null => ::std::result::Result::Ok({name}),\n            \
                 other => ::std::result::Result::Err(\
                     format!(\"{name}: expected null, got {{}}\", other.kind())),\n        \
             }}"
        ),
        Item::Enum { name, variants } => {
            // If-chains with early returns rather than `match` arms: an enum
            // with only unit (or only data) variants would otherwise expand to
            // a single-binding match.
            let unit_ifs = variants
                .iter()
                .filter_map(|var| match var {
                    Variant::Unit(v) => Some(format!(
                        "if s == {v:?} {{ return ::std::result::Result::Ok({name}::{v}); }}"
                    )),
                    _ => None,
                })
                .collect::<Vec<_>>()
                .join("\n                ");
            let data_ifs = variants
                .iter()
                .filter_map(|var| {
                    let (v, body) = match var {
                        Variant::Unit(_) => return None,
                        Variant::Tuple(v, 1) => (
                            v,
                            format!(
                                "::std::result::Result::Ok({name}::{v}(\
                                     ::serde::Deserialize::from_json(inner)\
                                     .map_err(|e| format!(\"{name}::{v}: {{e}}\"))?))"
                            ),
                        ),
                        Variant::Tuple(v, arity) => (
                            v,
                            gen_tuple_body(
                                &format!("{name}::{v}"),
                                &format!("{name}::{v}"),
                                *arity,
                            ),
                        ),
                        Variant::Struct(v, fields) => (
                            v,
                            format!(
                                "{{ let entries = ::serde::de::object(inner, \
                                     \"{name}::{v}\")?; {} }}",
                                gen_named_body(
                                    &format!("{name}::{v}"),
                                    &format!("{name}::{v}"),
                                    fields
                                )
                            ),
                        ),
                    };
                    Some(format!("if tag == {v:?} {{ return {body}; }}"))
                })
                .collect::<Vec<_>>()
                .join("\n                ");
            let all = variants
                .iter()
                .map(|var| match var {
                    Variant::Unit(v) | Variant::Tuple(v, _) | Variant::Struct(v, _) => v.as_str(),
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "match v {{\n            \
                     ::serde::json::Value::String(s) => {{\n                \
                         let s = s.as_str();\n                \
                         {unit_ifs}\n                \
                         ::std::result::Result::Err(format!(\
                             \"unknown variant {{s:?}} of {name} (expected one of: {all})\"))\n            \
                     }},\n            \
                     ::serde::json::Value::Object(tagged) if tagged.len() == 1 => {{\n                \
                         let (tag, inner) = &tagged[0];\n                \
                         let tag = tag.as_str();\n                \
                         let _ = inner;\n                \
                         {data_ifs}\n                \
                         ::std::result::Result::Err(format!(\
                             \"unknown variant {{tag:?}} of {name} (expected one of: {all})\"))\n            \
                     }},\n            \
                     other => ::std::result::Result::Err(format!(\
                         \"{name}: expected a variant (string or single-key object), got {{}}\", \
                         other.kind())),\n        \
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n    \
             fn from_json(v: &::serde::json::Value) -> ::std::result::Result<Self, ::std::string::String> {{\n        \
                 {body}\n    \
             }}\n\
         }}"
    )
}
