//! Offline stand-in for `serde_json`: the `to_string` / `to_string_pretty` /
//! `from_str` entry points over the vendored `serde`'s JSON value tree.

#![forbid(unsafe_code)]

pub use serde::json::Value;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization error. Serialization through the vendored
/// pipeline is infallible; deserialization reports parse and shape errors
/// with positions / field paths.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().render(0))
}

/// Serializes `value` as JSON (same layout as [`to_string_pretty`] here).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string_pretty(value)
}

/// Parses a JSON document and rebuilds a `T` from it.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Value::parse(s).map_err(Error)?;
    T::from_json(&value).map_err(Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_vecs_of_values() {
        let rows = vec![1u64, 2, 3];
        assert_eq!(to_string_pretty(&rows).unwrap(), "[\n  1,\n  2,\n  3\n]");
    }

    #[test]
    fn from_str_rebuilds_primitives_and_containers() {
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("0.5").unwrap(), 0.5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"hi\"").unwrap(), "hi");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("3").unwrap(), Some(3));
        assert_eq!(
            from_str::<Vec<(String, u32)>>("[[\"a\", 1], [\"b\", 2]]").unwrap(),
            vec![("a".to_string(), 1), ("b".to_string(), 2)]
        );
    }

    #[test]
    fn from_str_reports_paths_and_positions() {
        let e = from_str::<u64>("\"nope\"").unwrap_err().to_string();
        assert!(e.contains("expected u64"), "{e}");
        let e = from_str::<Vec<u64>>("[1, \"x\"]").unwrap_err().to_string();
        assert!(e.contains("[1]"), "{e}");
        let e = from_str::<u64>("{").unwrap_err().to_string();
        assert!(e.contains("line 1"), "{e}");
    }

    #[test]
    fn round_trips_through_render() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Vec<Option<u32>>>(&s).unwrap(), v);
    }
}
