//! Offline stand-in for `serde_json`: the `to_string` / `to_string_pretty`
//! entry points over the vendored `serde`'s JSON value tree.

#![forbid(unsafe_code)]

pub use serde::json::Value;
use serde::Serialize;

/// Serialization error. The vendored pipeline is infallible, but the public
/// signatures keep `Result` so call sites read like real `serde_json`.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().render(0))
}

/// Serializes `value` as JSON (same layout as [`to_string_pretty`] here).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string_pretty(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_vecs_of_values() {
        let rows = vec![1u64, 2, 3];
        assert_eq!(to_string_pretty(&rows).unwrap(), "[\n  1,\n  2,\n  3\n]");
    }
}
