//! The [`Strategy`] trait and the combinators the workspace's suites use.

use crate::test_runner::TestRng;
use rand::distr::SampleUniform;
use rand::Rng;

/// A generator of random values of type [`Strategy::Value`].
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// simply draws a value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Object-safe view of [`Strategy`] backing [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;

    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy, as returned by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Weighted choice between strategies; built by [`prop_oneof!`](crate::prop_oneof).
pub struct OneOf<T> {
    choices: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> OneOf<T> {
    /// Builds from `(weight, strategy)` pairs. Panics if empty or all-zero.
    pub fn new(choices: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = choices.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        OneOf { choices, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut roll = rng.random_range(0..self.total);
        for (w, strat) in &self.choices {
            if roll < *w {
                return strat.generate(rng);
            }
            roll -= w;
        }
        unreachable!("weights covered above")
    }
}

impl<T: SampleUniform + Copy> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T: SampleUniform + Copy> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
