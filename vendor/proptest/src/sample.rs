//! Sampling strategies over fixed candidate sets: [`select`].

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Picks uniformly from a fixed, non-empty slice of candidates (cloned out of
/// the slice, so the borrow does not outlive the call).
pub fn select<T: Clone>(items: &[T]) -> Select<T> {
    assert!(!items.is_empty(), "select() needs at least one candidate");
    Select {
        items: items.to_vec(),
    }
}

/// Strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.items[rng.random_range(0..self.items.len())].clone()
    }
}
