//! Test configuration and the deterministic case RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration, settable via
/// `#![proptest_config(ProptestConfig { cases: n, ..ProptestConfig::default() })]`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Accepted for source compatibility; this stand-in never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// The RNG strategies draw from: deterministic per test name, so every run of
/// a given test explores the same cases.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Builds the RNG for the named test (FNV-1a over the name).
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(hash))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
