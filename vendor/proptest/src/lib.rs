//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access, so the workspace vendors a
//! miniature property-testing framework with the `proptest` API surface its
//! test suites use: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! [`Strategy`] with `prop_map`/`boxed`, range and tuple strategies,
//! [`collection::vec`], [`sample::select`], [`prop_oneof!`] and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, on purpose: cases are drawn from a
//! deterministic RNG seeded by the test name (every run explores the same
//! cases), and failures are plain panics — there is **no shrinking**. The
//! printed values in assertion messages are the exact failing inputs, so a
//! failure is still directly reproducible.

#![forbid(unsafe_code)]

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The common imports: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

pub use strategy::{BoxedStrategy, Just, Strategy};
pub use test_runner::Config as ProptestConfig;

/// Defines property tests: each `#[test] fn name(binder in strategy, ...)`
/// runs its body over `cases` random draws from the strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — one plain `#[test]` per property.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($binding:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                let _ = case;
                $(let $binding = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property (plain `assert!` here).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (plain `assert_eq!` here).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (plain `assert_ne!` here).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the rest of the current case when the assumption fails. Real proptest
/// retries the case; this stand-in simply moves on to the next one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Picks one of several strategies per case, with optional `weight =>`
/// prefixes.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
