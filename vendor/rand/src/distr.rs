//! Sampling traits: standard (unit-interval / full-range) sampling, uniform
//! ranges, and the [`Distribution`] trait explicit distributions implement.

use crate::Rng;

/// Types samplable "from the standard distribution": unit interval for floats,
/// full range for integers, fair coin for `bool`.
pub trait StandardUniform: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform sampling over a half-open `[low, high)` interval.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[low, high)`; panics if the interval is empty.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Draws uniformly from `[low, high]`; panics if `low > high`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "cannot sample empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                low.wrapping_add(mod_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "cannot sample empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(mod_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

/// Debiased modular reduction (rejection sampling on the top band).
fn mod_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "cannot sample empty range");
                let unit = <$t as StandardUniform>::sample_standard(rng);
                low + unit * (high - low)
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "cannot sample empty range");
                let unit = <$t as StandardUniform>::sample_standard(rng);
                low + unit * (high - low)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range types accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// An explicit distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}
