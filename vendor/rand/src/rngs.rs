//! Bundled generators. [`StdRng`] and [`SmallRng`] are both xoshiro256++;
//! cryptographic strength is not a goal of this offline stand-in.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic RNG (xoshiro256++).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

/// A small, fast RNG — same engine as [`StdRng`] here.
pub type SmallRng = StdRng;

impl StdRng {
    fn from_state(s: [u64; 4]) -> Self {
        // xoshiro's state must not be all-zero.
        if s == [0; 4] {
            StdRng { s: [1, 2, 3, 4] }
        } else {
            StdRng { s }
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step (Blackman & Vigna).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(b);
        }
        StdRng::from_state(s)
    }
}
