//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, deterministic implementation of the `rand 0.9` API surface it
//! actually uses: [`Rng::random`], [`Rng::random_range`], [`Rng::random_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and the slice/iterator
//! helpers in [`seq`]. The generator behind every RNG is xoshiro256++ seeded
//! via SplitMix64 — high quality, fast, and a pure function of the seed, which
//! is all the cycle-based simulator requires.

#![forbid(unsafe_code)]

pub mod distr;
pub mod rngs;
pub mod seq;

/// A source of random `u64`s. The root trait every RNG implements.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with pseudo-random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value whose type supports uniform standard sampling
    /// (`f64`/`f32` in `[0, 1)`, full range for integers, fair `bool`).
    fn random<T: distr::StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from the given range. Panics if the range is empty.
    fn random_range<T, R: distr::SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: distr::Distribution<T>>(&mut self, dist: D) -> T {
        dist.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for the bundled generators).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanding it with SplitMix64 — the
    /// recommended way to get deterministic streams from small seeds.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander (and a fine RNG in its own right).
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    pub(crate) state: u64,
}

impl SplitMix64 {
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: u64 = rng.random_range(0..10);
            assert!(x < 10);
            let y: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
