//! Sequence helpers: shuffling and sampling from slices and iterators.

use crate::Rng;

/// Random operations on slices (both `rand 0.8` and `0.9` call-site styles:
/// `shuffle`, `choose`, and iterator-returning `choose_multiple`).
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// `amount` distinct elements in random order (all of them if the slice is
    /// shorter). Returned as an iterator, as in `rand`.
    fn choose_multiple<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }

    fn choose_multiple<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&T> {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        idx.truncate(amount.min(self.len()));
        idx.into_iter()
            .map(|i| &self[i])
            .collect::<Vec<_>>()
            .into_iter()
    }
}

/// `rand 0.9` name for the read-only half of [`SliceRandom`]; same methods.
pub use SliceRandom as IndexedRandom;

/// Random sampling from iterators (reservoir sampling, single pass).
pub trait IteratorRandom: Iterator + Sized {
    /// Uniformly random element, or `None` if the iterator is empty.
    fn choose<R: Rng + ?Sized>(mut self, rng: &mut R) -> Option<Self::Item> {
        let mut chosen = self.next()?;
        for (seen, item) in (2usize..).zip(self) {
            if rng.random_range(0..seen) == 0 {
                chosen = item;
            }
        }
        Some(chosen)
    }

    /// `amount` elements sampled without replacement (all of them if the
    /// iterator is shorter), in random order.
    fn choose_multiple<R: Rng + ?Sized>(mut self, rng: &mut R, amount: usize) -> Vec<Self::Item> {
        let mut reservoir: Vec<Self::Item> = Vec::with_capacity(amount);
        for _ in 0..amount {
            match self.next() {
                Some(item) => reservoir.push(item),
                None => break,
            }
        }
        for (seen, item) in (reservoir.len() + 1..).zip(self) {
            let j = rng.random_range(0..seen);
            if j < reservoir.len() {
                reservoir[j] = item;
            }
        }
        reservoir.as_mut_slice().shuffle(rng);
        reservoir
    }
}

impl<I: Iterator> IteratorRandom for I {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_multiple_is_distinct() {
        let mut rng = StdRng::seed_from_u64(2);
        let v: Vec<u32> = (0..20).collect();
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 5).copied().collect();
        assert_eq!(picked.len(), 5);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 5);
    }

    #[test]
    fn iterator_choose_multiple_handles_short_input() {
        let mut rng = StdRng::seed_from_u64(3);
        let picked = (0..3).choose_multiple(&mut rng, 10);
        assert_eq!(picked.len(), 3);
    }
}
