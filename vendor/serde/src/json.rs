//! The JSON value tree [`Serialize`](crate::Serialize) renders into, plus the
//! pretty printer `serde_json::to_string_pretty` delegates to.

/// A JSON value. Numbers keep their already-formatted literal so integer
/// precision is never lost through an `f64` round-trip.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A numeric literal, pre-formatted (e.g. `"42"`, `"0.5"`).
    Number(String),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Renders the value as pretty-printed JSON at the given indent level
    /// (two spaces per level).
    pub fn render(&self, indent: usize) -> String {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Value::Null => "null".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Number(n) => n.clone(),
            Value::String(s) => escape(s),
            Value::Array(items) => {
                if items.is_empty() {
                    return "[]".to_string();
                }
                let body = items
                    .iter()
                    .map(|v| format!("{pad}{}", v.render(indent + 1)))
                    .collect::<Vec<_>>()
                    .join(",\n");
                format!("[\n{body}\n{close}]")
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    return "{}".to_string();
                }
                let body = fields
                    .iter()
                    .map(|(k, v)| format!("{pad}{}: {}", escape(k), v.render(indent + 1)))
                    .collect::<Vec<_>>()
                    .join(",\n");
                format!("{{\n{body}\n{close}}}")
            }
        }
    }
}

/// JSON string escaping.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("a\"b".into())),
            (
                "xs".into(),
                Value::Array(vec![Value::Number("1".into()), Value::Null]),
            ),
        ]);
        let s = v.render(0);
        assert!(s.contains("\"name\": \"a\\\"b\""));
        assert!(s.contains("\"xs\": [\n    1,\n    null\n  ]"));
    }

    #[test]
    fn empty_collections_are_compact() {
        assert_eq!(Value::Array(vec![]).render(0), "[]");
        assert_eq!(Value::Object(vec![]).render(0), "{}");
    }
}
