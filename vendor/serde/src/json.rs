//! The JSON value tree [`Serialize`](crate::Serialize) renders into, plus the
//! pretty printer `serde_json::to_string_pretty` delegates to and the parser
//! `serde_json::from_str` starts from.

/// A JSON value. Numbers keep their already-formatted literal so integer
/// precision is never lost through an `f64` round-trip.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A numeric literal, pre-formatted (e.g. `"42"`, `"0.5"`).
    Number(String),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Parses a JSON document into a value tree. Errors carry the offending
    /// line and column, so a typo in a hand-written file points at itself.
    pub fn parse(input: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON document"));
        }
        Ok(v)
    }

    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Looks a key up, if this is an object (first match; missing = `None`).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// A short description of the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Number(_) => "a number",
            Value::String(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        }
    }
    /// Renders the value as pretty-printed JSON at the given indent level
    /// (two spaces per level).
    pub fn render(&self, indent: usize) -> String {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Value::Null => "null".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Number(n) => n.clone(),
            Value::String(s) => escape(s),
            Value::Array(items) => {
                if items.is_empty() {
                    return "[]".to_string();
                }
                let body = items
                    .iter()
                    .map(|v| format!("{pad}{}", v.render(indent + 1)))
                    .collect::<Vec<_>>()
                    .join(",\n");
                format!("[\n{body}\n{close}]")
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    return "{}".to_string();
                }
                let body = fields
                    .iter()
                    .map(|(k, v)| format!("{pad}{}: {}", escape(k), v.render(indent + 1)))
                    .collect::<Vec<_>>()
                    .join(",\n");
                format!("{{\n{body}\n{close}}}")
            }
        }
    }
}

/// Maximum nesting depth the parser accepts (guards the recursion).
const MAX_DEPTH: usize = 128;

/// A minimal recursive-descent JSON parser over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    /// Formats `msg` with the current line:column position.
    fn err(&self, msg: &str) -> String {
        let (mut line, mut col) = (1usize, 1usize);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        format!("JSON parse error at line {line}, column {col}: {msg}")
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Consumes `lit` (after its first byte has been peeked).
    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nested too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.pos += 1; // `[`
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.pos += 1; // `{`
        let mut entries: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string object key"));
            }
            let key = self.string()?;
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate object key {key:?}")));
            }
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.pos += 1; // opening `"`
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a `\uXXXX` low half must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    return Err(self.err("unpaired surrogate escape"));
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        other => {
                            return Err(self.err(&format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 character (the input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("truncated unicode escape"))?;
        let v =
            u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape digits"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        let int_digits = self.digits();
        if int_digits == 0 {
            return Err(self.err("expected digits in number"));
        }
        if int_digits > 1 && self.bytes[int_start] == b'0' {
            return Err(self.err("leading zeros are not allowed"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.digits() == 0 {
                return Err(self.err("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        Ok(Value::Number(text.to_string()))
    }

    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }
}

/// JSON string escaping.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("a\"b".into())),
            (
                "xs".into(),
                Value::Array(vec![Value::Number("1".into()), Value::Null]),
            ),
        ]);
        let s = v.render(0);
        assert!(s.contains("\"name\": \"a\\\"b\""));
        assert!(s.contains("\"xs\": [\n    1,\n    null\n  ]"));
    }

    #[test]
    fn empty_collections_are_compact() {
        assert_eq!(Value::Array(vec![]).render(0), "[]");
        assert_eq!(Value::Object(vec![]).render(0), "{}");
    }

    #[test]
    fn parses_scalars_and_collections() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(
            Value::parse("-12.5e3").unwrap(),
            Value::Number("-12.5e3".into())
        );
        assert_eq!(
            Value::parse(r#""a\"b\u0041\n""#).unwrap(),
            Value::String("a\"bA\n".into())
        );
        assert_eq!(
            Value::parse("[1, [], {\"k\": \"v\"}]").unwrap(),
            Value::Array(vec![
                Value::Number("1".into()),
                Value::Array(vec![]),
                Value::Object(vec![("k".into(), Value::String("v".into()))]),
            ])
        );
    }

    #[test]
    fn parse_render_round_trips() {
        let text = r#"{
  "name": "demo",
  "xs": [
    1,
    null,
    "two"
  ],
  "nested": {
    "ok": true
  }
}"#;
        let v = Value::parse(text).unwrap();
        assert_eq!(v.render(0), text);
        assert_eq!(Value::parse(&v.render(0)).unwrap(), v);
    }

    #[test]
    fn parse_errors_carry_positions() {
        let e = Value::parse("{\n  \"a\": 1,\n  \"b\" 2\n}").unwrap_err();
        assert!(e.contains("line 3"), "{e}");
        assert!(Value::parse("[1, 2").unwrap_err().contains("expected"));
        assert!(Value::parse("[1] tail").unwrap_err().contains("trailing"));
        assert!(Value::parse("{\"a\":1,\"a\":2}")
            .unwrap_err()
            .contains("duplicate"));
        assert!(Value::parse("01").unwrap_err().contains("leading zeros"));
        assert!(Value::parse("\"\\q\"").unwrap_err().contains("escape"));
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = Value::parse("{\"a\": [1], \"b\": \"s\"}").unwrap();
        assert_eq!(v.get("b").and_then(Value::as_str), Some("s"));
        assert_eq!(
            v.get("a").and_then(Value::as_array).map(<[Value]>::len),
            Some(1)
        );
        assert!(v.get("missing").is_none());
        assert_eq!(v.kind(), "an object");
    }
}
