//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of serde it uses: `#[derive(Serialize)]` producing JSON trees (pretty
//! printed by the vendored `serde_json`), and `#[derive(Deserialize)]` as a
//! marker (nothing in the workspace deserializes yet). The full serde data
//! model (visitors, serializers, zero-copy) is deliberately out of scope.

#![forbid(unsafe_code)]

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

/// A type renderable as a JSON value tree.
///
/// Unlike real serde this is not format-agnostic: the only consumer in the
/// workspace is JSON experiment output, so the trait goes straight to
/// [`json::Value`].
pub trait Serialize {
    /// Renders `self` as a JSON value.
    fn to_json(&self) -> json::Value;
}

/// Marker for types that would be deserializable; no workspace code
/// deserializes, so there are no required methods.
pub trait Deserialize: Sized {}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> json::Value {
                json::Value::Number(self.to_string())
            }
        }
        impl Deserialize for $t {}
    )*};
}
impl_ser_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> json::Value {
                if self.is_finite() {
                    json::Value::Number(format!("{self:?}"))
                } else {
                    json::Value::Null
                }
            }
        }
        impl Deserialize for $t {}
    )*};
}
impl_ser_float!(f32, f64);

impl Serialize for bool {
    fn to_json(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for String {
    fn to_json(&self) -> json::Value {
        json::Value::String(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for str {
    fn to_json(&self) -> json::Value {
        json::Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_json(&self) -> json::Value {
        json::Value::String(self.to_string())
    }
}
impl Deserialize for char {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> json::Value {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json(&self) -> json::Value {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_json(&self) -> json::Value {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_json(&self) -> json::Value {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> json::Value {
        match self {
            Some(v) => v.to_json(),
            None => json::Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> json::Value {
        self.as_slice().to_json()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> json::Value {
        self.as_slice().to_json()
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_json(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_json(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::HashSet<T> {
    fn to_json(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

/// Renders a map key: JSON object keys must be strings, so string-ish keys are
/// used verbatim and any other key type falls back to its JSON rendering.
fn key_string<K: Serialize>(key: &K) -> String {
    match key.to_json() {
        json::Value::String(s) => s,
        json::Value::Number(n) => n,
        other => other.render(0),
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json(&self) -> json::Value {
        json::Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k), v.to_json()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_json(&self) -> json::Value {
        let mut entries: Vec<(String, json::Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k), v.to_json()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        json::Value::Object(entries)
    }
}

impl Serialize for () {
    fn to_json(&self) -> json::Value {
        json::Value::Null
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json(&self) -> json::Value {
                json::Value::Array(vec![$(self.$idx.to_json()),+])
            }
        }
    )*};
}
impl_ser_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
