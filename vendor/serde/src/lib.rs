//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of serde it uses: `#[derive(Serialize)]` producing JSON trees (pretty
//! printed by the vendored `serde_json`), and `#[derive(Deserialize)]`
//! rebuilding values from parsed JSON trees (`serde_json::from_str`). The full
//! serde data model (visitors, format-agnostic serializers, zero-copy) is
//! deliberately out of scope: both traits go straight to [`json::Value`].

#![forbid(unsafe_code)]

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

/// A type renderable as a JSON value tree.
///
/// Unlike real serde this is not format-agnostic: the only consumer in the
/// workspace is JSON experiment output, so the trait goes straight to
/// [`json::Value`].
pub trait Serialize {
    /// Renders `self` as a JSON value.
    fn to_json(&self) -> json::Value;
}

/// A type rebuildable from a JSON value tree (the inverse of [`Serialize`]).
///
/// Errors are plain strings carrying a field path (e.g.
/// `"ScenarioSpec.phases[2].steps: expected an integer, got a string"`), so a
/// typo in a hand-written spec file reports itself precisely.
pub trait Deserialize: Sized {
    /// Rebuilds a value from a JSON tree.
    fn from_json(v: &json::Value) -> Result<Self, String>;
}

/// Helpers the `#[derive(Deserialize)]` expansion calls into. Public because
/// generated code references them; not intended for direct use.
pub mod de {
    use crate::json::Value;
    use crate::Deserialize;

    /// Expects an object, naming `ty` on mismatch.
    pub fn object<'v>(v: &'v Value, ty: &str) -> Result<&'v [(String, Value)], String> {
        v.as_object()
            .ok_or_else(|| format!("{ty}: expected an object, got {}", v.kind()))
    }

    /// Rejects keys that name no field of `ty` — a typo in a hand-written
    /// file must fail loudly, not silently deserialize to defaults.
    pub fn deny_unknown(
        entries: &[(String, Value)],
        known: &[&str],
        ty: &str,
    ) -> Result<(), String> {
        for (k, _) in entries {
            if !known.contains(&k.as_str()) {
                return Err(format!(
                    "{ty}: unknown field {k:?} (expected one of {known:?})"
                ));
            }
        }
        Ok(())
    }

    /// Deserializes the field `key` of `ty`; a missing key reads as `null`
    /// (so `Option` fields may simply be omitted).
    pub fn field<T: Deserialize>(
        entries: &[(String, Value)],
        key: &str,
        ty: &str,
    ) -> Result<T, String> {
        let v = entries
            .iter()
            .find(|(k, _)| k == key)
            .map_or(&Value::Null, |(_, v)| v);
        T::from_json(v).map_err(|e| format!("{ty}.{key}: {e}"))
    }

    /// Expects an array of exactly `n` items, naming `ty` on mismatch.
    pub fn array<'v>(v: &'v Value, n: usize, ty: &str) -> Result<&'v [Value], String> {
        let items = v
            .as_array()
            .ok_or_else(|| format!("{ty}: expected an array, got {}", v.kind()))?;
        if items.len() != n {
            return Err(format!(
                "{ty}: expected {n} array items, got {}",
                items.len()
            ));
        }
        Ok(items)
    }

    /// Deserializes item `idx` of an exact-arity array (tuple structs/variants).
    pub fn element<T: Deserialize>(items: &[Value], idx: usize, ty: &str) -> Result<T, String> {
        T::from_json(&items[idx]).map_err(|e| format!("{ty}[{idx}]: {e}"))
    }
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> json::Value {
                json::Value::Number(self.to_string())
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &json::Value) -> Result<Self, String> {
                match v {
                    json::Value::Number(n) => n.parse::<$t>().map_err(|_| {
                        format!(
                            "expected {}, got the number `{n}`",
                            stringify!($t)
                        )
                    }),
                    other => Err(format!(
                        "expected {}, got {}",
                        stringify!($t),
                        other.kind()
                    )),
                }
            }
        }
    )*};
}
impl_ser_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> json::Value {
                if self.is_finite() {
                    json::Value::Number(format!("{self:?}"))
                } else {
                    json::Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &json::Value) -> Result<Self, String> {
                match v {
                    json::Value::Number(n) => n
                        .parse::<$t>()
                        .map_err(|_| format!("invalid number literal `{n}`")),
                    // Note: `Serialize` renders non-finite floats as null, so
                    // they do NOT round-trip — deliberately. Accepting null
                    // here would turn every *missing* required float field
                    // into a silent NaN (missing keys read as null), gutting
                    // the fail-loudly contract.
                    other => Err(format!("expected a number, got {}", other.kind())),
                }
            }
        }
    )*};
}
impl_ser_float!(f32, f64);

impl Serialize for bool {
    fn to_json(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_json(v: &json::Value) -> Result<Self, String> {
        match v {
            json::Value::Bool(b) => Ok(*b),
            other => Err(format!("expected a boolean, got {}", other.kind())),
        }
    }
}

impl Serialize for String {
    fn to_json(&self) -> json::Value {
        json::Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_json(v: &json::Value) -> Result<Self, String> {
        match v {
            json::Value::String(s) => Ok(s.clone()),
            other => Err(format!("expected a string, got {}", other.kind())),
        }
    }
}

impl Serialize for str {
    fn to_json(&self) -> json::Value {
        json::Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_json(&self) -> json::Value {
        json::Value::String(self.to_string())
    }
}
impl Deserialize for char {
    fn from_json(v: &json::Value) -> Result<Self, String> {
        match v {
            json::Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(format!(
                "expected a one-character string, got {}",
                other.kind()
            )),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> json::Value {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json(&self) -> json::Value {
        (**self).to_json()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(v: &json::Value) -> Result<Self, String> {
        T::from_json(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_json(&self) -> json::Value {
        (**self).to_json()
    }
}
impl<T: Deserialize> Deserialize for std::rc::Rc<T> {
    fn from_json(v: &json::Value) -> Result<Self, String> {
        T::from_json(v).map(std::rc::Rc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_json(&self) -> json::Value {
        (**self).to_json()
    }
}
impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_json(v: &json::Value) -> Result<Self, String> {
        T::from_json(v).map(std::sync::Arc::new)
    }
}

// `Arc<str>`/`Rc<str>`/`Box<str>` don't fit the sized blanket impls above;
// interned strings (e.g. attribute names) deserialize through these.
impl Deserialize for std::sync::Arc<str> {
    fn from_json(v: &json::Value) -> Result<Self, String> {
        String::from_json(v).map(Into::into)
    }
}
impl Deserialize for std::rc::Rc<str> {
    fn from_json(v: &json::Value) -> Result<Self, String> {
        String::from_json(v).map(Into::into)
    }
}
impl Deserialize for Box<str> {
    fn from_json(v: &json::Value) -> Result<Self, String> {
        String::from_json(v).map(Into::into)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> json::Value {
        match self {
            Some(v) => v.to_json(),
            None => json::Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &json::Value) -> Result<Self, String> {
        match v {
            json::Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> json::Value {
        self.as_slice().to_json()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> json::Value {
        self.as_slice().to_json()
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &json::Value) -> Result<Self, String> {
        match v {
            json::Value::Array(items) => items
                .iter()
                .enumerate()
                .map(|(i, item)| T::from_json(item).map_err(|e| format!("[{i}]: {e}")))
                .collect(),
            other => Err(format!("expected an array, got {}", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_json(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_json(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::HashSet<T> {
    fn to_json(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

/// Renders a map key: JSON object keys must be strings, so string-ish keys are
/// used verbatim and any other key type falls back to its JSON rendering.
fn key_string<K: Serialize>(key: &K) -> String {
    match key.to_json() {
        json::Value::String(s) => s,
        json::Value::Number(n) => n,
        other => other.render(0),
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json(&self) -> json::Value {
        json::Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k), v.to_json()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_json(&self) -> json::Value {
        let mut entries: Vec<(String, json::Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k), v.to_json()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        json::Value::Object(entries)
    }
}

impl Serialize for () {
    fn to_json(&self) -> json::Value {
        json::Value::Null
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json(&self) -> json::Value {
                json::Value::Array(vec![$(self.$idx.to_json()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json(v: &json::Value) -> Result<Self, String> {
                const N: usize = [$($idx),+].len();
                let items = de::array(v, N, "tuple")?;
                Ok(($(de::element::<$name>(items, $idx, "tuple")?,)+))
            }
        }
    )*};
}
impl_ser_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
