//! Offline stand-in for `criterion`.
//!
//! The build environment has no network access, so the workspace vendors the
//! API surface its micro-benchmarks use: [`Criterion::bench_function`],
//! [`Bencher::iter`], [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Timing is a plain
//! wall-clock mean over a short, fixed measurement window — no statistics, no
//! HTML reports — which is enough for `cargo bench --no-run` CI gating and for
//! eyeballing relative numbers locally.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized; accepted for source compatibility, all
/// variants behave identically here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The benchmark driver handed to bench functions.
pub struct Criterion {
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            measurement: self.measurement,
            report: None,
        };
        body(&mut bencher);
        match bencher.report {
            Some((iters, total)) => {
                let per_iter = total.as_nanos() / u128::from(iters.max(1));
                println!("bench {name:<40} {per_iter:>12} ns/iter ({iters} iters)");
            }
            None => println!("bench {name:<40} (no measurement)"),
        }
        self
    }
}

/// Runs the measured routine and records timing.
pub struct Bencher {
    measurement: Duration,
    report: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `routine` over a short measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up round, also a safety net for very slow routines.
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed();
        let mut iters = 1u64;
        let mut total = first;
        let deadline = self.measurement;
        while total < deadline && iters < 1_000_000 {
            let start = Instant::now();
            black_box(routine());
            total += start.elapsed();
            iters += 1;
        }
        self.report = Some((iters, total));
    }

    /// Times `routine` over fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut iters = 0u64;
        let mut total = Duration::ZERO;
        while (total < self.measurement && iters < 1_000_000) || iters == 0 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.report = Some((iters, total));
    }
}

/// Declares a benchmark group: a function invoking each target in turn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports() {
        let mut c = Criterion {
            measurement: Duration::from_millis(1),
        };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
