//! Offline stand-in for `rand_chacha`.
//!
//! Exposes the `ChaCha*Rng` type names used for deterministic simulation
//! streams. The build environment has no network access, so instead of the
//! real ChaCha stream cipher these wrap the vendored xoshiro256++ engine —
//! equally deterministic and seed-stable, which is the property the simulator
//! relies on (cryptographic strength is not).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

macro_rules! chacha_like {
    ($(#[$doc:meta] $name:ident),*) => {$(
        #[$doc]
        #[derive(Debug, Clone)]
        pub struct $name(StdRng);

        impl RngCore for $name {
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: [u8; 32]) -> Self {
                $name(StdRng::from_seed(seed))
            }
        }
    )*};
}

chacha_like!(
    /// Stand-in for the 8-round ChaCha RNG.
    ChaCha8Rng,
    /// Stand-in for the 12-round ChaCha RNG.
    ChaCha12Rng,
    /// Stand-in for the 20-round ChaCha RNG.
    ChaCha20Rng
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_stable() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
