//! Offline stand-in for `rand_distr`: just the [`Zipf`] distribution the
//! workload generator needs, sampled with Hörmann & Derflinger's
//! rejection-inversion method (the same algorithm the real crate uses), plus a
//! re-export of the [`Distribution`] trait.

#![forbid(unsafe_code)]

pub use rand::distr::Distribution;
use rand::Rng;

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// The Zipf distribution over ranks `1..=n`: `P(k) ∝ k^(−s)`.
///
/// Matches the `rand_distr 0.5` constructor signature (`n` as `f64`) and
/// samples `f64` ranks in `1..=n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf {
    n: f64,
    s: f64,
    h_x1: f64,
    h_n: f64,
    threshold: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `1..=n` with exponent `s ≥ 0`.
    pub fn new(n: f64, s: f64) -> Result<Zipf, ParamError> {
        if n < 1.0 || !n.is_finite() {
            return Err(ParamError("n must be a finite value >= 1"));
        }
        if s < 0.0 || !s.is_finite() {
            return Err(ParamError("s must be a finite value >= 0"));
        }
        let h_x1 = h_integral(1.5, s) - 1.0;
        let h_n = h_integral(n + 0.5, s);
        let threshold = 2.0 - h_integral_inverse(h_integral(2.5, s) - h(2.0, s), s);
        Ok(Zipf {
            n,
            s,
            h_x1,
            h_n,
            threshold,
        })
    }
}

/// `H(x) = ∫₁ˣ t^(−s) dt` (shifted antiderivative of the weight function).
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    if (1.0 - s).abs() < 1e-12 {
        log_x
    } else {
        ((1.0 - s) * log_x).exp_m1() / (1.0 - s)
    }
}

/// The weight function `h(x) = x^(−s)`.
fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

/// Inverse of [`h_integral`].
fn h_integral_inverse(x: f64, s: f64) -> f64 {
    if (1.0 - s).abs() < 1e-12 {
        x.exp()
    } else {
        let t = (x * (1.0 - s)).max(-1.0);
        (t.ln_1p() / (1.0 - s)).exp()
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Hörmann & Derflinger rejection-inversion, as in Apache Commons'
        // RejectionInversionZipfSampler and rand_distr itself.
        loop {
            let u = self.h_n + rng.random::<f64>() * (self.h_x1 - self.h_n);
            let x = h_integral_inverse(u, self.s);
            let k = x.round().clamp(1.0, self.n);
            if k - x <= self.threshold || u >= h_integral(k + 0.5, self.s) - h(k, self.s) {
                return k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(100.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = z.sample(&mut rng);
            assert!((1.0..=100.0).contains(&v), "out of range: {v}");
        }
    }

    #[test]
    fn rank_one_dominates() {
        let z = Zipf::new(100.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 101];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[1] > 10 * counts[50].max(1));
    }

    #[test]
    fn s_zero_is_uniform_ish() {
        let z = Zipf::new(10.0, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 11];
        for _ in 0..2_000 {
            seen[z.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1..].iter().all(|s| *s));
    }

    #[test]
    fn rejects_bad_params() {
        assert!(Zipf::new(0.0, 1.0).is_err());
        assert!(Zipf::new(10.0, -1.0).is_err());
        assert!(Zipf::new(f64::NAN, 1.0).is_err());
    }
}
