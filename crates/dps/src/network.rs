//! [`DpsNetwork`]: the high-level driver tying protocol nodes, the cycle-based
//! simulator and the omniscient oracle together.

use std::collections::HashSet;
use std::sync::Arc;

use dps_content::{
    match_mode, Event, Filter, FilterIndex, MatchMode, MatchScratch, SharedEvent, SharedFilter,
};

use crate::error::DpsError;
use dps_overlay::model::ForestModel;
use dps_overlay::{CountingSink, DpsConfig, DpsNode, GroupLabel, JoinRule, PubId, SubId};
use dps_sim::{
    FaultPlan, LatencyHistogram, LatencyModel, LatencySummary, Metrics, NodeId, Sim, SimSnapshot,
    Step,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Delivery accounting for one published event.
#[derive(Debug, Clone)]
pub struct DeliveryReport {
    /// The publication.
    pub id: PubId,
    /// Step at which it was published.
    pub published_at: Step,
    /// Subscribers that were alive and matching at publish time.
    pub expected: HashSet<NodeId>,
    /// The subset of `expected` the publisher could reach at publish time: no
    /// active partition absolutely cut the publisher → subscriber pair. A
    /// window only cuts a pair when it severs the direct link *and* no alive
    /// bridge node (assigned to no side of that window) could relay across.
    /// Equals `expected` when no partition was in force.
    pub reachable: HashSet<NodeId>,
    /// Of the expected subscribers, how many were actually notified (so far).
    pub delivered: usize,
    /// Distinct nodes the dissemination touched (so far).
    pub contacted: usize,
    /// Publish→deliver latency percentiles over the expected subscribers that
    /// were notified: each sample is `first-notify step − published_at`.
    /// `latency.samples == 0` when nothing was delivered yet.
    pub latency: LatencySummary,
}

/// Ground truth recorded for one publication at publish time.
#[derive(Debug, Clone)]
struct PubRecord {
    id: PubId,
    at: Step,
    expected: HashSet<NodeId>,
    /// Expected subscribers not cut off from the publisher by an active
    /// partition (see [`DeliveryReport::reachable`]).
    reachable: HashSet<NodeId>,
}

/// A snapshot of one distributed group, collected from live node state; used by
/// tests to compare the distributed overlay against the reference model.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSnapshot {
    /// The group's label.
    pub label: GroupLabel,
    /// Label of its parent group, as recorded at the group leader.
    pub parent: Option<GroupLabel>,
    /// Members, sorted.
    pub members: Vec<NodeId>,
}

/// A network of DPS nodes under simulation. See the [crate docs](crate).
pub struct DpsNetwork {
    sim: Sim<DpsNode>,
    cfg: DpsConfig,
    /// The one config allocation every node shares (see
    /// `DpsNode::with_shared_config`): joins clone the `Arc`, not the config.
    node_cfg: Arc<DpsConfig>,
    sink: Arc<CountingSink>,
    oracle: ForestModel,
    /// Live filters keyed `(node, sub)`, maintained by subscribe/unsubscribe
    /// (the oracle's subscription list is append-only, so matching uses this
    /// registry) — a counting-algorithm index, scan restorable via
    /// `DPS_MATCH=scan`.
    filters: FilterIndex<(NodeId, SubId)>,
    /// Reusable scratch + hit buffer for `filters` queries.
    match_scratch: MatchScratch,
    match_hits: Vec<(NodeId, SubId)>,
    pubs: Vec<PubRecord>,
    rng: StdRng,
    /// Reusable buffer for peer sampling (avoids per-join allocations).
    scratch: Vec<NodeId>,
}

impl DpsNetwork {
    /// Creates an empty network; all nodes will run `cfg`. Runs are a pure
    /// function of `seed` and the sequence of driver calls.
    pub fn new(cfg: DpsConfig, seed: u64) -> Self {
        DpsNetwork::new_sharded(cfg, seed, 1)
    }

    /// Creates an empty network whose simulation executes on `shards`
    /// parallel shards (the `DPS_SHARDS` knob of the experiment runners).
    /// Every observable outcome — delivery reports, metrics, group snapshots
    /// — is **byte-identical** to [`DpsNetwork::new`] with the same seed;
    /// sharding only spreads one run's work across cores. The facade itself
    /// stays synchronous: driver calls run between steps, exactly as before.
    pub fn new_sharded(cfg: DpsConfig, seed: u64, shards: usize) -> Self {
        DpsNetwork {
            sim: Sim::new_sharded(seed, shards),
            node_cfg: Arc::new(cfg.clone()),
            cfg,
            sink: Arc::new(CountingSink::new()),
            oracle: ForestModel::new(),
            filters: FilterIndex::new(),
            match_scratch: MatchScratch::new(),
            match_hits: Vec::new(),
            pubs: Vec::new(),
            rng: StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
            scratch: Vec::new(),
        }
    }

    /// Adds one node, bootstrapped with a random sample of existing nodes as
    /// peers (and registered as a peer of a few existing nodes, so joins are
    /// discoverable in both directions).
    pub fn add_node(&mut self) -> NodeId {
        // Both samples are drawn from the pre-join population.
        let sample = self.sample_alive(self.cfg.peer_view.min(8));
        let introducers = self.sample_alive(3);
        let sink: Arc<dyn dps_overlay::StatsSink> = self.sink.clone();
        let mut node = DpsNode::with_shared_config(self.node_cfg.clone(), sink);
        node.seed_peers(sample);
        let id = self.sim.add_node(node);
        // Symmetric introduction: a few existing peers learn about the newcomer.
        for p in introducers {
            if let Some(n) = self.sim.node_mut(p) {
                n.seed_peers(vec![id]);
            }
        }
        id
    }

    /// Adds `n` nodes.
    pub fn add_nodes(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_node()).collect()
    }

    /// Picks up to `n` distinct alive nodes, uniformly, via a partial
    /// Fisher–Yates shuffle over the scratch buffer: exactly `min(n, alive)`
    /// picks, no rejection loop.
    fn sample_alive(&mut self, n: usize) -> Vec<NodeId> {
        self.scratch.clear();
        self.scratch.extend(self.sim.alive());
        let take = n.min(self.scratch.len());
        for i in 0..take {
            let j = self.rng.random_range(i..self.scratch.len());
            self.scratch.swap(i, j);
        }
        self.scratch[..take].to_vec()
    }

    /// Issues a subscription from `node`. The predicate used to join the overlay
    /// is the filter's first one under [`JoinRule::First`], or picked uniformly at
    /// random under [`JoinRule::Explicit`] (the paper's "arbitrarily chosen").
    ///
    /// Errors with [`DpsError::EmptyFilter`] on a predicate-less filter and
    /// [`DpsError::NodeDead`] when `node` is not alive.
    pub fn try_subscribe(
        &mut self,
        node: NodeId,
        filter: impl Into<SharedFilter>,
    ) -> Result<SubId, DpsError> {
        let filter = filter.into();
        if filter.is_empty() {
            return Err(DpsError::EmptyFilter);
        }
        if !self.sim.is_alive(node) {
            return Err(DpsError::NodeDead(node));
        }
        let join_idx = match self.cfg.join_rule {
            JoinRule::First => 0,
            JoinRule::Explicit => self.rng.random_range(0..filter.predicates().len()),
        };
        // Wrapped once (by `into`); the oracle, the node's filter index and
        // the facade registry all share that one allocation.
        self.oracle.subscribe(node, &filter, join_idx);
        let mut out = None;
        let f = filter.clone();
        self.sim.invoke(node, |n, ctx| {
            out = Some(n.subscribe_with(f, join_idx, ctx));
        });
        let sub_id = out.ok_or(DpsError::NodeDead(node))?;
        self.filters.insert((node, sub_id), filter);
        Ok(sub_id)
    }

    /// Deprecated spelling of [`try_subscribe`](Self::try_subscribe): collapses
    /// every refusal into `None`.
    #[deprecated(since = "0.2.0", note = "use try_subscribe (or a session Subscriber)")]
    pub fn subscribe(&mut self, node: NodeId, filter: Filter) -> Option<SubId> {
        self.try_subscribe(node, filter).ok()
    }

    /// Cancels a subscription previously issued through this facade.
    ///
    /// Errors with [`DpsError::UnknownSubscription`] when `(node, sub_id)` is
    /// not a live registration. Cancelling on a dead node still removes the
    /// registration (the overlay side died with the node) but reports
    /// [`DpsError::NodeDead`].
    pub fn try_unsubscribe(&mut self, node: NodeId, sub_id: SubId) -> Result<(), DpsError> {
        if self.filters.remove((node, sub_id)) == 0 {
            return Err(DpsError::UnknownSubscription { node, sub: sub_id });
        }
        if !self.sim.is_alive(node) {
            return Err(DpsError::NodeDead(node));
        }
        self.sim.invoke(node, |n, ctx| n.unsubscribe(sub_id, ctx));
        Ok(())
    }

    /// Deprecated spelling of [`try_unsubscribe`](Self::try_unsubscribe):
    /// ignores every refusal.
    #[deprecated(
        since = "0.2.0",
        note = "use try_unsubscribe (or close the session Subscriber)"
    )]
    pub fn unsubscribe(&mut self, node: NodeId, sub_id: SubId) {
        let _ = self.try_unsubscribe(node, sub_id);
    }

    /// Deprecated spelling of [`try_publish`](Self::try_publish): collapses
    /// every refusal into `None`.
    #[deprecated(since = "0.2.0", note = "use try_publish (or a session Publisher)")]
    pub fn publish(&mut self, node: NodeId, event: Event) -> Option<PubId> {
        self.try_publish(node, event).ok()
    }

    /// Publishes `event` from `node`, recording the ground-truth recipient set
    /// (alive matching subscribers at publish time) for delivery accounting.
    ///
    /// Errors with [`DpsError::NodeDead`] when the publisher is not alive.
    pub fn try_publish(
        &mut self,
        node: NodeId,
        event: impl Into<SharedEvent>,
    ) -> Result<PubId, DpsError> {
        let event = event.into();
        if !self.sim.is_alive(node) {
            return Err(DpsError::NodeDead(node));
        }
        // Scan the registry by reference; the event itself is moved into the
        // node, not cloned.
        let sim = &self.sim;
        let now = sim.now();
        let expected: HashSet<NodeId> = match match_mode() {
            MatchMode::Scan => self
                .filters
                .entries()
                .filter(|(_, f)| f.matches(&event))
                .map(|((n, _), _)| n)
                .filter(|n| sim.is_alive(*n))
                .collect(),
            MatchMode::Index => {
                self.filters
                    .matching_into(&event, &mut self.match_scratch, &mut self.match_hits);
                self.match_hits
                    .iter()
                    .map(|(n, _)| *n)
                    .filter(|n| sim.is_alive(*n))
                    .collect()
            }
        };
        // Reachability is per active window and transitive through bridges: a
        // subscriber on the far side of a cut still counts as reachable when
        // some *alive* node sits in no side of that window (it can relay
        // across), so only absolute cuts shrink the reachable set.
        let fault = sim.fault_plan();
        let reachable: HashSet<NodeId> = expected
            .iter()
            .copied()
            .filter(|s| {
                !fault
                    .active_partitions(now)
                    .any(|w| w.severs(node, *s) && !sim.alive().any(|b| w.side_of(b).is_none()))
            })
            .collect();
        let mut out = None;
        self.sim.invoke(node, |n, ctx| {
            out = Some(n.publish(event, ctx));
        });
        let id = out.ok_or(DpsError::NodeDead(node))?;
        self.pubs.push(PubRecord {
            id,
            at: now,
            expected,
            reachable,
        });
        Ok(id)
    }

    /// Runs `steps` simulation steps.
    pub fn run(&mut self, steps: u64) {
        self.sim.run(steps);
    }

    /// Runs until every issued subscription is placed in a group, or `max_steps`
    /// elapse. Returns whether the overlay fully converged.
    pub fn quiesce(&mut self, max_steps: u64) -> bool {
        for _ in 0..max_steps {
            if self.pending_subscriptions() == 0 {
                return true;
            }
            self.sim.step();
        }
        self.pending_subscriptions() == 0
    }

    /// Total subscriptions still in flight across alive nodes.
    pub fn pending_subscriptions(&self) -> usize {
        self.sim
            .alive()
            .filter_map(|id| self.sim.node(id))
            .map(|n| n.pending_subscriptions())
            .sum()
    }

    /// Crashes a specific node.
    pub fn crash(&mut self, node: NodeId) {
        self.sim.crash(node);
    }

    /// Crashes a uniformly random alive node; returns it. Shard-aware with
    /// the same global-id-order guarantee as [`random_alive`](Self::random_alive).
    pub fn crash_random(&mut self) -> Option<NodeId> {
        let n = self.sim.alive_count();
        if n == 0 {
            return None;
        }
        let victim = self.sim.nth_alive(self.rng.random_range(0..n))?;
        self.sim.crash(victim);
        Some(victim)
    }

    /// A uniformly random alive node (e.g. the next publisher), drawn from the
    /// simulation's driver RNG. Allocation-free; shard-aware: the pick walks
    /// the alive set in **global id order** (never shard-major order), so the
    /// chosen node — and therefore the whole scenario — is identical whatever
    /// [`shards`](Self::shards) is.
    pub fn random_alive(&mut self) -> Option<NodeId> {
        let n = self.sim.alive_count();
        if n == 0 {
            return None;
        }
        let k = rand::Rng::random_range(self.sim.rng(), 0..n);
        self.sim.nth_alive(k)
    }

    /// Number of execution shards the underlying simulation runs on.
    pub fn shards(&self) -> usize {
        self.sim.shard_count()
    }

    // ---- link faults: partitions and lossy links ----

    /// Starts a partition **now**, splitting the id space at `boundary`: node
    /// indices `< boundary` form side `"low"`, all others (including nodes
    /// that join while the partition holds) side `"high"`. Cross-side
    /// messages are dropped at delivery time and accounted as
    /// [`dps_sim::DropReason::Partitioned`]. The partition holds until
    /// [`heal`](Self::heal).
    ///
    /// ```
    /// use dps::{DpsConfig, DpsNetwork};
    /// use dps_sim::DropReason;
    ///
    /// let mut net = DpsNetwork::new(DpsConfig::default(), 1);
    /// net.add_nodes(10);
    /// net.partition_split(5);
    /// net.run(50); // heartbeats across the cut all drop
    /// assert!(net.metrics().dropped_for(DropReason::Partitioned) > 0);
    /// net.heal();
    /// ```
    pub fn partition_split(&mut self, boundary: usize) {
        let now = self.sim.now();
        self.sim
            .fault_plan_mut()
            .add_split(now, Step::MAX, boundary);
    }

    /// Starts a partition **now** with explicitly named sides; nodes listed
    /// in no side keep talking to everyone. Holds until [`heal`](Self::heal).
    pub fn partition<S: AsRef<str>>(&mut self, sides: &[(S, Vec<NodeId>)]) {
        let now = self.sim.now();
        self.sim
            .fault_plan_mut()
            .add_partition(now, Step::MAX, sides);
    }

    /// Starts an **asymmetric** split **now**: only one direction of
    /// cross-boundary traffic is cut — `"low"` (indices `< boundary`) toward
    /// `"high"` when `low_to_high` is true, the reverse otherwise. The open
    /// direction keeps delivering (a half-broken uplink). Holds until
    /// [`heal`](Self::heal).
    pub fn partition_split_oneway(&mut self, boundary: usize, low_to_high: bool) {
        let now = self.sim.now();
        self.sim
            .fault_plan_mut()
            .add_split_oneway(now, Step::MAX, boundary, low_to_high);
    }

    /// Ends every partition currently in force; returns how many were open.
    /// Future windows scheduled on the plan are untouched.
    pub fn heal(&mut self) -> usize {
        let now = self.sim.now();
        self.sim.fault_plan_mut().heal_at(now)
    }

    /// Sets the default loss rate of **every** link: each delivery drops with
    /// probability `rate`, sampled from the simulation RNG (runs stay a pure
    /// function of the seed). Drops are accounted as
    /// [`dps_sim::DropReason::Loss`]. `rate = 0.0` turns loss back off.
    pub fn set_loss(&mut self, rate: f64) {
        self.sim.fault_plan_mut().set_default_loss(rate);
    }

    /// Sets the loss rate of the directed link `from -> to` only (overrides
    /// the default rate for that link).
    pub fn set_link_loss(&mut self, from: NodeId, to: NodeId, rate: f64) {
        self.sim.fault_plan_mut().set_link_loss(from, to, rate);
    }

    /// Installs a complete link-fault schedule, replacing the current one.
    /// The scenario layer lowers spec files into a [`FaultPlan`] whose
    /// partition and loss windows carry absolute steps and installs it here
    /// in one shot; the interactive methods above remain for tests that
    /// drive faults imperatively.
    pub fn schedule_faults(&mut self, plan: FaultPlan) {
        self.sim.set_fault_plan(plan);
    }

    /// The link-fault schedule in force.
    pub fn fault_plan(&self) -> &FaultPlan {
        self.sim.fault_plan()
    }

    // ---- measurement ----

    /// Per-publication delivery reports.
    pub fn reports(&self) -> Vec<DeliveryReport> {
        self.pubs
            .iter()
            .map(|p| {
                let mut delivered = 0usize;
                let mut hist = LatencyHistogram::new();
                for n in &p.expected {
                    if let Some(step) = self.sink.notify_step(p.id, *n) {
                        delivered += 1;
                        hist.record(step.saturating_sub(p.at));
                    }
                }
                DeliveryReport {
                    id: p.id,
                    published_at: p.at,
                    expected: p.expected.clone(),
                    reachable: p.reachable.clone(),
                    delivered,
                    contacted: self.sink.contacted(p.id),
                    latency: hist.summary(),
                }
            })
            .collect()
    }

    /// Installs the link-latency model for this run. Must be called on a
    /// fresh network, **before** [`add_nodes`](Self::add_nodes) (the
    /// simulator rejects later installs). The default is
    /// [`LatencyModel::Unit`] — the classic cycle engine, byte for byte.
    ///
    /// Errors with [`DpsError::InvalidLatency`] on a malformed model and
    /// [`DpsError::LatencyAfterStart`] once the simulation has moved.
    pub fn try_set_latency(&mut self, model: LatencyModel) -> Result<(), DpsError> {
        if let Err(e) = model.validate() {
            return Err(DpsError::InvalidLatency(e));
        }
        if self.sim.now() != 0 || self.sim.snapshot().in_flight != 0 {
            return Err(DpsError::LatencyAfterStart);
        }
        self.sim.set_latency(model);
        Ok(())
    }

    /// Deprecated spelling of [`try_set_latency`](Self::try_set_latency):
    /// panics on refusal.
    #[deprecated(since = "0.2.0", note = "use try_set_latency")]
    pub fn set_latency(&mut self, model: LatencyModel) {
        self.sim.set_latency(model);
    }

    /// Publish→deliver latency percentiles over every `(publication, expected
    /// subscriber)` pair that was delivered, for publications issued in
    /// `[from, to)`. Each sample is `first-notify step − publish step`; under
    /// the default unit-latency model this counts overlay hops.
    pub fn latency_summary_between(&self, from: Step, to: Step) -> LatencySummary {
        let mut hist = LatencyHistogram::new();
        for p in &self.pubs {
            if p.at < from || p.at >= to {
                continue;
            }
            for n in &p.expected {
                if let Some(step) = self.sink.notify_step(p.id, *n) {
                    hist.record(step.saturating_sub(p.at));
                }
            }
        }
        hist.summary()
    }

    /// [`latency_summary_between`](Self::latency_summary_between) over the
    /// whole run.
    pub fn latency_summary(&self) -> LatencySummary {
        self.latency_summary_between(0, Step::MAX)
    }

    /// Ratio of correctly delivered events: over all `(publication, matching
    /// alive subscriber)` pairs, the fraction that were notified (the measure of
    /// Figures 3(a)/3(b)). Returns 1.0 when nothing was expected.
    pub fn delivered_ratio(&self) -> f64 {
        self.delivered_ratio_between(0, Step::MAX)
    }

    /// [`delivered_ratio`](Self::delivered_ratio) restricted to publications
    /// issued in `[from, to)`.
    pub fn delivered_ratio_between(&self, from: Step, to: Step) -> f64 {
        self.ratio_between(from, to, |p| &p.expected)
    }

    /// Like [`delivered_ratio`](Self::delivered_ratio), but counting only the
    /// `(publication, subscriber)` pairs that were **reachable** at publish
    /// time: subscribers on the far side of an active partition are excluded
    /// from the denominator. This is the fair dependability measure while a
    /// partition holds — no protocol can deliver across an absolute cut — and
    /// it equals [`delivered_ratio`](Self::delivered_ratio) in fault-free runs.
    pub fn delivered_ratio_reachable(&self) -> f64 {
        self.delivered_ratio_reachable_between(0, Step::MAX)
    }

    /// [`delivered_ratio_reachable`](Self::delivered_ratio_reachable)
    /// restricted to publications issued in `[from, to)`.
    pub fn delivered_ratio_reachable_between(&self, from: Step, to: Step) -> f64 {
        self.ratio_between(from, to, |p| &p.reachable)
    }

    fn ratio_between<F>(&self, from: Step, to: Step, population: F) -> f64
    where
        F: Fn(&PubRecord) -> &HashSet<NodeId>,
    {
        let mut expected = 0usize;
        let mut delivered = 0usize;
        for p in &self.pubs {
            if p.at < from || p.at >= to {
                continue;
            }
            let pop = population(p);
            expected += pop.len();
            delivered += pop
                .iter()
                .filter(|n| self.sink.was_notified(p.id, **n))
                .count();
        }
        if expected == 0 {
            1.0
        } else {
            delivered as f64 / expected as f64
        }
    }

    /// The instrumentation sink (contact/notify pairs).
    pub fn sink(&self) -> &CountingSink {
        &self.sink
    }

    /// The omniscient reference model fed with every subscription issued through
    /// this driver.
    pub fn oracle(&self) -> &ForestModel {
        &self.oracle
    }

    /// Message-traffic metrics from the simulator (merged across shards).
    pub fn metrics(&self) -> Metrics {
        self.sim.metrics()
    }

    /// Direct access to the underlying simulator.
    pub fn sim(&self) -> &Sim<DpsNode> {
        &self.sim
    }

    /// Mutable access to the underlying simulator (scenario drivers).
    pub fn sim_mut(&mut self) -> &mut Sim<DpsNode> {
        &mut self.sim
    }

    /// Summary snapshot.
    pub fn snapshot(&self) -> SimSnapshot {
        self.sim.snapshot()
    }

    /// Collects the distributed forest as recorded at group leaders: one
    /// [`GroupSnapshot`] per led group. With leader-based communication and a
    /// quiesced network this is directly comparable to [`Self::oracle`].
    pub fn distributed_groups(&self) -> Vec<GroupSnapshot> {
        let mut out = Vec::new();
        for id in self.sim.alive() {
            let Some(n) = self.sim.node(id) else { continue };
            for m in n.memberships() {
                if !m.is_leader() {
                    continue;
                }
                let mut members = m.members.clone();
                members.sort_unstable();
                members.dedup();
                out.push(GroupSnapshot {
                    label: m.label.clone(),
                    parent: m.predview.first().map(|r| r.label.clone()),
                    members,
                });
            }
        }
        out.sort_by_key(|g| format!("{}", g.label));
        out
    }
}

impl std::fmt::Debug for DpsNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DpsNetwork")
            .field("snapshot", &self.sim.snapshot())
            .field("pubs", &self.pubs.len())
            .finish_non_exhaustive()
    }
}

// The facade's own sink wiring: nodes must share the network-wide CountingSink.
// `DpsNetwork::new` builds nodes through this constructor.
impl DpsNetwork {
    /// Replaces the node factory wiring: rebuilds the network empty with the same
    /// seed but a fresh sink. (Internal convenience for tests.)
    #[doc(hidden)]
    pub fn reset(&mut self, seed: u64) {
        *self = DpsNetwork::new(self.cfg.clone(), seed);
    }
}
