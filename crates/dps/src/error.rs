//! [`DpsError`]: the typed error surface of the session-first API.
//!
//! Every fallible entry point of the facade — the [`DpsNetwork`] `try_*`
//! methods and the [`session`](crate::session) handles — returns
//! `Result<_, DpsError>` instead of panicking or silently returning `None`
//! on misuse. The broker/client stack (`dps-broker`, `dps-client`) reuses the
//! same enum for its transport and protocol failures, so one error type spans
//! the simulated and the served system.
//!
//! [`DpsNetwork`]: crate::DpsNetwork

use std::fmt;

use dps_overlay::SubId;
use dps_sim::NodeId;

/// Why a DPS operation was refused. Non-exhaustive: downstream layers (the
/// framed broker transport) grow variants without breaking matches.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DpsError {
    /// The target node is not alive (crashed, or never existed).
    NodeDead(NodeId),
    /// A subscription filter with no predicates: there is no attribute to
    /// join the overlay on. Subscribe with at least one predicate.
    EmptyFilter,
    /// The subscription is not registered on that node (wrong id, already
    /// cancelled, or issued outside the facade).
    UnknownSubscription {
        /// The node the cancel was addressed to.
        node: NodeId,
        /// The unknown subscription id.
        sub: SubId,
    },
    /// A session or handle was used after `close()`.
    SessionClosed,
    /// A latency model was installed after the simulation started moving
    /// (models must be set on a fresh network, before any step or message).
    LatencyAfterStart,
    /// The latency model itself is invalid (zero/inverted bounds, …).
    InvalidLatency(String),
    /// A transport-level failure (socket/channel I/O) in the broker stack.
    Transport(String),
    /// A wire-protocol violation (bad frame, version mismatch, unexpected
    /// message) in the broker stack.
    Protocol(String),
}

impl fmt::Display for DpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpsError::NodeDead(n) => write!(f, "node {} is not alive", n.index()),
            DpsError::EmptyFilter => write!(f, "subscription filter has no predicates"),
            DpsError::UnknownSubscription { node, sub } => {
                write!(f, "no subscription {sub:?} on node {}", node.index())
            }
            DpsError::SessionClosed => write!(f, "session is closed"),
            DpsError::LatencyAfterStart => write!(
                f,
                "latency model must be installed on a fresh network, before any step"
            ),
            DpsError::InvalidLatency(e) => write!(f, "invalid latency model: {e}"),
            DpsError::Transport(e) => write!(f, "transport error: {e}"),
            DpsError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for DpsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_cause() {
        let e = DpsError::NodeDead(NodeId::from_index(7));
        assert_eq!(e.to_string(), "node 7 is not alive");
        assert!(DpsError::EmptyFilter.to_string().contains("no predicates"));
        assert!(DpsError::Transport("boom".into())
            .to_string()
            .contains("boom"));
    }
}
