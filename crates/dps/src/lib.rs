//! **DPS** — Dynamic Publish/Subscribe: a self-\* peer-to-peer content-based
//! publish/subscribe system.
//!
//! This crate is the user-facing entry point of the reproduction of
//! *"A Semantic Overlay for Self-\* Peer-to-Peer Publish/Subscribe"*
//! (Anceaume, Datta, Gradinariu, Simon, Virgillito — ICDCS 2006). It re-exports
//! the content model ([`dps_content`]), the protocol engine ([`dps_overlay`]) and
//! the simulator ([`dps_sim`]), and adds [`DpsNetwork`]: a batteries-included
//! driver that builds a network of DPS nodes, runs it step by step, injects
//! subscriptions, publications and failures, and measures delivery against an
//! omniscient oracle.
//!
//! # Quickstart
//!
//! ```
//! use dps::{DpsNetwork, DpsConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small network running the root-based + leader-based flavor.
//! let mut net = DpsNetwork::new(DpsConfig::default(), 42);
//! let nodes = net.add_nodes(8);
//!
//! // Subscribers self-organize into per-attribute semantic trees.
//! net.subscribe(nodes[0], "price > 100".parse()?);
//! net.subscribe(nodes[1], "price > 100 & price < 200".parse()?);
//! net.subscribe(nodes[2], "price < 50".parse()?);
//! net.run(120); // let the overlay converge
//!
//! // Publish an event; only matching subscribers are notified.
//! net.publish(nodes[7], "price = 150".parse()?);
//! net.run(40);
//!
//! assert_eq!(net.delivered_ratio(), 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod network;

pub use dps_content::{
    AttrName, AttrType, Event, Filter, Op, ParseError, Predicate, SharedEvent, SharedFilter, Value,
};
pub use dps_overlay::{
    model, CommKind, CountingSink, DpsConfig, DpsMsg, DpsNode, GroupLabel, JoinRule, PubId,
    StatsSink, SubId, TraversalKind,
};
pub use dps_sim::{
    ChurnEvent, ChurnPlan, CutDir, DropReason, FaultPlan, LatencyHistogram, LatencyModel,
    LatencySummary, Metrics, MsgClass, NodeId, Sim, SimRng, Step,
};

pub use network::{DeliveryReport, DpsNetwork, GroupSnapshot};
