//! **DPS** — Dynamic Publish/Subscribe: a self-\* peer-to-peer content-based
//! publish/subscribe system.
//!
//! This crate is the user-facing entry point of the reproduction of
//! *"A Semantic Overlay for Self-\* Peer-to-Peer Publish/Subscribe"*
//! (Anceaume, Datta, Gradinariu, Simon, Virgillito — ICDCS 2006). It re-exports
//! the content model ([`dps_content`]), the protocol engine ([`dps_overlay`]) and
//! the simulator ([`dps_sim`]), and adds two surfaces on top:
//!
//! - the **session-first API** ([`Hub`] → [`Session`] →
//!   [`Publisher`]/[`Subscriber`]) — how applications attach to the system,
//!   with explicit open/close lifecycle and [`DpsError`]-typed failures. The
//!   `dps-client` crate exposes the same shape against a live `dps-broker`
//!   process, so application code ports across backends unchanged;
//! - the **simulation driver** ([`DpsNetwork`]) — builds a network of DPS
//!   nodes, runs it step by step, injects subscriptions, publications and
//!   failures, and measures delivery against an omniscient oracle.
//!
//! # Quickstart
//!
//! ```
//! use dps::{DpsConfig, Event, Hub};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small network running the root-based + leader-based flavor.
//! let hub = Hub::new(DpsConfig::default(), 42);
//! hub.add_nodes(8); // background overlay population
//!
//! // Subscribers self-organize into per-attribute semantic trees.
//! let trader = hub.open_session()?;
//! let ticks = trader.subscriber("price > 100".parse::<dps::Filter>()?)?;
//! hub.run(120); // let the overlay converge
//!
//! // Publish an event; only matching subscribers are notified.
//! let feed = hub.open_session()?;
//! feed.publisher()?.publish("price = 150".parse::<Event>()?)?;
//! hub.run(40);
//!
//! assert_eq!(ticks.drain().len(), 1);
//! assert_eq!(hub.delivered_ratio(), 1.0);
//! trader.close()?;
//! feed.close()?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod network;
pub mod session;

pub use error::DpsError;
pub use session::{Delivery, Hub, Publisher, Session, Subscriber};

pub use dps_content::{
    AttrName, AttrType, Event, Filter, Op, ParseError, Predicate, SharedEvent, SharedFilter, Value,
};
pub use dps_overlay::{
    model, CommKind, CountingSink, DpsConfig, DpsMsg, DpsNode, GroupLabel, JoinRule, PubId,
    StatsSink, SubId, TraversalKind,
};
pub use dps_sim::{
    ChurnEvent, ChurnPlan, CutDir, DropReason, FaultPlan, LatencyHistogram, LatencyModel,
    LatencySummary, Metrics, MsgClass, NodeId, Sim, SimRng, Step,
};

pub use network::{DeliveryReport, DpsNetwork, GroupSnapshot};
