//! The session-first API: [`Hub`] → [`Session`] → [`Publisher`]/[`Subscriber`].
//!
//! [`DpsNetwork`] is a simulation driver: it pokes nodes from the outside and
//! measures against an oracle. An *application*, though, holds a connection to
//! the system, subscribes, publishes, and receives events — whether the system
//! is this in-process simulation or a remote `dps-broker` process. This module
//! is the in-process side of that shared surface; the `dps-client` crate
//! implements the same `Session`/`Publisher`/`Subscriber` shape over a framed
//! transport, both returning [`DpsError`] and yielding [`Delivery`] values, so
//! application code is written once against either backend.
//!
//! # Lifecycle
//!
//! A [`Hub`] owns the network. [`Hub::open_session`] attaches one application
//! endpoint (a dedicated overlay node); the session hands out [`Publisher`]
//! and [`Subscriber`] handles; [`Session::close`] (and
//! [`Subscriber::close`]) tear down explicitly — handles used after a close
//! report [`DpsError::SessionClosed`] instead of panicking.
//!
//! ```
//! use dps::session::Hub;
//! use dps::DpsConfig;
//!
//! # fn main() -> Result<(), dps::DpsError> {
//! let hub = Hub::new(DpsConfig::default(), 42);
//! hub.add_nodes(8); // background overlay population
//!
//! let trader = hub.open_session()?;
//! let ticks = trader.subscriber("price > 100".parse::<dps::Filter>().unwrap())?;
//!
//! let feed = hub.open_session()?;
//! let quotes = feed.publisher()?;
//! hub.run(120); // let the overlay converge
//!
//! quotes.publish("price = 150".parse::<dps::Event>().unwrap())?;
//! hub.run(40);
//!
//! let got = ticks.drain();
//! assert_eq!(got.len(), 1);
//! assert_eq!(got[0].event.to_string(), "price = 150");
//! trader.close()?;
//! feed.close()?;
//! # Ok(())
//! # }
//! ```

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use dps_content::{SharedEvent, SharedFilter};
use dps_overlay::{DpsConfig, PubId, SubId};
use dps_sim::NodeId;

use crate::error::DpsError;
use crate::network::DpsNetwork;

/// One event handed to a [`Subscriber`]: the publication identity plus the
/// (refcounted) event body. The broker client yields the same shape, so code
/// consuming deliveries ports across backends unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Index of the publishing node.
    pub publisher: u64,
    /// The publisher's per-node publication sequence number.
    pub seq: u32,
    /// The event body.
    pub event: SharedEvent,
}

impl Delivery {
    /// The simulator-side publication id this delivery corresponds to.
    pub fn pub_id(&self) -> PubId {
        PubId(NodeId::from_index(self.publisher as usize), self.seq)
    }
}

struct SubEntry {
    id: SubId,
    filter: SharedFilter,
    inbox: Rc<RefCell<VecDeque<Delivery>>>,
    open: Rc<Cell<bool>>,
}

struct SessionShared {
    node: NodeId,
    open: bool,
    subs: Vec<SubEntry>,
    /// Scratch for draining the sink's watch queue.
    drain_buf: Vec<(PubId, SharedEvent)>,
}

/// An in-process session host: a [`DpsNetwork`] that applications attach to
/// through [`Session`] handles. Cloning a `Hub` is cheap (it shares the one
/// network); `Hub` is single-threaded by design — the simulation itself
/// spreads across cores via [`DpsNetwork::new_sharded`].
#[derive(Clone)]
pub struct Hub {
    net: Rc<RefCell<DpsNetwork>>,
}

impl Hub {
    /// A hub over a fresh network; see [`DpsNetwork::new`].
    pub fn new(cfg: DpsConfig, seed: u64) -> Self {
        Hub::from_network(DpsNetwork::new(cfg, seed))
    }

    /// A hub over a fresh sharded network; see [`DpsNetwork::new_sharded`].
    pub fn new_sharded(cfg: DpsConfig, seed: u64, shards: usize) -> Self {
        Hub::from_network(DpsNetwork::new_sharded(cfg, seed, shards))
    }

    /// Wraps an existing network (keeps its nodes, subscriptions, history).
    pub fn from_network(net: DpsNetwork) -> Self {
        Hub {
            net: Rc::new(RefCell::new(net)),
        }
    }

    /// Adds `n` background overlay nodes (population that routes and hosts
    /// groups but has no application session attached).
    pub fn add_nodes(&self, n: usize) -> Vec<NodeId> {
        self.net.borrow_mut().add_nodes(n)
    }

    /// Opens a session on a **new** overlay node.
    pub fn open_session(&self) -> Result<Session, DpsError> {
        let node = self.net.borrow_mut().add_node();
        self.session_at(node)
    }

    /// Opens a session attached to an existing alive node. One session per
    /// node: a second session on the same node would steal its deliveries.
    pub fn session_at(&self, node: NodeId) -> Result<Session, DpsError> {
        if !self.net.borrow().sim().is_alive(node) {
            return Err(DpsError::NodeDead(node));
        }
        Ok(Session {
            net: self.net.clone(),
            shared: Rc::new(RefCell::new(SessionShared {
                node,
                open: true,
                subs: Vec::new(),
                drain_buf: Vec::new(),
            })),
        })
    }

    /// Advances the simulation `steps` steps.
    pub fn run(&self, steps: u64) {
        self.net.borrow_mut().run(steps);
    }

    /// Runs until every issued subscription is placed, or `max_steps` elapse;
    /// returns whether the overlay fully converged.
    pub fn quiesce(&self, max_steps: u64) -> bool {
        self.net.borrow_mut().quiesce(max_steps)
    }

    /// Ratio of correctly delivered events (see
    /// [`DpsNetwork::delivered_ratio`]).
    pub fn delivered_ratio(&self) -> f64 {
        self.net.borrow().delivered_ratio()
    }

    /// Escape hatch: runs `f` with the underlying network (faults, metrics,
    /// oracle — the whole driver surface).
    ///
    /// # Panics
    ///
    /// Panics if called re-entrantly from within `f` itself.
    pub fn with_network<R>(&self, f: impl FnOnce(&mut DpsNetwork) -> R) -> R {
        f(&mut self.net.borrow_mut())
    }
}

impl std::fmt::Debug for Hub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hub")
            .field("net", &self.net.borrow())
            .finish()
    }
}

/// One application endpoint on a [`Hub`]: a dedicated overlay node plus the
/// handles attached to it. Explicit lifecycle: [`Session::close`] cancels the
/// session's live subscriptions and invalidates its handles.
pub struct Session {
    net: Rc<RefCell<DpsNetwork>>,
    shared: Rc<RefCell<SessionShared>>,
}

impl Session {
    /// The overlay node this session speaks as.
    pub fn node(&self) -> NodeId {
        self.shared.borrow().node
    }

    /// Whether the session is still open.
    pub fn is_open(&self) -> bool {
        self.shared.borrow().open
    }

    /// A publish handle. Cheap; any number may coexist.
    pub fn publisher(&self) -> Result<Publisher, DpsError> {
        if !self.is_open() {
            return Err(DpsError::SessionClosed);
        }
        Ok(Publisher {
            net: self.net.clone(),
            shared: self.shared.clone(),
        })
    }

    /// Subscribes this session to `filter` and returns the receive handle.
    pub fn subscriber(&self, filter: impl Into<SharedFilter>) -> Result<Subscriber, DpsError> {
        if !self.is_open() {
            return Err(DpsError::SessionClosed);
        }
        let filter = filter.into();
        let node = self.node();
        let id = self.net.borrow_mut().try_subscribe(node, filter.clone())?;
        // Payload retention starts with the first subscriber.
        self.net.borrow().sink().watch(node);
        let inbox = Rc::new(RefCell::new(VecDeque::new()));
        let open = Rc::new(Cell::new(true));
        self.shared.borrow_mut().subs.push(SubEntry {
            id,
            filter: filter.clone(),
            inbox: inbox.clone(),
            open: open.clone(),
        });
        Ok(Subscriber {
            net: self.net.clone(),
            shared: self.shared.clone(),
            id,
            filter,
            inbox,
            open,
        })
    }

    /// Closes the session: cancels every live subscription, stops payload
    /// retention and invalidates all handles. Idempotence is an error by
    /// design — a second close reports [`DpsError::SessionClosed`].
    pub fn close(self) -> Result<(), DpsError> {
        let mut shared = self.shared.borrow_mut();
        if !shared.open {
            return Err(DpsError::SessionClosed);
        }
        shared.open = false;
        let node = shared.node;
        let mut net = self.net.borrow_mut();
        for s in shared.subs.drain(..) {
            s.open.set(false);
            // Best effort: the node may have crashed mid-run; the registration
            // is removed either way.
            let _ = net.try_unsubscribe(node, s.id);
        }
        net.sink().unwatch(node);
        Ok(())
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.shared.borrow();
        f.debug_struct("Session")
            .field("node", &s.node.index())
            .field("open", &s.open)
            .field("subs", &s.subs.len())
            .finish()
    }
}

/// Demultiplexes the session node's watched deliveries into the per-subscriber
/// inboxes (each delivery fans out to every live subscriber whose filter
/// matches).
fn pump(net: &Rc<RefCell<DpsNetwork>>, shared: &Rc<RefCell<SessionShared>>) {
    let mut s = shared.borrow_mut();
    let s = &mut *s;
    let net = net.borrow();
    net.sink().drain_deliveries(s.node, &mut s.drain_buf);
    for (id, event) in s.drain_buf.drain(..) {
        for sub in s.subs.iter().filter(|e| e.open.get()) {
            if sub.filter.matches(&event) {
                sub.inbox.borrow_mut().push_back(Delivery {
                    publisher: id.0.index() as u64,
                    seq: id.1,
                    event: event.clone(),
                });
            }
        }
    }
}

/// Publish handle of a [`Session`].
pub struct Publisher {
    net: Rc<RefCell<DpsNetwork>>,
    shared: Rc<RefCell<SessionShared>>,
}

impl Publisher {
    /// Publishes `event` from the session's node.
    pub fn publish(&self, event: impl Into<SharedEvent>) -> Result<PubId, DpsError> {
        let node = {
            let s = self.shared.borrow();
            if !s.open {
                return Err(DpsError::SessionClosed);
            }
            s.node
        };
        self.net.borrow_mut().try_publish(node, event)
    }
}

impl std::fmt::Debug for Publisher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Publisher")
            .field("node", &self.shared.borrow().node.index())
            .finish()
    }
}

/// Receive handle for one subscription of a [`Session`].
pub struct Subscriber {
    net: Rc<RefCell<DpsNetwork>>,
    shared: Rc<RefCell<SessionShared>>,
    id: SubId,
    filter: SharedFilter,
    inbox: Rc<RefCell<VecDeque<Delivery>>>,
    open: Rc<Cell<bool>>,
}

impl Subscriber {
    /// The subscription id on the session's node.
    pub fn id(&self) -> SubId {
        self.id
    }

    /// The subscription's filter.
    pub fn filter(&self) -> &SharedFilter {
        &self.filter
    }

    /// Next delivery, if one is queued. Events arrive as the simulation runs
    /// ([`Hub::run`]); this never blocks.
    pub fn recv(&self) -> Option<Delivery> {
        if !self.open.get() {
            return None;
        }
        pump(&self.net, &self.shared);
        self.inbox.borrow_mut().pop_front()
    }

    /// Everything queued so far, oldest first.
    pub fn drain(&self) -> Vec<Delivery> {
        if !self.open.get() {
            return Vec::new();
        }
        pump(&self.net, &self.shared);
        self.inbox.borrow_mut().drain(..).collect()
    }

    /// Cancels this subscription (the session stays open).
    pub fn close(self) -> Result<(), DpsError> {
        if !self.open.get() {
            return Err(DpsError::SessionClosed);
        }
        self.open.set(false);
        let mut s = self.shared.borrow_mut();
        s.subs.retain(|e| e.id != self.id);
        let node = s.node;
        let last = s.subs.is_empty();
        drop(s);
        let mut net = self.net.borrow_mut();
        let out = net.try_unsubscribe(node, self.id);
        if last {
            net.sink().unwatch(node);
        }
        out
    }
}

impl std::fmt::Debug for Subscriber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscriber")
            .field("id", &self.id)
            .field("filter", &self.filter.to_string())
            .field("open", &self.open.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DpsConfig;
    use dps_content::Event;

    fn event(s: &str) -> Event {
        s.parse().unwrap()
    }

    #[test]
    fn session_lifecycle_delivers_and_closes() {
        let hub = Hub::new(DpsConfig::default(), 7);
        hub.add_nodes(8);
        let sub_sess = hub.open_session().unwrap();
        let sub = sub_sess
            .subscriber("price > 100".parse::<crate::Filter>().unwrap())
            .unwrap();
        let pub_sess = hub.open_session().unwrap();
        let p = pub_sess.publisher().unwrap();
        hub.run(150);

        p.publish(event("price = 150")).unwrap();
        p.publish(event("price = 50")).unwrap(); // not matching
        hub.run(60);

        let got = sub.drain();
        assert_eq!(got.len(), 1, "only the matching event is delivered");
        assert_eq!(got[0].event.to_string(), "price = 150");
        assert_eq!(got[0].publisher, pub_sess.node().index() as u64);
        assert!(sub.recv().is_none());

        sub_sess.close().unwrap();
        pub_sess.close().unwrap();
        assert_eq!(hub.delivered_ratio(), 1.0);
    }

    #[test]
    fn closed_handles_report_session_closed() {
        let hub = Hub::new(DpsConfig::default(), 3);
        hub.add_nodes(4);
        let sess = hub.open_session().unwrap();
        let p = sess.publisher().unwrap();
        let sub = sess
            .subscriber("a > 1".parse::<crate::Filter>().unwrap())
            .unwrap();
        sess.close().unwrap();
        assert_eq!(
            p.publish(event("a = 2")).unwrap_err(),
            DpsError::SessionClosed
        );
        assert!(sub.recv().is_none());
        assert_eq!(sub.close().unwrap_err(), DpsError::SessionClosed);
    }

    #[test]
    fn subscriber_close_keeps_the_session_usable() {
        let hub = Hub::new(DpsConfig::default(), 5);
        hub.add_nodes(6);
        let sess = hub.open_session().unwrap();
        let s1 = sess
            .subscriber("a > 0".parse::<crate::Filter>().unwrap())
            .unwrap();
        let s2 = sess
            .subscriber("b > 0".parse::<crate::Filter>().unwrap())
            .unwrap();
        hub.run(150);
        s1.close().unwrap();
        let other = hub.open_session().unwrap();
        let p = other.publisher().unwrap();
        p.publish(event("b = 1")).unwrap();
        hub.run(60);
        assert_eq!(s2.drain().len(), 1, "remaining subscriber still receives");
        sess.close().unwrap();
        other.close().unwrap();
    }

    #[test]
    fn empty_filter_and_dead_node_are_typed_errors() {
        let hub = Hub::new(DpsConfig::default(), 9);
        hub.add_nodes(4);
        let sess = hub.open_session().unwrap();
        assert_eq!(
            sess.subscriber(crate::Filter::all()).unwrap_err(),
            DpsError::EmptyFilter
        );
        let node = sess.node();
        hub.with_network(|net| net.crash(node));
        let p = sess.publisher().unwrap();
        assert_eq!(
            p.publish(event("a = 1")).unwrap_err(),
            DpsError::NodeDead(node)
        );
    }
}
