//! Regression pin for the fig 3(a) dependability shape at small scale.
//!
//! ROADMAP once recorded the epidemic rows *under-delivering* vs the leader
//! rows at p ≥ 0.1 (the paper expects the opposite: epidemic ≥ leader, with
//! k = 2 reaching ≥ 0.97 at p = 0.25). The root causes — one-shot subcritical
//! gossip, unmaintained epidemic contact hints, and the 1500-step traversal
//! timeout parking re-subscriptions — are fixed; this test pins the repaired
//! shape at the smoke-scale cell size (n = 60, the full quick-scale figure is
//! minutes of CPU) so the regression cannot silently return.

use dps::{CommKind, DpsConfig, JoinRule, TraversalKind};
use dps_experiments::figures::fig3a_cell;

fn cfg(traversal: TraversalKind, comm: CommKind, fanout: usize) -> DpsConfig {
    let mut c = DpsConfig::named(traversal, comm).with_fanout(fanout);
    c.join_rule = JoinRule::Explicit;
    c
}

/// The paper's hardest cell: p = 0.25 (75 % of the population dies over the
/// run). Epidemic with k = 2 must hold a high floor and must not sit below
/// leader-based delivery.
#[test]
fn epidemic_k2_holds_the_p025_shape_at_small_scale() {
    let n = 60;
    let steps = 3 * n as u64;
    let pi = 5; // the p = 0.25 column's seed offset in the figure
    let leader = fig3a_cell(
        cfg(TraversalKind::Root, CommKind::Leader, 1),
        0.25,
        pi,
        n,
        steps,
    );
    let epi2 = fig3a_cell(
        cfg(TraversalKind::Root, CommKind::Epidemic, 2),
        0.25,
        pi,
        n,
        steps,
    );
    assert!(
        epi2.delivered_ratio >= 0.85,
        "epidemic k=2 lost its small-scale floor: {:.3}",
        epi2.delivered_ratio
    );
    assert!(
        epi2.delivered_ratio + 0.02 >= leader.delivered_ratio,
        "epidemic k=2 ({:.3}) fell back below leader ({:.3}) at p = 0.25 — the fig 3(a) \
         under-delivery bug is back",
        epi2.delivered_ratio,
        leader.delivered_ratio
    );
}

/// Fault-free sanity: both flavors essentially deliver everything at p = 0.
#[test]
fn fault_free_cells_deliver_nearly_everything() {
    let n = 60;
    let steps = 3 * n as u64;
    for c in [
        cfg(TraversalKind::Root, CommKind::Leader, 1),
        cfg(TraversalKind::Root, CommKind::Epidemic, 2),
    ] {
        let point = fig3a_cell(c, 0.0, 0, n, steps);
        assert!(
            point.delivered_ratio >= 0.97,
            "{} delivers only {:.3} with no faults at all",
            point.config,
            point.delivered_ratio
        );
    }
}
