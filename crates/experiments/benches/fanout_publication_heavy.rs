//! Publication-heavy fan-out: the zero-copy payload path under load.
//!
//! A 1,000-node fully-subscribed overlay where **every step publishes a fresh
//! event** (`publish_every = 1`) — the regime where payload handling dominates:
//! each publication climbs the tree, spreads through its group, and gossips,
//! so a single event body is handed to hundreds of hops per step. The row to
//! watch is ns/delivery (seconds-per-step divided by the steady-state
//! deliveries/step printed as a diagnostic), which isolates per-hop payload
//! cost from traffic-shape changes.
//!
//! Two workloads bound the space: `multiplayer_game` (~25 % match rate, wide
//! fan-out per publication) and `stock_exchange` (selective filters, fan-out
//! dominated by tree routing rather than group spread).

use criterion::{criterion_group, criterion_main, Criterion};
use dps::{DpsConfig, DpsNetwork};
use dps_content::Event;
use dps_workload::Workload;
use rand::SeedableRng;

fn received(net: &DpsNetwork) -> u64 {
    dps::MsgClass::ALL
        .iter()
        .map(|c| net.metrics().total_received(*c))
        .sum()
}

fn bench_fanout(c: &mut Criterion) {
    for (label, w) in [
        ("game", Workload::multiplayer_game()),
        ("stock", Workload::stock_exchange()),
    ] {
        c.bench_function(&format!("fanout_1k_nodes_publish_every_1_{label}"), |b| {
            let mut net = DpsNetwork::new(DpsConfig::default(), 3);
            let nodes = net.add_nodes(1000);
            net.run(30);
            let mut rng = rand::rngs::StdRng::seed_from_u64(4);
            for n in &nodes {
                let _ = net.try_subscribe(*n, w.subscription(&mut rng));
            }
            net.quiesce(6000);
            let events: Vec<Event> = (0..1024).map(|_| w.event(&mut rng)).collect();
            // Reach the publish-every-step steady state, then measure the
            // delivery rate so ns/delivery can be derived from ns/iter
            // (diagnostic print; not part of the timing).
            let mut i = 0usize;
            let tick = |net: &mut DpsNetwork, i: &mut usize| {
                let _ = net.try_publish(nodes[*i % nodes.len()], events[*i % events.len()].clone());
                net.run(1);
                *i += 1;
            };
            for _ in 0..300 {
                tick(&mut net, &mut i);
            }
            let before = received(&net);
            for _ in 0..100 {
                tick(&mut net, &mut i);
            }
            println!(
                "# fanout_1k_{label}: {:.1} deliveries/step at steady state",
                (received(&net) - before) as f64 / 100.0
            );
            b.iter(|| tick(&mut net, &mut i))
        });
    }
}

criterion_group!(benches, bench_fanout);
criterion_main!(benches);
