//! Criterion target for the sharded engine: one step of a 1,000-node overlay
//! simulation at `DPS_SHARDS`-style shard counts 1 / 2 / 4, plus the staging
//! merge overhead at a smaller size. The absolute per-step time is the number
//! that bounds a `DPS_SCALE=paper` figure cell (3,000+ steps per cell); the
//! S = 1 vs S > 1 spread shows what sharding buys (or costs — on a 1-CPU box
//! the parallel path is pure overhead, which this target measures honestly).

use criterion::{criterion_group, criterion_main, Criterion};
use dps::{DpsConfig, DpsNetwork};
use dps_workload::Workload;
use rand::SeedableRng;

/// A subscribed, warmed-up overlay of `n` nodes on `shards` shards. Kept
/// lighter than the figure runners' full convergence build: the bench measures
/// steady-state stepping, not bootstrap.
fn build(n: usize, shards: usize) -> DpsNetwork {
    let mut net = DpsNetwork::new_sharded(DpsConfig::default(), 3, shards);
    let nodes = net.add_nodes(n);
    net.run(30);
    let w = Workload::multiplayer_game();
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    for node in &nodes {
        let _ = net.try_subscribe(*node, w.subscription(&mut rng));
    }
    net.run(200); // settle most traversals; leftovers are steady-state traffic
    net
}

fn bench_shard_scaling(c: &mut Criterion) {
    for shards in [1usize, 2, 4] {
        c.bench_function(&format!("overlay_1000_nodes_one_step_s{shards}"), |b| {
            let mut net = build(1000, shards);
            b.iter(|| net.run(1))
        });
    }
    // Smaller population: the fixed per-step cost of the parallel path
    // (thread spawn + barrier merge) is proportionally larger here, which is
    // the honest way to see the overhead floor.
    for shards in [1usize, 4] {
        c.bench_function(&format!("overlay_250_nodes_one_step_s{shards}"), |b| {
            let mut net = build(250, shards);
            b.iter(|| net.run(1))
        });
    }
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
