//! Runs the fault-injection scenarios: partition + epidemic merge, and the
//! delivery-under-loss sweep.

use dps_experiments::{faults, output, Scale};

fn main() {
    let scale = Scale::from_env();
    let partition = faults::partition_merge(scale);
    output::write_json("partition_merge", &partition);
    let loss = faults::loss_sweep(scale);
    output::write_json("loss_sweep", &loss);
}
