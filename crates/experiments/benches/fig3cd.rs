//! Regenerates Figures 3(c) and 3(d) — scalability of per-event load.

use dps_experiments::{figures, output, Scale};

fn main() {
    let scale = Scale::from_env();
    let rows = figures::fig3cd(scale);
    output::write_json("fig3cd", &rows);
}
