//! Regenerates Figure 3(b) — recovery from a failure storm.

use dps_experiments::{figures, output, Scale};

fn main() {
    let scale = Scale::from_env();
    let rows = figures::fig3b(scale);
    output::write_json("fig3b", &rows);
}
