//! Regenerates Figure 3(a) — dependability under uniform failures.

use dps_experiments::{figures, output, Scale};

fn main() {
    let scale = Scale::from_env();
    let rows = figures::fig3a(scale);
    output::write_json("fig3a", &rows);
}
