//! Regenerates Figures 3(e) and 3(f) — leader vs epidemic per-node load.

use dps_experiments::{figures, output, Scale};

fn main() {
    let scale = Scale::from_env();
    let rows = figures::fig3ef(scale);
    output::write_json("fig3ef", &rows);
}
