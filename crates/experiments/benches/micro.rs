//! Criterion micro-benchmarks: the hot paths of the content model, the
//! placement logic, the reference tree and the simulator.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dps_content::placement::choose_branch;
use dps_content::{Event, Filter, FilterIndex, MatchScratch, Predicate};
use dps_overlay::model::TreeModel;
use dps_sim::NodeId;
use dps_workload::Workload;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matching(c: &mut Criterion) {
    let w = Workload::multiplayer_game();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let filters: Vec<Filter> = (0..1000).map(|_| w.subscription(&mut rng)).collect();
    let events: Vec<Event> = (0..100).map(|_| w.event(&mut rng)).collect();
    c.bench_function("match_1000_filters_x_100_events", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for e in &events {
                for f in &filters {
                    if f.matches(black_box(e)) {
                        hits += 1;
                    }
                }
            }
            black_box(hits)
        })
    });
    let index: FilterIndex<u32> =
        filters
            .iter()
            .enumerate()
            .fold(FilterIndex::new(), |mut idx, (i, f)| {
                idx.insert(i as u32, f.clone());
                idx
            });
    let mut scratch = MatchScratch::new();
    let mut out = Vec::new();
    c.bench_function("match_1000_filters_x_100_events_indexed", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for e in &events {
                index.matching_into(black_box(e), &mut scratch, &mut out);
                hits += out.len();
            }
            black_box(hits)
        })
    });
}

/// Growth-curve rows: scan vs counting index at 10k and 100k filters
/// (10 events each — the per-event cost is what scales). Two workloads:
/// `multiplayer_game` (broad ranges, ~25% match rate — indexed cost is
/// output-bound, a constant-factor win) and `stock_exchange` (selective
/// equalities and narrow ranges — the sublinear regime, where cost tracks
/// satisfied predicates instead of the population).
fn bench_matching_growth(c: &mut Criterion) {
    for (wname, w) in [
        ("", Workload::multiplayer_game()),
        ("stock_", Workload::stock_exchange()),
    ] {
        bench_growth_rows(c, wname, &w);
    }
}

fn bench_growth_rows(c: &mut Criterion, wname: &str, w: &Workload) {
    for n in [10_000usize, 100_000] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let filters: Vec<Filter> = (0..n).map(|_| w.subscription(&mut rng)).collect();
        let events: Vec<Event> = (0..10).map(|_| w.event(&mut rng)).collect();
        let label = if n == 10_000 {
            format!("10k_{wname}")
        } else {
            format!("100k_{wname}")
        };
        c.bench_function(&format!("match_{label}filters_x_10_events_scan"), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for e in &events {
                    for f in &filters {
                        if f.matches(black_box(e)) {
                            hits += 1;
                        }
                    }
                }
                black_box(hits)
            })
        });
        let index: FilterIndex<u32> =
            filters
                .iter()
                .enumerate()
                .fold(FilterIndex::new(), |mut idx, (i, f)| {
                    idx.insert(i as u32, f.clone());
                    idx
                });
        let mut scratch = MatchScratch::new();
        let mut out = Vec::new();
        c.bench_function(&format!("match_{label}filters_x_10_events_indexed"), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for e in &events {
                    index.matching_into(black_box(e), &mut scratch, &mut out);
                    hits += out.len();
                }
                black_box(hits)
            })
        });
    }
}

fn bench_inclusion(c: &mut Criterion) {
    let preds: Vec<Predicate> = (0..200)
        .map(|i| {
            if i % 2 == 0 {
                Predicate::gt("a", i)
            } else {
                Predicate::lt("a", i)
            }
        })
        .collect();
    c.bench_function("inclusion_200x200", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for p in &preds {
                for q in &preds {
                    if p.includes(black_box(q)) {
                        n += 1;
                    }
                }
            }
            black_box(n)
        })
    });
}

fn bench_choose_branch(c: &mut Criterion) {
    let children: Vec<Predicate> = (0..64).map(|i| Predicate::gt("a", i * 10)).collect();
    let target = Predicate::eq("a", 317);
    c.bench_function("choose_branch_64_children", |b| {
        b.iter(|| black_box(choose_branch(children.iter(), black_box(&target))))
    });
}

fn bench_tree_insert(c: &mut Criterion) {
    let w = Workload::multiplayer_game();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let subs: Vec<Predicate> = (0..1000)
        .map(|_| w.subscription(&mut rng).predicates()[0].clone())
        .filter(|p| p.name().as_str() == "x")
        .collect();
    c.bench_function("reference_tree_insert_all", |b| {
        b.iter_batched(
            || TreeModel::new("x".into()),
            |mut t| {
                for (i, p) in subs.iter().enumerate() {
                    t.insert(p, NodeId::from_index(i));
                }
                black_box(t.groups().len())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_sim_step(c: &mut Criterion) {
    use dps::{DpsConfig, DpsNetwork};
    for n in [100usize, 250] {
        c.bench_function(&format!("overlay_{n}_nodes_one_step"), |b| {
            let mut net = DpsNetwork::new(DpsConfig::default(), 3);
            let nodes = net.add_nodes(n);
            net.run(30);
            let w = Workload::multiplayer_game();
            let mut rng = rand::rngs::StdRng::seed_from_u64(4);
            for n in &nodes {
                let _ = net.try_subscribe(*n, w.subscription(&mut rng));
            }
            net.quiesce(3000);
            b.iter(|| {
                net.run(1);
            })
        });
    }
}

/// The event-queue tax: one busy overlay step at 1k nodes under the
/// draw-free unit model (the old cycle engine's hot path) vs a sampled
/// `Uniform{1,4}` model (every enqueue draws from its destination's latency
/// stream and lands in one of five timing-wheel slots). The gap between the
/// two rows is the entire cost of running the discrete-event machinery;
/// events/sec derives as deliveries-per-step / seconds-per-step.
fn bench_event_queue(c: &mut Criterion) {
    use dps::{DpsConfig, DpsNetwork, LatencyModel};
    let cases: [(&str, Option<LatencyModel>); 2] = [
        ("unit", None),
        (
            "uniform_1_4",
            Some(LatencyModel::Uniform { min: 1, max: 4 }),
        ),
    ];
    for (label, model) in cases {
        c.bench_function(&format!("event_queue_1k_nodes_one_step_{label}"), |b| {
            let mut net = DpsNetwork::new(DpsConfig::default(), 3);
            if let Some(m) = model.clone() {
                net.try_set_latency(m).unwrap();
            }
            let nodes = net.add_nodes(1000);
            net.run(30);
            let w = Workload::multiplayer_game();
            let mut rng = rand::rngs::StdRng::seed_from_u64(4);
            for n in &nodes {
                let _ = net.try_subscribe(*n, w.subscription(&mut rng));
            }
            net.quiesce(6000);
            // Steady-state delivery rate, so events/sec can be derived from
            // the ns/iter row (diagnostic print; not part of the timing).
            let received = |net: &DpsNetwork| -> u64 {
                dps::MsgClass::ALL
                    .iter()
                    .map(|c| net.metrics().total_received(*c))
                    .sum()
            };
            let before = received(&net);
            net.run(100);
            println!(
                "# event_queue_1k_{label}: {:.1} deliveries/step at steady state",
                (received(&net) - before) as f64 / 100.0
            );
            b.iter(|| {
                net.run(1);
            })
        });
    }
}

criterion_group!(
    benches,
    bench_matching,
    bench_matching_growth,
    bench_inclusion,
    bench_choose_branch,
    bench_tree_insert,
    bench_sim_step,
    bench_event_queue
);
criterion_main!(benches);
