//! Regenerates Figure 3(g) — root vs generic per-node load.

use dps_experiments::{figures, output, Scale};

fn main() {
    let scale = Scale::from_env();
    let rows = figures::fig3g(scale);
    output::write_json("fig3g", &rows);
}
