//! §5.1 — compares the analytical message-complexity closed forms against the
//! simulated per-event publication message counts, on the same overlay.

use dps::{CommKind, DpsConfig, DpsNetwork, JoinRule, MsgClass, TraversalKind};
use dps_analysis::{complexity, reliability};
use dps_experiments::{banner, output, Scale};
use dps_workload::Workload;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct AnalysisRow {
    config: String,
    tree_depth_h: u64,
    max_group_s: u64,
    analytical_worst_case: u64,
    measured_mean_per_event: f64,
}

fn main() {
    let scale = Scale::from_env();
    banner("§5.1 — analytical vs simulated message complexity", scale);
    let n = scale.pick(60usize, 200, 1000);
    let n_events = scale.pick(10usize, 30, 100);
    let w = Workload::multiplayer_game();
    let mut rows = Vec::new();
    println!(
        "{:<26} {:>3} {:>3} {:>14} {:>14}",
        "config", "h", "S", "analytic(max)", "measured(mean)"
    );
    for (ci, base) in [
        DpsConfig::named(TraversalKind::Root, CommKind::Leader),
        DpsConfig::named(TraversalKind::Generic, CommKind::Leader),
        DpsConfig::named(TraversalKind::Root, CommKind::Epidemic),
        DpsConfig::named(TraversalKind::Generic, CommKind::Epidemic),
    ]
    .into_iter()
    .enumerate()
    {
        let mut cfg = base;
        cfg.join_rule = JoinRule::Explicit;
        let label = cfg.label();
        let k = cfg.gossip_fanout as u64;
        let kp = cfg.inter_group_fanout as u64;
        let mut net = DpsNetwork::new(cfg, 4000 + ci as u64);
        let nodes = net.add_nodes(n);
        net.run(30);
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(31 + ci as u64);
        for (i, node) in nodes.iter().enumerate() {
            let _ = net.try_subscribe(*node, w.subscription(&mut rng));
            if i % 10 == 9 {
                net.run(1);
            }
        }
        net.quiesce(4000);
        net.run(150);

        // Tree statistics from the oracle (same placement rules).
        let (h, s) = net
            .oracle()
            .trees()
            .map(|t| (t.depth() as u64, t.max_group_size() as u64))
            .fold((0, 0), |(ah, asz), (th, ts)| (ah.max(th), asz.max(ts)));

        let before = net.metrics().total_sent(MsgClass::Publication);
        for _ in 0..n_events {
            let publisher = nodes[rand::Rng::random_range(&mut rng, 0..nodes.len())];
            let _ = net.try_publish(publisher, w.event(&mut rng));
            net.run(15);
        }
        net.run(100);
        let sent = net.metrics().total_sent(MsgClass::Publication) - before;
        // Each event visits two trees (x and y): normalize per tree.
        let measured = sent as f64 / n_events as f64 / 2.0;

        let analytic = match (label.contains("leader"), label.contains("generic")) {
            (true, false) => complexity::leader_root(h, s),
            (true, true) => complexity::leader_generic(h, s),
            (false, false) => complexity::epidemic_root(h, s, k, kp),
            (false, true) => complexity::epidemic_generic(h, s, k, kp),
        };
        println!("{label:<26} {h:>3} {s:>3} {analytic:>14} {measured:>14.1}");
        rows.push(AnalysisRow {
            config: label,
            tree_depth_h: h,
            max_group_s: s,
            analytical_worst_case: analytic,
            measured_mean_per_event: measured,
        });
    }
    println!("(the closed forms are worst-case branch traversals; measured means must stay below)");

    // Reliability model: miss probability for uniform contact levels.
    let h = rows.iter().map(|r| r.tree_depth_h).max().unwrap_or(3) as usize;
    let levels = reliability::uniform_levels(h);
    let p = reliability::miss_probability(&levels, &levels);
    println!(
        "reliability (generic, uniform levels over depth {h}): miss probability p = {p:.3}; \
         of f = 100 concurrent matching events, {:.1} are received (root-based: all 100)",
        reliability::expected_received(100, p)
    );
    output::write_json("analysis", &rows);
}
