//! Regenerates Table 1 (run with `cargo bench -p dps-experiments --bench table1`;
//! set `DPS_SCALE=paper` for the full 10k × 10k runs).

use dps_experiments::{output, table1, Scale};

fn main() {
    let scale = Scale::from_env();
    let rows = table1::run(scale);
    output::write_json("table1", &rows);
}
