//! Experiment harness for the DPS reproduction: one runner per table/figure of
//! the paper's evaluation (§5.2), shared scenario plumbing, and result output.
//!
//! Every runner prints the series the paper plots, next to the paper's headline
//! expectation, and returns the measured rows so the bench targets can persist
//! them as JSON under `target/experiments/`.
//!
//! Scale is controlled by the `DPS_SCALE` environment variable:
//!
//! * unset or `quick` — reduced populations/durations so the full suite runs in
//!   minutes (defaults used by `cargo bench`);
//! * `paper` — the paper's parameters (10,000 subscriptions/events for Table 1,
//!   1,000 nodes and 3,000–5,000 steps for the figures).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod output;
pub mod table1;

use serde::Serialize;

/// Experiment scale, from the `DPS_SCALE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Scale {
    /// Reduced scale for CI / `cargo bench` (minutes for the whole suite).
    Quick,
    /// The paper's parameters.
    Paper,
}

impl Scale {
    /// Reads `DPS_SCALE` (`quick` default, `paper` for full runs).
    pub fn from_env() -> Self {
        match std::env::var("DPS_SCALE").as_deref() {
            Ok("paper") | Ok("PAPER") | Ok("full") => Scale::Paper,
            _ => Scale::Quick,
        }
    }

    /// Picks `quick` or `paper` parameter.
    pub fn pick<T>(self, quick: T, paper: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Paper => paper,
        }
    }
}

/// Prints a section header for a runner.
pub fn banner(title: &str, scale: Scale) {
    println!();
    println!("=== {title} [scale: {scale:?}] ===");
}
