//! Experiment harness for the DPS reproduction: one runner per table/figure of
//! the paper's evaluation (§5.2), shared scenario plumbing, and result output.
//!
//! Every runner prints the series the paper plots, next to the paper's headline
//! expectation, and returns the measured rows so the bench targets can persist
//! them as JSON under `target/experiments/`.
//!
//! Scale is controlled by the `DPS_SCALE` environment variable:
//!
//! * `smoke` — tiny populations/durations so a full figure runs end-to-end in
//!   seconds (the CI smoke job);
//! * unset or `quick` — reduced populations/durations so the full suite runs in
//!   minutes (defaults used by `cargo bench`);
//! * `paper` — the paper's parameters (10,000 subscriptions/events for Table 1,
//!   1,000 nodes and 3,000–5,000 steps for the figures).
//!
//! Every `(config, p)` / `(config, seed)` cell of a figure is an independent
//! deterministic simulation, so runners fan cells out across threads via
//! [`run_cells`]; `DPS_THREADS` caps the worker count (default: available
//! parallelism). Results are collected in cell order, so the output rows — and
//! the JSON written by the bench targets — are byte-identical to a serial run.
//!
//! Orthogonally, `DPS_SHARDS` (default 1) sets how many execution shards each
//! simulation runs on ([`shard_count`]): shards parallelize *within* one run
//! where threads parallelize *across* runs. Shard layout never changes any
//! result (per-node RNG streams + canonical merge order in `dps-sim`), so the
//! JSON stays byte-identical across both knobs and the effective parallelism
//! is their product.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod figures;
pub mod output;
pub mod table1;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::Serialize;

/// Experiment scale, from the `DPS_SCALE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Scale {
    /// Tiny scale: a full figure end-to-end in seconds (CI smoke test).
    Smoke,
    /// Reduced scale for local runs / `cargo bench` (minutes for the whole suite).
    Quick,
    /// The paper's parameters.
    Paper,
    /// Six-figure populations (≥ 100k nodes), far past the paper's own 1,000.
    /// This tier exists for the metro scenario library under
    /// `scenarios/metro/` (the `scenarios` bin switches to that directory
    /// when `DPS_SCALE=metro`); the table/figure runners have no metro
    /// parameters and abort loudly if asked for them.
    Metro,
}

impl Scale {
    /// Parses a `DPS_SCALE` value: unset means `quick`; anything that is not
    /// a known scale is an error — a typo like `DPS_SCALE=papr` must abort
    /// the run, not silently measure at the wrong scale.
    pub fn parse(raw: Option<&str>) -> Result<Self, String> {
        match raw {
            None => Ok(Scale::Quick),
            Some("paper" | "PAPER" | "full") => Ok(Scale::Paper),
            Some("smoke" | "SMOKE") => Ok(Scale::Smoke),
            Some("quick" | "QUICK") => Ok(Scale::Quick),
            Some("metro" | "METRO") => Ok(Scale::Metro),
            Some(other) => Err(format!(
                "DPS_SCALE={other:?} is not a known scale (expected smoke, quick, paper or metro)"
            )),
        }
    }

    /// Reads `DPS_SCALE` (`quick` default, `smoke` for CI, `paper` for full runs).
    ///
    /// # Panics
    ///
    /// Panics on an unknown value — see [`parse`](Self::parse).
    pub fn from_env() -> Self {
        match Scale::parse(std::env::var("DPS_SCALE").ok().as_deref()) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Picks the parameter for this scale.
    ///
    /// # Panics
    ///
    /// Panics for [`Scale::Metro`]: the figure/table runners define smoke,
    /// quick and paper parameter sets only. A metro run that silently fell
    /// back to paper parameters would measure the wrong thing, so — like a
    /// malformed `DPS_SCALE` — it aborts instead.
    pub fn pick<T>(self, smoke: T, quick: T, paper: T) -> T {
        match self {
            Scale::Smoke => smoke,
            Scale::Quick => quick,
            Scale::Paper => paper,
            Scale::Metro => panic!(
                "DPS_SCALE=metro drives the metro scenario tier \
                 (`cargo run --release -p dps-experiments --bin scenarios` \
                 sweeps scenarios/metro/); this runner has no metro parameters \
                 — use smoke, quick or paper"
            ),
        }
    }
}

/// Prints a section header for a runner.
pub fn banner(title: &str, scale: Scale) {
    println!();
    println!("=== {title} [scale: {scale:?}] ===");
}

/// Peak resident-set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where procfs is unavailable. This is the
/// number recorded next to `BENCH_micro.json` for the metro tier: it bounds
/// what the whole run — nodes, queues, bookkeeping — ever held in RAM.
/// Diagnostics only; never fold it into result JSON (the CI determinism jobs
/// `cmp` those byte-for-byte across shard/thread counts).
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

/// Worker-thread count for [`run_cells`]: `DPS_THREADS` if set (≥ 1), otherwise
/// the machine's available parallelism. Malformed values abort
/// ([`dps_scenarios::env::threads`]), they do not silently fall back.
pub fn thread_count() -> usize {
    dps_scenarios::env::threads()
}

/// Execution-shard count for each simulation: `DPS_SHARDS` if set (≥ 1),
/// default 1 (classic serial stepping). Orthogonal to `DPS_THREADS`: threads
/// parallelize *across* independent scenario cells, shards parallelize
/// *within* one run. Results are byte-identical whatever either is set to —
/// sharding only spreads a step's work across cores — so the effective
/// parallelism is `DPS_SHARDS × DPS_THREADS` when enough cells are in flight.
/// Malformed values abort ([`dps_scenarios::env::shards`]).
pub fn shard_count() -> usize {
    dps_scenarios::env::shards()
}

/// Runs independent scenario cells on a scoped thread pool and returns their
/// results **in cell order**, so output is identical to a serial run.
///
/// Each cell is claimed exactly once (work-stealing over an atomic cursor), so
/// uneven cell durations don't leave workers idle. With `DPS_THREADS=1` (or a
/// single cell) everything runs inline on the caller's thread.
pub fn run_cells<T, F>(cells: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = cells.len();
    let threads = thread_count().min(n);
    if threads <= 1 {
        return cells.into_iter().map(|f| f()).collect();
    }
    let jobs: Vec<Mutex<Option<F>>> = cells.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let done: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = jobs[i].lock().unwrap().take().expect("cell claimed twice");
                let out = job();
                *done[i].lock().unwrap() = Some(out);
            });
        }
    });
    done.into_iter()
        .map(|m| m.into_inner().unwrap().expect("cell did not run"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_cells_preserves_order() {
        let cells: Vec<_> = (0..32)
            .map(|i| {
                move || {
                    // Uneven durations to exercise the work-stealing path.
                    std::thread::sleep(std::time::Duration::from_millis((32 - i) % 7));
                    i * i
                }
            })
            .collect();
        let got = run_cells(cells);
        let want: Vec<_> = (0..32).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn scale_parsing_is_strict() {
        assert_eq!(Scale::parse(None), Ok(Scale::Quick));
        assert_eq!(Scale::parse(Some("smoke")), Ok(Scale::Smoke));
        assert_eq!(Scale::parse(Some("quick")), Ok(Scale::Quick));
        assert_eq!(Scale::parse(Some("paper")), Ok(Scale::Paper));
        assert_eq!(Scale::parse(Some("full")), Ok(Scale::Paper));
        assert_eq!(Scale::parse(Some("metro")), Ok(Scale::Metro));
        assert_eq!(Scale::parse(Some("METRO")), Ok(Scale::Metro));
        // The satellite bugfix: a typo must error, not quietly run quick.
        let e = Scale::parse(Some("papr")).unwrap_err();
        assert!(e.contains("DPS_SCALE") && e.contains("papr"), "{e}");
        assert!(Scale::parse(Some("")).is_err());
    }

    #[test]
    fn metro_has_no_figure_parameters() {
        // The figure runners define smoke/quick/paper only; asking them for
        // metro parameters must abort, not silently measure at paper scale.
        let picked = std::panic::catch_unwind(|| Scale::Metro.pick(1, 2, 3));
        assert!(picked.is_err());
        assert_eq!(Scale::Paper.pick(1, 2, 3), 3);
    }

    #[test]
    fn peak_rss_is_plausible_on_linux() {
        if let Some(rss) = peak_rss_bytes() {
            // The test process certainly holds more than 1 MB and (far) less
            // than 1 TB; the point is that the procfs parse is sane.
            assert!(rss > 1 << 20 && rss < 1 << 40, "VmHWM parsed as {rss}");
        }
    }

    #[test]
    fn run_cells_handles_empty_and_single() {
        let empty: Vec<fn() -> u32> = Vec::new();
        assert!(run_cells(empty).is_empty());
        assert_eq!(run_cells(vec![|| 7u32]), vec![7]);
    }
}
