//! Scenario-matrix runner: sweeps every declarative spec in a directory
//! (default: `scenarios/` at the repository root; `scenarios/metro/` when
//! `DPS_SCALE=metro`), executes each through `dps_scenarios::run_scenario`,
//! prints the per-phase rows and persists them as JSON under
//! `target/experiments/scenario_<name>.json`.
//!
//! Independent scenarios fan out across `DPS_THREADS` workers; each run
//! executes on `DPS_SHARDS` simulation shards. Rows are byte-identical
//! whatever either knob is — the CI `scenario-matrix` job `cmp`s the output
//! across both, and the metro smoke job does the same at 100k nodes.
//!
//! After the table the runner prints a throughput summary (wall time and
//! steps/sec per scenario, process peak RSS) to stdout only — never into the
//! row JSON, which must stay byte-comparable.
//!
//! Exits non-zero if any spec fails to parse, fails to compile, or misses a
//! declared delivery floor.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use dps_experiments::Scale;
use dps_scenarios::{run_scenario, ScenarioReport, ScenarioSpec, SpecError};

/// The spec directory: the CLI argument if given, else `scenarios/` — or the
/// metro library `scenarios/metro/` under `DPS_SCALE=metro` — resolved
/// against the working directory, else against the workspace root (so the
/// bin also works when invoked from a crate directory).
fn spec_dir() -> PathBuf {
    if let Some(arg) = std::env::args().nth(1) {
        return PathBuf::from(arg);
    }
    let rel = match Scale::from_env() {
        Scale::Metro => "scenarios/metro",
        _ => "scenarios",
    };
    let cwd = PathBuf::from(rel);
    if cwd.is_dir() {
        return cwd;
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

fn main() -> ExitCode {
    let dir = spec_dir();
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect(),
        Err(e) => {
            eprintln!("cannot read spec directory {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    paths.sort();
    if paths.is_empty() {
        eprintln!("no *.json specs under {}", dir.display());
        return ExitCode::FAILURE;
    }

    // Parse everything up front: a malformed spec fails the whole sweep
    // before any simulation time is spent.
    let mut specs = Vec::new();
    let mut failed = false;
    for path in &paths {
        match ScenarioSpec::load(path) {
            Ok(spec) => specs.push(spec),
            Err(e) => {
                eprintln!("SPEC ERROR: {e}");
                failed = true;
            }
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }

    println!(
        "=== scenario matrix: {} specs from {} [DPS_SHARDS={}, DPS_THREADS={}] ===",
        specs.len(),
        dir.display(),
        dps_scenarios::env::shards(),
        dps_scenarios::env::threads(),
    );
    let cells: Vec<_> = specs
        .into_iter()
        .map(|spec| {
            move || {
                let t0 = Instant::now();
                let result = run_scenario(&spec);
                (result, t0.elapsed())
            }
        })
        .collect();
    let results: Vec<(Result<ScenarioReport, SpecError>, Duration)> =
        dps_experiments::run_cells(cells);

    println!(
        "{:<34} {:<16} {:>6} {:>8} {:>8} {:>10} {:>6} {:>6} {:>6} {:>6}",
        "scenario", "phase", "pubs", "raw", "reach", "drops c/l", "p50", "p99", "p999", "pass"
    );
    let mut perf: Vec<(String, u64, Duration)> = Vec::new();
    for (result, wall) in results {
        let report = match result {
            Ok(r) => r,
            Err(e) => {
                eprintln!("SPEC ERROR: {e}");
                failed = true;
                continue;
            }
        };
        perf.push((report.scenario.clone(), report.total_steps, wall));
        for row in &report.rows {
            // Publish→deliver percentiles sit next to the delivery ratios;
            // "-" marks a phase that delivered nothing (no samples).
            let pct = |p: Option<f64>| match p {
                Some(v) => format!("{v:.0}"),
                None => "-".to_owned(),
            };
            println!(
                "{:<34} {:<16} {:>6} {:>8.3} {:>8.3} {:>6}/{:<3} {:>6} {:>6} {:>6} {:>6}",
                row.scenario,
                row.phase,
                row.published,
                row.delivered_ratio,
                row.delivered_ratio_reachable,
                row.dropped_partitioned,
                row.dropped_loss,
                pct(row.latency_p50),
                pct(row.latency_p99),
                pct(row.latency_p999),
                if row.pass { "ok" } else { "MISS" }
            );
        }
        dps_experiments::output::write_json(&format!("scenario_{}", report.scenario), &report.rows);
        if !report.passed {
            eprintln!(
                "FAILED: scenario {} missed a delivery floor",
                report.scenario
            );
            failed = true;
        }
    }
    // Throughput summary — stdout only, never in the row JSON (the CI
    // determinism jobs `cmp` that byte-for-byte). Wall times vary run to
    // run; steps and RSS are what the metro tier records in BENCH_micro.
    println!();
    println!("--- throughput (diagnostics; not part of the row JSON) ---");
    for (name, steps, wall) in &perf {
        let secs = wall.as_secs_f64();
        let rate = if secs > 0.0 {
            *steps as f64 / secs
        } else {
            0.0
        };
        println!("{name:<34} {steps:>8} steps  {secs:>8.2}s  {rate:>9.0} steps/sec");
    }
    if let Some(rss) = dps_experiments::peak_rss_bytes() {
        println!("peak RSS: {:.1} MiB", rss as f64 / (1024.0 * 1024.0));
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
