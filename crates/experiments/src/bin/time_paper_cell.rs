//! Times single `DPS_SCALE=paper` fig 3(a) cells (n = 1000, 3000 steps), the
//! unit from which the full-figure wall clock extrapolates: 36 cells / the
//! `DPS_THREADS × DPS_SHARDS` parallelism actually available. Run with
//! `cargo run --release -p dps-experiments --bin time_paper_cell`.

use dps::{CommKind, DpsConfig, JoinRule, TraversalKind};
use dps_experiments::figures::fig3a_cell;

fn main() {
    let n = 1000;
    let steps = 3000;
    for (label, traversal, comm, k, p, pi) in [
        (
            "leader root, p=0",
            TraversalKind::Root,
            CommKind::Leader,
            1,
            0.0,
            0,
        ),
        (
            "epidemic root k=2, p=0.25",
            TraversalKind::Root,
            CommKind::Epidemic,
            2,
            0.25,
            5,
        ),
    ] {
        let mut cfg = DpsConfig::named(traversal, comm).with_fanout(k);
        cfg.join_rule = JoinRule::Explicit;
        let t0 = std::time::Instant::now();
        let point = fig3a_cell(cfg, p, pi, n, steps);
        println!(
            "{label}: delivered_ratio={:.3} in {:.1}s (shards={})",
            point.delivered_ratio,
            t0.elapsed().as_secs_f64(),
            dps_experiments::shard_count(),
        );
    }
}
