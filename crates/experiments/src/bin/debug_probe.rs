use dps::*;
use dps_workload::Workload;

fn main() {
    let mut cfg = DpsConfig::named(TraversalKind::Root, CommKind::Leader);
    cfg.join_rule = JoinRule::Explicit;
    let w = Workload::multiplayer_game();
    let mut net = DpsNetwork::new(cfg, 42);
    let nodes = net.add_nodes(250);
    net.run(30);
    let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(1);
    for round in 0..3 {
        for (i, node) in nodes.iter().enumerate() {
            net.subscribe(*node, w.subscription(&mut rng));
            if i % 25 == 24 {
                net.run(1);
            }
        }
        let _ = round;
        net.run(20);
        println!(
            "after round: {:?} pending={}",
            net.snapshot(),
            net.pending_subscriptions()
        );
    }
    for k in 0..40 {
        net.run(100);
        println!(
            "k={k} {:?} pending={}",
            net.snapshot(),
            net.pending_subscriptions()
        );
        if net.pending_subscriptions() == 0 && k > 2 {
            break;
        }
    }
}
