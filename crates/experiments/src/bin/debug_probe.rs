//! Ad-hoc diagnostic probe: runs one fig 3(a)-style cell and breaks the missed
//! `(publication, expected subscriber)` pairs down by cause. Not part of any
//! figure; a scratch tool for reproduction debugging.

use dps::*;
use dps_workload::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_cell(cfg: DpsConfig, p: f64, n: usize, steps: u64, label: &str) {
    let w = Workload::multiplayer_game();
    let mut net = DpsNetwork::new(cfg, 42);
    let nodes = net.add_nodes(n);
    net.run(30);
    let mut rng = StdRng::seed_from_u64(42 ^ 0xabcd);
    for _round in 0..3 {
        for (i, node) in nodes.iter().enumerate() {
            let _ = net.try_subscribe(*node, w.subscription(&mut rng));
            if i % 25 == 24 {
                net.run(1);
            }
        }
        net.run(20);
    }
    net.quiesce(1500);
    net.run(150);
    let start = net.sim().now();
    let plan = ChurnPlan::rate(p);
    let mut w_rng = StdRng::seed_from_u64(7);
    let mut crashed_at: Vec<(NodeId, Step)> = Vec::new();
    for t in 0..steps {
        for ev in plan.events_at(t) {
            if ev == ChurnEvent::CrashRandom {
                if let Some(v) = net.crash_random() {
                    crashed_at.push((v, start + t));
                }
            }
        }
        if t % 10 == 0 {
            if let Some(publisher) = net.random_alive() {
                let _ = net.try_publish(publisher, w.event(&mut w_rng));
            }
        }
        net.run(1);
    }
    net.run(2 * n as u64 + 400);

    let died: std::collections::HashMap<NodeId, Step> = crashed_at.into_iter().collect();
    let mut expected = 0usize;
    let mut delivered = 0usize;
    let mut miss_died = 0usize; // subscriber crashed after publish (race)
    let mut miss_died_soon = 0usize; // ... within 30 steps of the publish
    let mut miss_alive = 0usize; // subscriber survived to the end: pure protocol miss
    let mut miss_alive_contacted = 0usize; // ... and the event did reach it (filter mismatch?)
    for r in net.reports() {
        expected += r.expected.len();
        delivered += r.delivered;
        for s in &r.expected {
            if net.sink().was_notified(r.id, *s) {
                continue;
            }
            match died.get(s) {
                Some(d) => {
                    miss_died += 1;
                    if *d <= r.published_at + 30 {
                        miss_died_soon += 1;
                    }
                }
                None => {
                    miss_alive += 1;
                    if net.sink().was_contacted(r.id, *s) {
                        miss_alive_contacted += 1;
                    }
                }
            }
        }
    }
    println!(
        "{label}: ratio={:.3} expected={expected} delivered={delivered} \
         miss_died={miss_died} (soon={miss_died_soon}) miss_alive={miss_alive} \
         (contacted={miss_alive_contacted})",
        delivered as f64 / expected.max(1) as f64
    );

    // For alive misses: did the event at least reach the subscriber's group,
    // and does anyone in the group even know the subscriber exists?
    let mut group_touched = 0usize;
    let mut group_untouched = 0usize;
    let mut known_by_peer = 0usize;
    let mut no_membership = 0usize;
    for r in net.reports() {
        for s in &r.expected {
            if net.sink().was_notified(r.id, *s) || died.contains_key(s) {
                continue;
            }
            let labels: Vec<GroupLabel> = net
                .sim()
                .node(*s)
                .map(|node| node.memberships().iter().map(|m| m.label.clone()).collect())
                .unwrap_or_default();
            if labels.is_empty() {
                no_membership += 1;
                continue;
            }
            let mut touched = false;
            let mut known = false;
            for other in net.sim().alive() {
                if other == *s {
                    continue;
                }
                let Some(node) = net.sim().node(other) else {
                    continue;
                };
                for m in node.memberships() {
                    if labels.contains(&m.label) {
                        if net.sink().was_contacted(r.id, other) {
                            touched = true;
                        }
                        if m.members.contains(s) {
                            known = true;
                        }
                    }
                }
            }
            if touched {
                group_touched += 1;
            } else {
                group_untouched += 1;
            }
            if known {
                known_by_peer += 1;
            }
        }
    }
    println!(
        "  alive misses: group_touched={group_touched} group_untouched={group_untouched} \
         known_by_peer={known_by_peer} no_membership={no_membership}"
    );
    let mut phases: std::collections::BTreeMap<String, usize> = Default::default();
    let mut stuck_nodes = 0;
    for id in net.sim().alive() {
        let Some(node) = net.sim().node(id) else {
            continue;
        };
        let states = node.pending_subscription_states();
        if !states.is_empty() && node.memberships().is_empty() {
            stuck_nodes += 1;
        }
        for (phase, retries, _) in states {
            *phases
                .entry(format!("{phase} r={}", retries.min(9)))
                .or_default() += 1;
        }
    }
    println!("  pending at end: {phases:?} memberless_nodes_with_pending={stuck_nodes}");

    // Tree shape: per attribute, group count at the leaders.
    let groups = net.distributed_groups();
    let mut per_attr: std::collections::BTreeMap<String, usize> = Default::default();
    for g in &groups {
        *per_attr.entry(format!("{}", g.label.attr())).or_default() += 1;
    }
    println!(
        "  groups={} attrs={} max_groups_per_attr={:?}",
        groups.len(),
        per_attr.len(),
        per_attr.values().max()
    );
}

fn main() {
    let n: usize = std::env::var("PROBE_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let steps: u64 = 3 * n as u64;
    let p: f64 = std::env::var("PROBE_P")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let base = DpsConfig::named(TraversalKind::Root, CommKind::Epidemic).with_fanout(2);
    for (name, cfg) in [
        (
            "leader root   ",
            DpsConfig::named(TraversalKind::Root, CommKind::Leader),
        ),
        ("epidemic root2", base),
    ] {
        let mut cfg = cfg;
        cfg.join_rule = JoinRule::Explicit;
        run_cell(cfg, p, n, steps, name);
    }
}
