//! Result persistence: JSON files under `target/experiments/` so runs can be
//! diffed and plotted outside the harness.

use std::path::PathBuf;

use serde::Serialize;

/// Writes `rows` as pretty JSON to `target/experiments/<name>.json`, best-effort
/// (failures are reported to stderr but never abort an experiment).
pub fn write_json<T: Serialize>(name: &str, rows: &T) {
    let dir = match std::env::var("CARGO_TARGET_DIR") {
        Ok(d) => PathBuf::from(d),
        // Benches run from the package directory; anchor at the workspace root.
        Err(_) => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target"),
    }
    .join("experiments");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(rows) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("cannot write {}: {e}", path.display());
            } else {
                println!("(results saved to {})", path.display());
            }
        }
        Err(e) => eprintln!("cannot serialize {name}: {e}"),
    }
}
