//! Figure runners: the dependability, recovery, scalability and comparison
//! plots of §5.2 (Figures 3(a)–3(g)).

use dps::{CommKind, DpsConfig, DpsNetwork, JoinRule, MsgClass, NodeId, TraversalKind};
use dps_sim::{ChurnEvent, ChurnPlan};
use dps_workload::Workload;
use serde::Serialize;

use crate::Scale;

/// The six configurations of Figure 3(a), in the paper's legend order.
pub fn fig3a_configs() -> Vec<DpsConfig> {
    let mut v = vec![
        DpsConfig::named(TraversalKind::Root, CommKind::Leader),
        DpsConfig::named(TraversalKind::Generic, CommKind::Leader),
        DpsConfig::named(TraversalKind::Root, CommKind::Epidemic),
        DpsConfig::named(TraversalKind::Generic, CommKind::Epidemic),
        DpsConfig::named(TraversalKind::Root, CommKind::Epidemic).with_fanout(2),
        DpsConfig::named(TraversalKind::Generic, CommKind::Epidemic).with_fanout(2),
    ];
    for c in &mut v {
        c.join_rule = JoinRule::Explicit;
    }
    v
}

/// Builds a converged overlay of `n` nodes with `subs_per_node` workload-2
/// subscriptions each (the paper's dependability setup).
fn build_overlay(cfg: DpsConfig, n: usize, subs_per_node: usize, seed: u64) -> DpsNetwork {
    let w = Workload::multiplayer_game();
    let mut net = DpsNetwork::new(cfg, seed);
    let nodes = net.add_nodes(n);
    net.run(30);
    let mut rng = rand::SeedableRng::seed_from_u64(seed ^ 0xabcd);
    let rng: &mut rand::rngs::StdRng = &mut { rng };
    for round in 0..subs_per_node {
        for (i, node) in nodes.iter().enumerate() {
            net.subscribe(*node, w.subscription(rng));
            if i % 25 == 24 {
                net.run(1);
            }
        }
        let _ = round;
        net.run(20);
    }
    net.quiesce(1500);
    net.run(150);
    net
}

/// One measured point of Figure 3(a).
#[derive(Debug, Clone, Serialize)]
pub struct Fig3aPoint {
    /// Configuration label (paper legend).
    pub config: String,
    /// Per-step failure probability (one crash every `1/p` steps).
    pub p: f64,
    /// Ratio of correctly delivered events.
    pub delivered_ratio: f64,
}

/// Figure 3(a) — *Dependability*: delivered ratio vs failure probability.
pub fn fig3a(scale: Scale) -> Vec<Fig3aPoint> {
    crate::banner("Figure 3(a) — dependability under uniform failures", scale);
    let n = scale.pick(250usize, 1000);
    // Keep the paper's survivor fractions: 3000 steps per 1000 nodes means
    // 3 × n steps at any scale (p = 0.25 then kills 75% of the population).
    let steps = scale.pick(750u64, 3000);
    let ps = [0.0, 0.05, 0.10, 0.15, 0.20, 0.25];
    let mut rows = Vec::new();
    println!(
        "{:<26} {}",
        "config",
        ps.iter()
            .map(|p| format!("p={p:<5}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    for cfg in fig3a_configs() {
        let label = cfg.label();
        let mut line = format!("{label:<26}");
        for (pi, p) in ps.iter().enumerate() {
            let mut net = build_overlay(cfg.clone(), n, 3, 42 + pi as u64);
            let start = net.sim().now();
            let plan = ChurnPlan::rate(*p);
            let mut w_rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(7 ^ pi as u64);
            let w = Workload::multiplayer_game();
            for t in 0..steps {
                for ev in plan.events_at(t) {
                    if ev == ChurnEvent::CrashRandom {
                        net.crash_random();
                    }
                }
                // "A new event is published every 10 steps."
                if t % 10 == 0 {
                    if let Some(publisher) = random_alive(&mut net) {
                        net.publish(publisher, w.event(&mut w_rng));
                    }
                }
                net.run(1);
            }
            // Deep chains deliver one hop per step: drain proportionally to the
            // population before measuring.
            net.run(2 * n as u64 + 400);
            let ratio = net.delivered_ratio_between(start, u64::MAX);
            line.push_str(&format!(" {ratio:<7.3}"));
            rows.push(Fig3aPoint {
                config: label.clone(),
                p: *p,
                delivered_ratio: ratio,
            });
        }
        println!("{line}");
    }
    println!("paper shape: all ≥ 0.8; epidemic > leader; epidemic k=2 ≥ 0.97 even at p = 0.25");
    rows
}

fn random_alive(net: &mut DpsNetwork) -> Option<NodeId> {
    let alive = net.sim().alive_ids();
    if alive.is_empty() {
        return None;
    }
    let i = rand::Rng::random_range(net.sim_mut().rng(), 0..alive.len());
    Some(alive[i])
}

/// One measured window of Figure 3(b).
#[derive(Debug, Clone, Serialize)]
pub struct Fig3bPoint {
    /// Configuration label.
    pub config: String,
    /// Window start (steps since the failure phase timeline began).
    pub step: u64,
    /// Delivered ratio for events published in this window.
    pub delivered_ratio: f64,
}

/// Figure 3(b) — *Recovering from failures* (generic traversal): three phases —
/// calm, storm (one crash every 2 steps), recovery.
pub fn fig3b(scale: Scale) -> Vec<Fig3bPoint> {
    crate::banner(
        "Figure 3(b) — recovery from a failure storm (generic)",
        scale,
    );
    let n = scale.pick(250usize, 1000);
    // One crash every 2 steps through the middle phase: phase = n/2 kills 50%
    // of the population, like the paper's 500 crashes among 1000 nodes.
    let phase = scale.pick(200u64, 1000);
    let window = 100u64;
    let configs = vec![
        DpsConfig::named(TraversalKind::Generic, CommKind::Epidemic).with_fanout(2),
        DpsConfig::named(TraversalKind::Generic, CommKind::Epidemic),
        DpsConfig::named(TraversalKind::Generic, CommKind::Leader),
    ];
    let mut rows = Vec::new();
    for (ci, mut cfg) in configs.into_iter().enumerate() {
        cfg.join_rule = JoinRule::Explicit;
        let label = cfg.label();
        let mut net = build_overlay(cfg, n, 3, 90 + ci as u64);
        let start = net.sim().now();
        let plan = ChurnPlan::storm(phase, 2 * phase, 2);
        let w = Workload::multiplayer_game();
        let mut w_rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(17 + ci as u64);
        for t in 0..3 * phase {
            for ev in plan.events_at(t) {
                if ev == ChurnEvent::CrashRandom {
                    net.crash_random();
                }
            }
            if t % 10 == 0 {
                if let Some(publisher) = random_alive(&mut net) {
                    net.publish(publisher, w.event(&mut w_rng));
                }
            }
            net.run(1);
        }
        net.run(2 * n as u64 + 400);
        print!("{label:<26}");
        for wstart in (0..3 * phase).step_by(window as usize) {
            let ratio = net.delivered_ratio_between(start + wstart, start + wstart + window);
            print!(" {ratio:.2}");
            rows.push(Fig3bPoint {
                config: label.clone(),
                step: wstart,
                delivered_ratio: ratio,
            });
        }
        println!();
    }
    println!(
        "(phases: calm 0..{phase}, storm {phase}..{}, recovery after; paper shape: ratio ≥ ~0.95 \
         in the storm, back to 1.0 shortly after it ends)",
        2 * phase
    );
    rows
}

/// One measured window of Figures 3(c)/3(d).
#[derive(Debug, Clone, Serialize)]
pub struct Fig3cdPoint {
    /// Configuration label.
    pub config: String,
    /// Window start step.
    pub step: u64,
    /// Outgoing publication messages per event at the median sender.
    pub median_per_event: f64,
    /// Outgoing publication messages per event at the most loaded node.
    pub max_per_event: f64,
}

/// Figures 3(c)+3(d) — *Scalability*: outgoing messages per event while the
/// system grows (a node joins and subscribes every 2 steps).
pub fn fig3cd(scale: Scale) -> Vec<Fig3cdPoint> {
    crate::banner(
        "Figures 3(c)/3(d) — scalability: outgoing messages per event (median / max)",
        scale,
    );
    let n0 = scale.pick(250usize, 1000);
    let steps = scale.pick(2000u64, 5000);
    let configs = vec![
        DpsConfig::named(TraversalKind::Root, CommKind::Leader),
        DpsConfig::named(TraversalKind::Root, CommKind::Epidemic),
        DpsConfig::named(TraversalKind::Root, CommKind::Epidemic).with_fanout(2),
    ];
    let mut rows = Vec::new();
    for (ci, mut cfg) in configs.into_iter().enumerate() {
        cfg.join_rule = JoinRule::Explicit;
        let label = cfg.label();
        let mut net = build_overlay(cfg, n0, 1, 700 + ci as u64);
        let w = Workload::multiplayer_game();
        let mut w_rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(23 + ci as u64);
        net.sim_mut().set_metrics_window(100);
        let base = net.sim().now();
        for t in 0..steps {
            // "A new node enters the system every two steps and immediately
            // emits a new subscription."
            if t % 2 == 0 {
                let id = net.add_node();
                net.subscribe(id, w.subscription(&mut w_rng));
            }
            // "10 new events every 100 steps."
            if t % 10 == 0 {
                if let Some(publisher) = random_alive(&mut net) {
                    net.publish(publisher, w.event(&mut w_rng));
                }
            }
            net.run(1);
        }
        let series = net.metrics().sent_series(&[MsgClass::Publication]);
        print!("{label:<26}");
        for wstat in &series {
            if wstat.start < base {
                continue;
            }
            let per_event = 10.0; // events per 100-step window
            let median = wstat.stat.median / per_event;
            let max = wstat.stat.max / per_event;
            rows.push(Fig3cdPoint {
                config: label.clone(),
                step: wstat.start - base,
                median_per_event: median,
                max_per_event: max,
            });
        }
        for (i, p) in rows.iter().filter(|r| r.config == label).enumerate() {
            if i % 4 == 0 {
                print!(" {:.1}/{:.0}", p.median_per_event, p.max_per_event);
            }
        }
        println!("   (median/max per event, every 4th window)");
        let _ = ci;
    }
    println!(
        "paper shape: 3(c) epidemic medians stay flat as the system grows; 3(d) the \
         leader-root max grows with system size while epidemic maxima stay bounded"
    );
    rows
}

/// One measured point of Figures 3(e)/3(f)/3(g).
#[derive(Debug, Clone, Serialize)]
pub struct LoadPoint {
    /// Configuration label.
    pub config: String,
    /// Subscriptions per node at this window.
    pub subs_per_node: f64,
    /// Incoming messages (all classes) in the window: median node.
    pub in_median: f64,
    /// Incoming messages: most loaded node.
    pub in_max: f64,
    /// Outgoing messages: median node.
    pub out_median: f64,
    /// Outgoing messages: most loaded node.
    pub out_max: f64,
}

fn load_run(mut cfg: DpsConfig, scale: Scale, seed: u64) -> Vec<LoadPoint> {
    cfg.join_rule = JoinRule::Explicit;
    let label = cfg.label();
    let n = scale.pick(250usize, 1000);
    let steps = scale.pick(1500u64, 3000);
    let sub_every = scale.pick(150u64, 300);
    let w = Workload::multiplayer_game();
    let mut net = DpsNetwork::new(cfg, seed);
    let nodes = net.add_nodes(n);
    net.run(30);
    let mut w_rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(seed ^ 0xfeed);
    net.sim_mut().set_metrics_window(100);
    let base = net.sim().now();
    for t in 0..steps {
        // Each node emits a new subscription every `sub_every` steps (staggered).
        for (i, node) in nodes.iter().enumerate() {
            if (t + i as u64).is_multiple_of(sub_every) {
                net.subscribe(*node, w.subscription(&mut w_rng));
            }
        }
        if t % 10 == 0 {
            if let Some(publisher) = random_alive(&mut net) {
                net.publish(publisher, w.event(&mut w_rng));
            }
        }
        net.run(1);
    }
    let population = net.sim().alive_ids();
    let in_series = net
        .metrics()
        .series(dps_sim::Dir::Recv, &MsgClass::ALL, Some(&population));
    let out_series = net
        .metrics()
        .series(dps_sim::Dir::Sent, &MsgClass::ALL, Some(&population));
    in_series
        .iter()
        .zip(out_series.iter())
        .filter(|(i, _)| i.start >= base)
        .map(|(i, o)| LoadPoint {
            config: label.clone(),
            subs_per_node: (i.start - base) as f64 / sub_every as f64,
            in_median: i.stat.median,
            in_max: i.stat.max,
            out_median: o.stat.median,
            out_max: o.stat.max,
        })
        .collect()
}

/// Figures 3(e)+3(f) — *Leader vs Epidemic*: incoming/outgoing messages per
/// 100-step window as subscriptions accumulate (root-based traversal).
pub fn fig3ef(scale: Scale) -> Vec<LoadPoint> {
    crate::banner(
        "Figures 3(e)/3(f) — leader vs epidemic per-node load",
        scale,
    );
    let mut rows = Vec::new();
    for (ci, cfg) in [
        DpsConfig::named(TraversalKind::Root, CommKind::Leader),
        DpsConfig::named(TraversalKind::Root, CommKind::Epidemic),
    ]
    .into_iter()
    .enumerate()
    {
        let pts = load_run(cfg, scale, 300 + ci as u64);
        summarize_load(&pts);
        rows.extend(pts);
    }
    println!(
        "paper shape: epidemic receives more than leader overall (redundancy); leader max \
         outgoing grows steeply with subscriptions while its median stays ~0; epidemic \
         spreads the sending load (max < half of leader's max)"
    );
    rows
}

/// Figure 3(g) — *Root vs Generic* (leader communication).
pub fn fig3g(scale: Scale) -> Vec<LoadPoint> {
    crate::banner(
        "Figure 3(g) — root vs generic per-node load (leader comm)",
        scale,
    );
    let mut rows = Vec::new();
    for (ci, cfg) in [
        DpsConfig::named(TraversalKind::Root, CommKind::Leader),
        DpsConfig::named(TraversalKind::Generic, CommKind::Leader),
    ]
    .into_iter()
    .enumerate()
    {
        let pts = load_run(cfg, scale, 500 + ci as u64);
        summarize_load(&pts);
        rows.extend(pts);
    }
    println!(
        "paper shape: the root-based max incoming grows with subscriptions (the owner takes \
         every request); generic spreads it nearly flat; outgoing differs little"
    );
    rows
}

fn summarize_load(pts: &[LoadPoint]) {
    if pts.is_empty() {
        return;
    }
    println!("{}:", pts[0].config);
    println!(
        "  {:<14} {:>8} {:>8} {:>8} {:>8}",
        "subs/node", "in med", "in max", "out med", "out max"
    );
    for p in pts.iter().step_by(2) {
        println!(
            "  {:<14.1} {:>8.0} {:>8.0} {:>8.0} {:>8.0}",
            p.subs_per_node, p.in_median, p.in_max, p.out_median, p.out_max
        );
    }
}
