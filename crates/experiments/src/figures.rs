//! Figure runners: the dependability, recovery, scalability and comparison
//! plots of §5.2 (Figures 3(a)–3(g)).
//!
//! Every `(config, parameter)` cell is an independent deterministic simulation
//! with its own seeds, so the runners build one closure per cell and fan them
//! out through [`crate::run_cells`]; rows come back in cell order, making the
//! output identical whatever `DPS_THREADS` is.

use dps::{CommKind, DpsConfig, DpsNetwork, JoinRule, MsgClass, TraversalKind};
use dps_sim::{ChurnEvent, ChurnPlan};
use dps_workload::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use crate::Scale;

/// The six configurations of Figure 3(a), in the paper's legend order.
pub fn fig3a_configs() -> Vec<DpsConfig> {
    let mut v = vec![
        DpsConfig::named(TraversalKind::Root, CommKind::Leader),
        DpsConfig::named(TraversalKind::Generic, CommKind::Leader),
        DpsConfig::named(TraversalKind::Root, CommKind::Epidemic),
        DpsConfig::named(TraversalKind::Generic, CommKind::Epidemic),
        DpsConfig::named(TraversalKind::Root, CommKind::Epidemic).with_fanout(2),
        DpsConfig::named(TraversalKind::Generic, CommKind::Epidemic).with_fanout(2),
    ];
    for c in &mut v {
        c.join_rule = JoinRule::Explicit;
    }
    v
}

/// Builds a converged overlay of `n` nodes with `subs_per_node` workload-2
/// subscriptions each (the paper's dependability setup). Shared with the
/// fault-injection runners in [`crate::faults`]. The simulation runs on
/// `DPS_SHARDS` execution shards — results are byte-identical whatever that
/// is, so every runner built on this inherits intra-run parallelism for free.
pub(crate) fn build_overlay(
    cfg: DpsConfig,
    n: usize,
    subs_per_node: usize,
    seed: u64,
) -> DpsNetwork {
    let w = Workload::multiplayer_game();
    let mut net = DpsNetwork::new_sharded(cfg, seed, crate::shard_count());
    let nodes = net.add_nodes(n);
    net.run(30);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
    for _round in 0..subs_per_node {
        for (i, node) in nodes.iter().enumerate() {
            let _ = net.try_subscribe(*node, w.subscription(&mut rng));
            if i % 25 == 24 {
                net.run(1);
            }
        }
        net.run(20);
    }
    net.quiesce(1500);
    net.run(150);
    net
}

/// One measured point of Figure 3(a).
#[derive(Debug, Clone, Serialize)]
pub struct Fig3aPoint {
    /// Configuration label (paper legend).
    pub config: String,
    /// Per-step failure probability (one crash every `1/p` steps).
    pub p: f64,
    /// Ratio of correctly delivered events.
    pub delivered_ratio: f64,
}

/// One Figure 3(a) cell: build the overlay, crash at rate `p`, publish every
/// 10 steps, then drain and measure. Public so the shape regression test can
/// pin individual cells without paying for the whole figure.
pub fn fig3a_cell(cfg: DpsConfig, p: f64, pi: usize, n: usize, steps: u64) -> Fig3aPoint {
    let label = cfg.label();
    let mut net = build_overlay(cfg, n, 3, 42 + pi as u64);
    let start = net.sim().now();
    let plan = ChurnPlan::rate(p);
    let mut w_rng = StdRng::seed_from_u64(7 ^ pi as u64);
    let w = Workload::multiplayer_game();
    for t in 0..steps {
        for ev in plan.events_at(t) {
            if ev == ChurnEvent::CrashRandom {
                net.crash_random();
            }
        }
        // "A new event is published every 10 steps."
        if t % 10 == 0 {
            if let Some(publisher) = net.random_alive() {
                let _ = net.try_publish(publisher, w.event(&mut w_rng));
            }
        }
        net.run(1);
    }
    // Deep chains deliver one hop per step: drain proportionally to the
    // population before measuring.
    net.run(2 * n as u64 + 400);
    Fig3aPoint {
        config: label,
        p,
        delivered_ratio: net.delivered_ratio_between(start, u64::MAX),
    }
}

/// Figure 3(a) — *Dependability*: delivered ratio vs failure probability.
pub fn fig3a(scale: Scale) -> Vec<Fig3aPoint> {
    crate::banner("Figure 3(a) — dependability under uniform failures", scale);
    let n = scale.pick(60usize, 250, 1000);
    // Keep the paper's survivor fractions: 3000 steps per 1000 nodes means
    // 3 × n steps at any scale (p = 0.25 then kills 75% of the population).
    let steps = scale.pick(180u64, 750, 3000);
    let ps = [0.0, 0.05, 0.10, 0.15, 0.20, 0.25];
    println!(
        "{:<26} {}",
        "config",
        ps.iter()
            .map(|p| format!("p={p:<5}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    let mut cells = Vec::new();
    for cfg in fig3a_configs() {
        for (pi, p) in ps.iter().enumerate() {
            let cfg = cfg.clone();
            let p = *p;
            cells.push(move || fig3a_cell(cfg, p, pi, n, steps));
        }
    }
    let rows = crate::run_cells(cells);
    for config_rows in rows.chunks(ps.len()) {
        let mut line = format!("{:<26}", config_rows[0].config);
        for r in config_rows {
            line.push_str(&format!(" {:<7.3}", r.delivered_ratio));
        }
        println!("{line}");
    }
    println!("paper shape: all ≥ 0.8; epidemic > leader; epidemic k=2 ≥ 0.97 even at p = 0.25");
    rows
}

/// One measured window of Figure 3(b).
#[derive(Debug, Clone, Serialize)]
pub struct Fig3bPoint {
    /// Configuration label.
    pub config: String,
    /// Window start (steps since the failure phase timeline began).
    pub step: u64,
    /// Delivered ratio for events published in this window.
    pub delivered_ratio: f64,
}

/// Figure 3(b) — *Recovering from failures* (generic traversal): three phases —
/// calm, storm (one crash every 2 steps), recovery.
pub fn fig3b(scale: Scale) -> Vec<Fig3bPoint> {
    crate::banner(
        "Figure 3(b) — recovery from a failure storm (generic)",
        scale,
    );
    let n = scale.pick(60usize, 250, 1000);
    // One crash every 2 steps through the middle phase: phase = n/2 kills 50%
    // of the population, like the paper's 500 crashes among 1000 nodes.
    let phase = scale.pick(60u64, 200, 1000);
    let window = 100u64.min(phase);
    let configs = vec![
        DpsConfig::named(TraversalKind::Generic, CommKind::Epidemic).with_fanout(2),
        DpsConfig::named(TraversalKind::Generic, CommKind::Epidemic),
        DpsConfig::named(TraversalKind::Generic, CommKind::Leader),
    ];
    let cells: Vec<_> = configs
        .into_iter()
        .enumerate()
        .map(|(ci, mut cfg)| {
            move || {
                cfg.join_rule = JoinRule::Explicit;
                let label = cfg.label();
                let mut net = build_overlay(cfg, n, 3, 90 + ci as u64);
                let start = net.sim().now();
                let plan = ChurnPlan::storm(phase, 2 * phase, 2);
                let w = Workload::multiplayer_game();
                let mut w_rng = StdRng::seed_from_u64(17 + ci as u64);
                for t in 0..3 * phase {
                    for ev in plan.events_at(t) {
                        if ev == ChurnEvent::CrashRandom {
                            net.crash_random();
                        }
                    }
                    if t % 10 == 0 {
                        if let Some(publisher) = net.random_alive() {
                            let _ = net.try_publish(publisher, w.event(&mut w_rng));
                        }
                    }
                    net.run(1);
                }
                net.run(2 * n as u64 + 400);
                (0..3 * phase)
                    .step_by(window as usize)
                    .map(|wstart| Fig3bPoint {
                        config: label.clone(),
                        step: wstart,
                        delivered_ratio: net
                            .delivered_ratio_between(start + wstart, start + wstart + window),
                    })
                    .collect::<Vec<_>>()
            }
        })
        .collect();
    let mut rows = Vec::new();
    for pts in crate::run_cells(cells) {
        let mut line = format!("{:<26}", pts[0].config);
        for p in &pts {
            line.push_str(&format!(" {:.2}", p.delivered_ratio));
        }
        println!("{line}");
        rows.extend(pts);
    }
    println!(
        "(phases: calm 0..{phase}, storm {phase}..{}, recovery after; paper shape: ratio ≥ ~0.95 \
         in the storm, back to 1.0 shortly after it ends)",
        2 * phase
    );
    rows
}

/// One measured window of Figures 3(c)/3(d).
#[derive(Debug, Clone, Serialize)]
pub struct Fig3cdPoint {
    /// Configuration label.
    pub config: String,
    /// Window start step.
    pub step: u64,
    /// Outgoing publication messages per event at the median sender.
    pub median_per_event: f64,
    /// Outgoing publication messages per event at the most loaded node.
    pub max_per_event: f64,
}

/// Figures 3(c)+3(d) — *Scalability*: outgoing messages per event while the
/// system grows (a node joins and subscribes every 2 steps).
pub fn fig3cd(scale: Scale) -> Vec<Fig3cdPoint> {
    crate::banner(
        "Figures 3(c)/3(d) — scalability: outgoing messages per event (median / max)",
        scale,
    );
    let n0 = scale.pick(60usize, 250, 1000);
    let steps = scale.pick(400u64, 2000, 5000);
    let configs = vec![
        DpsConfig::named(TraversalKind::Root, CommKind::Leader),
        DpsConfig::named(TraversalKind::Root, CommKind::Epidemic),
        DpsConfig::named(TraversalKind::Root, CommKind::Epidemic).with_fanout(2),
    ];
    let cells: Vec<_> = configs
        .into_iter()
        .enumerate()
        .map(|(ci, mut cfg)| {
            move || {
                cfg.join_rule = JoinRule::Explicit;
                let label = cfg.label();
                let mut net = build_overlay(cfg, n0, 1, 700 + ci as u64);
                let w = Workload::multiplayer_game();
                let mut w_rng = StdRng::seed_from_u64(23 + ci as u64);
                net.sim_mut().set_metrics_window(100);
                let base = net.sim().now();
                for t in 0..steps {
                    // "A new node enters the system every two steps and immediately
                    // emits a new subscription."
                    if t % 2 == 0 {
                        let id = net.add_node();
                        let _ = net.try_subscribe(id, w.subscription(&mut w_rng));
                    }
                    // "10 new events every 100 steps."
                    if t % 10 == 0 {
                        if let Some(publisher) = net.random_alive() {
                            let _ = net.try_publish(publisher, w.event(&mut w_rng));
                        }
                    }
                    net.run(1);
                }
                let series = net.metrics().sent_series(&[MsgClass::Publication]);
                series
                    .iter()
                    .filter(|wstat| wstat.start >= base)
                    .map(|wstat| {
                        let per_event = 10.0; // events per 100-step window
                        Fig3cdPoint {
                            config: label.clone(),
                            step: wstat.start - base,
                            median_per_event: wstat.stat.median / per_event,
                            max_per_event: wstat.stat.max / per_event,
                        }
                    })
                    .collect::<Vec<_>>()
            }
        })
        .collect();
    let mut rows = Vec::new();
    for pts in crate::run_cells(cells) {
        if let Some(first) = pts.first() {
            let mut line = format!("{:<26}", first.config);
            for p in pts.iter().step_by(4) {
                line.push_str(&format!(
                    " {:.1}/{:.0}",
                    p.median_per_event, p.max_per_event
                ));
            }
            println!("{line}   (median/max per event, every 4th window)");
        }
        rows.extend(pts);
    }
    println!(
        "paper shape: 3(c) epidemic medians stay flat as the system grows; 3(d) the \
         leader-root max grows with system size while epidemic maxima stay bounded"
    );
    rows
}

/// One measured point of Figures 3(e)/3(f)/3(g).
#[derive(Debug, Clone, Serialize)]
pub struct LoadPoint {
    /// Configuration label.
    pub config: String,
    /// Subscriptions per node at this window.
    pub subs_per_node: f64,
    /// Incoming messages (all classes) in the window: median node.
    pub in_median: f64,
    /// Incoming messages: most loaded node.
    pub in_max: f64,
    /// Outgoing messages: median node.
    pub out_median: f64,
    /// Outgoing messages: most loaded node.
    pub out_max: f64,
}

fn load_run(mut cfg: DpsConfig, scale: Scale, seed: u64) -> Vec<LoadPoint> {
    cfg.join_rule = JoinRule::Explicit;
    let label = cfg.label();
    let n = scale.pick(60usize, 250, 1000);
    let steps = scale.pick(400u64, 1500, 3000);
    let sub_every = scale.pick(100u64, 150, 300);
    let w = Workload::multiplayer_game();
    let mut net = DpsNetwork::new_sharded(cfg, seed, crate::shard_count());
    let nodes = net.add_nodes(n);
    net.run(30);
    let mut w_rng = StdRng::seed_from_u64(seed ^ 0xfeed);
    net.sim_mut().set_metrics_window(100);
    let base = net.sim().now();
    for t in 0..steps {
        // Each node emits a new subscription every `sub_every` steps (staggered).
        for (i, node) in nodes.iter().enumerate() {
            if (t + i as u64).is_multiple_of(sub_every) {
                let _ = net.try_subscribe(*node, w.subscription(&mut w_rng));
            }
        }
        if t % 10 == 0 {
            if let Some(publisher) = net.random_alive() {
                let _ = net.try_publish(publisher, w.event(&mut w_rng));
            }
        }
        net.run(1);
    }
    let population = net.sim().alive_ids();
    // One merged-metrics snapshot serves both series (metrics() clones the
    // full collector since the shard split).
    let metrics = net.metrics();
    let in_series = metrics.series(dps_sim::Dir::Recv, &MsgClass::ALL, Some(&population));
    let out_series = metrics.series(dps_sim::Dir::Sent, &MsgClass::ALL, Some(&population));
    in_series
        .iter()
        .zip(out_series.iter())
        .filter(|(i, _)| i.start >= base)
        .map(|(i, o)| LoadPoint {
            config: label.clone(),
            subs_per_node: (i.start - base) as f64 / sub_every as f64,
            in_median: i.stat.median,
            in_max: i.stat.max,
            out_median: o.stat.median,
            out_max: o.stat.max,
        })
        .collect()
}

/// Runs `load_run` for each config in parallel and prints the summaries in order.
fn load_runs(configs: Vec<DpsConfig>, scale: Scale, seed0: u64) -> Vec<LoadPoint> {
    let cells: Vec<_> = configs
        .into_iter()
        .enumerate()
        .map(|(ci, cfg)| move || load_run(cfg, scale, seed0 + ci as u64))
        .collect();
    let mut rows = Vec::new();
    for pts in crate::run_cells(cells) {
        summarize_load(&pts);
        rows.extend(pts);
    }
    rows
}

/// Figures 3(e)+3(f) — *Leader vs Epidemic*: incoming/outgoing messages per
/// 100-step window as subscriptions accumulate (root-based traversal).
pub fn fig3ef(scale: Scale) -> Vec<LoadPoint> {
    crate::banner(
        "Figures 3(e)/3(f) — leader vs epidemic per-node load",
        scale,
    );
    let rows = load_runs(
        vec![
            DpsConfig::named(TraversalKind::Root, CommKind::Leader),
            DpsConfig::named(TraversalKind::Root, CommKind::Epidemic),
        ],
        scale,
        300,
    );
    println!(
        "paper shape: epidemic receives more than leader overall (redundancy); leader max \
         outgoing grows steeply with subscriptions while its median stays ~0; epidemic \
         spreads the sending load (max < half of leader's max)"
    );
    rows
}

/// Figure 3(g) — *Root vs Generic* (leader communication).
pub fn fig3g(scale: Scale) -> Vec<LoadPoint> {
    crate::banner(
        "Figure 3(g) — root vs generic per-node load (leader comm)",
        scale,
    );
    let rows = load_runs(
        vec![
            DpsConfig::named(TraversalKind::Root, CommKind::Leader),
            DpsConfig::named(TraversalKind::Generic, CommKind::Leader),
        ],
        scale,
        500,
    );
    println!(
        "paper shape: the root-based max incoming grows with subscriptions (the owner takes \
         every request); generic spreads it nearly flat; outgoing differs little"
    );
    rows
}

fn summarize_load(pts: &[LoadPoint]) {
    if pts.is_empty() {
        return;
    }
    println!("{}:", pts[0].config);
    println!(
        "  {:<14} {:>8} {:>8} {:>8} {:>8}",
        "subs/node", "in med", "in max", "out med", "out max"
    );
    for p in pts.iter().step_by(2) {
        println!(
            "  {:<14.1} {:>8.0} {:>8.0} {:>8.0} {:>8.0}",
            p.subs_per_node, p.in_median, p.in_max, p.out_median, p.out_max
        );
    }
}
