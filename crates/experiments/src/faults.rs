//! Fault-injection scenario runners: the dependability experiments the paper's
//! §5.2 gestures at but the cycle simulator could not express before the
//! link-fault model existed — network partitions (with the epidemic merge
//! process healing the overlay afterwards) and uniformly lossy links.
//!
//! Both runners follow the figure-runner conventions: every `(config, phase)` /
//! `(config, loss)` cell is an independent deterministic simulation fanned out
//! through [`crate::run_cells`], rows come back in cell order (so output is
//! byte-identical whatever `DPS_THREADS` is), and the bench target persists
//! them as JSON under `target/experiments/`.

use dps::{CommKind, DpsConfig, DropReason, JoinRule, TraversalKind};
use dps_workload::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use crate::figures::build_overlay;
use crate::Scale;

/// The configurations both fault runners compare: the leader flavor against
/// the epidemic flavors whose redundancy the fault model is meant to stress.
fn fault_configs() -> Vec<DpsConfig> {
    let mut v = vec![
        DpsConfig::named(TraversalKind::Root, CommKind::Leader),
        DpsConfig::named(TraversalKind::Root, CommKind::Epidemic),
        DpsConfig::named(TraversalKind::Root, CommKind::Epidemic).with_fanout(2),
    ];
    for c in &mut v {
        c.join_rule = JoinRule::Explicit;
    }
    v
}

/// One measured phase of the partition-merge scenario.
#[derive(Debug, Clone, Serialize)]
pub struct PartitionPoint {
    /// Configuration label (figure-legend style).
    pub config: String,
    /// `"partitioned"` (cut in force) or `"healed"` (after `heal()`).
    pub phase: String,
    /// Raw delivered ratio over the phase's publications: every alive matching
    /// subscriber counts, including those on the far side of the cut.
    pub delivered_ratio: f64,
    /// Delivered ratio over the *reachable* pairs only (far-side subscribers
    /// excluded from the denominator while the partition holds).
    pub delivered_ratio_reachable: f64,
    /// Cross-side messages dropped by the engine so far.
    pub dropped_partitioned: u64,
}

/// One cell: build the overlay, split it in half, publish through the cut,
/// heal, publish again, and account both phases.
fn partition_cell(cfg: DpsConfig, ci: usize, n: usize, phase_steps: u64) -> Vec<PartitionPoint> {
    let label = cfg.label();
    let mut net = build_overlay(cfg, n, 2, 4200 + ci as u64);
    let w = Workload::multiplayer_game();
    let mut w_rng = StdRng::seed_from_u64(31 + ci as u64);
    let start = net.sim().now();
    net.partition_split(n / 2);
    for t in 0..phase_steps {
        if t % 10 == 0 {
            if let Some(publisher) = net.random_alive() {
                let _ = net.try_publish(publisher, w.event(&mut w_rng));
            }
        }
        net.run(1);
    }
    let healed_at = net.sim().now();
    let dropped_during = net.metrics().dropped_for(DropReason::Partitioned);
    net.heal();
    for t in 0..phase_steps {
        if t % 10 == 0 {
            if let Some(publisher) = net.random_alive() {
                let _ = net.try_publish(publisher, w.event(&mut w_rng));
            }
        }
        net.run(1);
    }
    // Drain: deep chains deliver one hop per step.
    net.run(2 * n as u64 + 200);
    vec![
        PartitionPoint {
            config: label.clone(),
            phase: "partitioned".into(),
            delivered_ratio: net.delivered_ratio_between(start, healed_at),
            delivered_ratio_reachable: net.delivered_ratio_reachable_between(start, healed_at),
            dropped_partitioned: dropped_during,
        },
        PartitionPoint {
            config: label,
            phase: "healed".into(),
            delivered_ratio: net.delivered_ratio_between(healed_at, u64::MAX),
            delivered_ratio_reachable: net.delivered_ratio_reachable_between(healed_at, u64::MAX),
            dropped_partitioned: net.metrics().dropped_for(DropReason::Partitioned),
        },
    ]
}

/// Partition-merge scenario: the overlay is split into two halves for a while
/// (cross-side messages drop at delivery), then healed; the epidemic merge
/// process (view-exchange pushes, owner merge walks) must reconnect the halves
/// and delivery must return to the fault-free level.
pub fn partition_merge(scale: Scale) -> Vec<PartitionPoint> {
    crate::banner("Partition + merge — delivery across a healed split", scale);
    let n = scale.pick(40usize, 150, 1000);
    let phase_steps = scale.pick(120u64, 300, 1000);
    let cells: Vec<_> = fault_configs()
        .into_iter()
        .enumerate()
        .map(|(ci, cfg)| move || partition_cell(cfg, ci, n, phase_steps))
        .collect();
    let mut rows = Vec::new();
    println!(
        "{:<26} {:>12} {:>10} {:>10} {:>10}",
        "config", "phase", "raw", "reachable", "drops"
    );
    for pts in crate::run_cells(cells) {
        for p in &pts {
            println!(
                "{:<26} {:>12} {:>10.3} {:>10.3} {:>10}",
                p.config,
                p.phase,
                p.delivered_ratio,
                p.delivered_ratio_reachable,
                p.dropped_partitioned
            );
        }
        rows.extend(pts);
    }
    println!(
        "expected shape: while partitioned, raw ≈ 0.5 (far side unreachable) but \
         reachable ≈ 1; healed back to ≈ 1 on both measures"
    );
    rows
}

/// One measured point of the loss sweep.
#[derive(Debug, Clone, Serialize)]
pub struct LossPoint {
    /// Configuration label.
    pub config: String,
    /// Per-link delivery drop probability.
    pub loss: f64,
    /// Delivered ratio over the lossy window's publications.
    pub delivered_ratio: f64,
    /// Messages the engine dropped to loss sampling.
    pub dropped_loss: u64,
}

fn loss_cell(cfg: DpsConfig, ci: usize, loss: f64, n: usize, steps: u64) -> LossPoint {
    let label = cfg.label();
    let mut net = build_overlay(cfg, n, 2, 8600 + ci as u64);
    let w = Workload::multiplayer_game();
    let mut w_rng = StdRng::seed_from_u64(53 + ci as u64);
    let start = net.sim().now();
    net.set_loss(loss);
    for t in 0..steps {
        if t % 10 == 0 {
            if let Some(publisher) = net.random_alive() {
                let _ = net.try_publish(publisher, w.event(&mut w_rng));
            }
        }
        net.run(1);
    }
    // The drain runs with the loss still in force: retries and gossip
    // redundancy, not luck, have to close the gap.
    net.run(2 * n as u64 + 200);
    LossPoint {
        config: label,
        loss,
        delivered_ratio: net.delivered_ratio_between(start, u64::MAX),
        dropped_loss: net.metrics().dropped_for(DropReason::Loss),
    }
}

/// Delivery-under-loss sweep: every link drops each delivery with probability
/// `loss`; the sweep compares how the leader and epidemic flavors degrade.
pub fn loss_sweep(scale: Scale) -> Vec<LossPoint> {
    crate::banner("Lossy links — delivered ratio vs uniform loss", scale);
    let n = scale.pick(40usize, 150, 1000);
    let steps = scale.pick(120u64, 300, 2000);
    let losses = [0.0, 0.05, 0.10, 0.20, 0.30];
    let mut cells = Vec::new();
    for (ci, cfg) in fault_configs().into_iter().enumerate() {
        for loss in losses {
            let cfg = cfg.clone();
            cells.push(move || loss_cell(cfg, ci, loss, n, steps));
        }
    }
    let rows = crate::run_cells(cells);
    println!(
        "{:<26} {}",
        "config",
        losses
            .iter()
            .map(|l| format!("q={l:<5}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    for config_rows in rows.chunks(losses.len()) {
        let mut line = format!("{:<26}", config_rows[0].config);
        for r in config_rows {
            line.push_str(&format!(" {:<7.3}", r.delivered_ratio));
        }
        println!("{line}");
    }
    println!(
        "expected shape: the epidemic flavors degrade gracefully (redundant gossip \
         absorbs loss); leader single-path delivery falls off faster"
    );
    rows
}
