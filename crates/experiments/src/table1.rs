//! Table 1 — *False Positives*: percentage of matching, contacted and
//! false-positive nodes for the three workloads, plus the broadcast comparison.
//!
//! Protocol: "we first issued 10,000 subscriptions (one per node) to build the
//! overlay and then we issued 10,000 events. The approach is generic,
//! leader-based (not influencing results). We compute the number of visited
//! nodes per event diffusion, evaluating the number of false positives."

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use dps::model::ForestModel;
use dps::{CommKind, DpsConfig, DpsNode, JoinRule, NodeId, PubId, StatsSink, TraversalKind};
use dps_sim::{Sim, Step};
use dps_workload::Workload;
use rand::rngs::StdRng;
use rand::seq::IteratorRandom;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use crate::Scale;

/// A per-publication tally sink: counts contacted/notified nodes without keeping
/// the full `(publication, node)` pair set — Table 1 at paper scale touches tens
/// of millions of pairs.
#[derive(Debug, Default)]
pub struct TallySink {
    contacted: Mutex<HashMap<PubId, u32>>,
}

impl StatsSink for TallySink {
    fn on_contact(&self, id: PubId, _node: NodeId, _now: Step) {
        *self.contacted.lock().unwrap().entry(id).or_insert(0) += 1;
    }

    fn on_notify(&self, _id: PubId, _node: NodeId, _now: Step) {}
}

impl TallySink {
    fn contacted(&self, id: PubId) -> u32 {
        self.contacted
            .lock()
            .unwrap()
            .get(&id)
            .copied()
            .unwrap_or(0)
    }
}

/// One row of Table 1 (measured side).
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Workload name.
    pub workload: String,
    /// Average fraction of nodes whose subscription matches an event (percent).
    pub matching_pct: f64,
    /// Average fraction of nodes visited per event (percent).
    pub contacted_pct: f64,
    /// Contacted − matching: the false positives (percent).
    pub false_positive_pct: f64,
    /// A broadcast visits 100% of the nodes; this is the visited-node reduction
    /// DPS achieves with respect to it (percent).
    pub reduction_vs_broadcast_pct: f64,
    /// The paper's reported (matching, contacted, false positive) percentages.
    pub paper: (f64, f64, f64),
}

/// The paper's reported values per workload.
fn paper_values(name: &str) -> (f64, f64, f64) {
    if name.contains("workload 1") {
        (2.37, 13.56, 11.19)
    } else if name.contains("workload 2") {
        (25.13, 54.74, 29.61)
    } else {
        (0.42, 17.15, 16.73)
    }
}

/// Runs the Table 1 experiment for one workload.
pub fn run_workload(w: &Workload, scale: Scale, seed: u64) -> Table1Row {
    let n = scale.pick(120usize, 600, 10_000);
    let n_events = scale.pick(60usize, 300, 10_000);
    let sub_rate = scale.pick(4usize, 4, 25); // subscriptions issued per step
    let ev_rate = scale.pick(2usize, 2, 5); // events published per step

    // Generic traversal + leader communication, as in the paper.
    let mut cfg = DpsConfig::named(TraversalKind::Generic, CommKind::Leader);
    cfg.join_rule = JoinRule::Explicit;

    let sink = Arc::new(TallySink::default());
    let mut sim: Sim<DpsNode> = Sim::new_sharded(seed, crate::shard_count());
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5bd1_e995);
    let mut oracle = ForestModel::new();

    // Bring up the population with random peer seeding (as DpsNetwork does).
    let mut nodes: Vec<NodeId> = Vec::with_capacity(n);
    for _ in 0..n {
        let s: Arc<dyn StatsSink> = sink.clone();
        let mut node = DpsNode::with_sink(cfg.clone(), s);
        let sample: Vec<NodeId> = nodes.iter().copied().choose_multiple(&mut rng, 8);
        node.seed_peers(sample);
        let id = sim.add_node(node);
        for p in nodes.iter().copied().choose_multiple(&mut rng, 3) {
            if let Some(peer) = sim.node_mut(p) {
                peer.seed_peers(vec![id]);
            }
        }
        nodes.push(id);
    }
    sim.run(30);

    // Phase 1: one subscription per node, paced.
    let mut pending: Vec<NodeId> = nodes.clone();
    while let Some(batch) = {
        let take = sub_rate.min(pending.len());
        if take == 0 {
            None
        } else {
            Some(pending.drain(..take).collect::<Vec<_>>())
        }
    } {
        for node in batch {
            let filter = dps::SharedFilter::from(w.subscription(&mut rng));
            let join_idx = rng.random_range(0..filter.predicates().len());
            oracle.subscribe(node, &filter, join_idx);
            let f = filter.clone();
            sim.invoke(node, move |n, ctx| {
                n.subscribe_with(f, join_idx, ctx);
            });
        }
        sim.step();
    }
    // Let the overlay converge.
    for _ in 0..4000 {
        let unplaced: usize = nodes
            .iter()
            .filter_map(|id| sim.node(*id))
            .map(|n| n.pending_subscriptions())
            .sum();
        if unplaced == 0 {
            break;
        }
        sim.step();
    }
    sim.run(120);

    // Phase 2: events, paced; collect the oracle's matching count per event.
    let mut pubs: Vec<(PubId, usize)> = Vec::with_capacity(n_events);
    let mut published = 0usize;
    while published < n_events {
        for _ in 0..ev_rate.min(n_events - published) {
            let ev = w.event(&mut rng);
            let matching = oracle.matching_subscribers(&ev).len();
            let publisher = nodes[rng.random_range(0..nodes.len())];
            let e = ev.clone();
            let mut got = None;
            sim.invoke(publisher, |n, ctx| got = Some(n.publish(e, ctx)));
            if let Some(id) = got {
                pubs.push((id, matching));
                published += 1;
            }
        }
        sim.step();
    }
    sim.run(150); // drain in-flight disseminations

    let n_f = n as f64;
    let mut matching_sum = 0.0;
    let mut contacted_sum = 0.0;
    for (id, matching) in &pubs {
        matching_sum += *matching as f64 / n_f;
        contacted_sum += f64::from(sink.contacted(*id)).min(n_f) / n_f;
    }
    let matching_pct = 100.0 * matching_sum / pubs.len() as f64;
    let contacted_pct = 100.0 * contacted_sum / pubs.len() as f64;
    Table1Row {
        workload: w.name().to_owned(),
        matching_pct,
        contacted_pct,
        false_positive_pct: (contacted_pct - matching_pct).max(0.0),
        reduction_vs_broadcast_pct: 100.0 - contacted_pct,
        paper: paper_values(w.name()),
    }
}

/// Runs the full Table 1 and prints it.
pub fn run(scale: Scale) -> Vec<Table1Row> {
    crate::banner("Table 1 — false positives per workload", scale);
    println!(
        "{:<34} {:>9} {:>10} {:>9}   {:>24}",
        "workload", "matching%", "contacted%", "falsepos%", "paper (m%, c%, fp%)"
    );
    // One independent deterministic cell per workload.
    let makers: [fn() -> Workload; 3] = [
        Workload::stock_exchange,
        Workload::multiplayer_game,
        Workload::alert_monitoring,
    ];
    let cells: Vec<_> = makers
        .into_iter()
        .enumerate()
        .map(|(i, mk)| move || run_workload(&mk(), scale, 1000 + i as u64))
        .collect();
    let rows = crate::run_cells(cells);
    for row in &rows {
        println!(
            "{:<34} {:>9.2} {:>10.2} {:>9.2}   ({:>5.2}, {:>5.2}, {:>5.2})",
            row.workload,
            row.matching_pct,
            row.contacted_pct,
            row.false_positive_pct,
            row.paper.0,
            row.paper.1,
            row.paper.2,
        );
    }
    let avg_reduction: f64 = rows
        .iter()
        .map(|r| r.reduction_vs_broadcast_pct)
        .sum::<f64>()
        / rows.len() as f64;
    println!(
        "visited-node reduction vs broadcast: {:.0}% on average (paper: ≥45%, ~70% average, up to 87%)",
        avg_reduction
    );
    rows
}
