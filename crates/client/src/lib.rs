//! **dps-client** — the client side of a `dps-broker` connection, with the
//! same session-first shape as `dps::session`: a [`Session`] hands out
//! [`Publisher`] and [`Subscriber`] handles, failures are typed
//! [`DpsError`]s, and deliveries are `dps::Delivery` values. Code written
//! against the in-process `Hub` ports to a served broker by replacing how the
//! session is opened.
//!
//! The client is poll-based and single-threaded like the broker: nothing here
//! spawns threads, and no call blocks forever. [`Session::poll`] makes
//! progress (reads frames, routes deliveries and acks); the `wait_*`
//! convenience paths poll with a sleep and a deadline and are what the CLI
//! tools use.
//!
//! # Credit
//!
//! Each subscription starts with a credit window ([`SubscribeOptions`]) and
//! the subscriber replenishes it automatically as deliveries are consumed
//! (`recv`/`drain`), in half-window batches. Stop consuming and the broker
//! stops sending after at most a window's worth — backpressure without any
//! broker-side blocking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::time::{Duration, Instant};

use dps::{Delivery, DpsError};
use dps_broker::wire::{self, Frame, FrameReader, PubRef, PROTOCOL_VERSION};
use dps_broker::{Connection, Transport};
use dps_content::{SharedEvent, SharedFilter};

/// Default per-subscription credit window.
pub const DEFAULT_CREDIT: u32 = 64;

/// Per-subscription knobs for [`Session::subscriber`].
#[derive(Debug, Clone, Copy)]
pub struct SubscribeOptions {
    /// Initial credit window granted to the broker.
    pub credit: u32,
    /// Automatically grant more credit as deliveries are consumed.
    pub auto_credit: bool,
}

impl Default for SubscribeOptions {
    fn default() -> Self {
        SubscribeOptions {
            credit: DEFAULT_CREDIT,
            auto_credit: true,
        }
    }
}

struct SubInbox {
    queue: VecDeque<Delivery>,
    /// Deliveries consumed since the last `Credit` frame (auto-credit).
    consumed: u32,
    open: bool,
}

struct Inner {
    conn: Box<dyn Connection>,
    reader: FrameReader,
    out: VecDeque<u8>,
    session: Option<u64>,
    next_seq: u64,
    next_sub: u64,
    /// Acks routed back by request seq.
    acks: HashMap<u64, Result<Option<PubRef>, String>>,
    subs: HashMap<u64, Rc<RefCell<SubInbox>>>,
    opts: HashMap<u64, SubscribeOptions>,
    open: bool,
    /// Set when the broker sent `Close` (its reason) or the link died.
    closed_reason: Option<String>,
}

impl Inner {
    fn queue(&mut self, frame: &Frame) -> Result<(), DpsError> {
        let bytes = wire::encode(frame).map_err(|e| DpsError::Protocol(e.to_string()))?;
        self.out.extend(bytes);
        Ok(())
    }

    /// Non-blocking progress: flush pending output, read frames, route them.
    fn poll(&mut self) -> Result<(), DpsError> {
        if self.closed_reason.is_some() {
            return Ok(());
        }
        while !self.out.is_empty() {
            let (head, _) = self.out.as_slices();
            match self.conn.send(head) {
                Ok(0) => break,
                Ok(n) => {
                    self.out.drain(..n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => {
                    self.closed_reason = Some(format!("send failed: {e}"));
                    return Ok(());
                }
            }
        }
        let mut buf = [0u8; 4096];
        loop {
            match self.conn.recv(&mut buf) {
                Ok(0) => {
                    if self.closed_reason.is_none() {
                        self.closed_reason = Some("broker closed the connection".into());
                    }
                    break;
                }
                Ok(n) => self.reader.feed(&buf[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => {
                    self.closed_reason = Some(format!("recv failed: {e}"));
                    break;
                }
            }
        }
        loop {
            match self.reader.next_frame() {
                Ok(Some(frame)) => self.route(frame),
                Ok(None) => break,
                Err(e) => {
                    let e = dps_broker::broker::wire_to_dps(e);
                    self.closed_reason = Some(e.to_string());
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    fn route(&mut self, frame: Frame) {
        match frame {
            Frame::Hello { session, .. } => self.session = session,
            Frame::Ack { seq, pub_id, error } => {
                self.acks.insert(
                    seq,
                    match error {
                        None => Ok(pub_id),
                        Some(e) => Err(e),
                    },
                );
            }
            Frame::Deliver {
                sub,
                publisher,
                pub_seq,
                event,
            } => {
                if let Some(inbox) = self.subs.get(&sub) {
                    let mut inbox = inbox.borrow_mut();
                    if inbox.open {
                        inbox.queue.push_back(Delivery {
                            publisher,
                            seq: pub_seq,
                            event,
                        });
                    }
                }
                // Deliveries for a closed/unknown sub raced the unsubscribe;
                // they are dropped, as the protocol documents.
            }
            Frame::Close { reason } => {
                self.closed_reason = Some(format!("broker closed session: {reason}"));
            }
            // Client-only frames from the broker are a protocol violation.
            Frame::Subscribe { .. }
            | Frame::Unsubscribe { .. }
            | Frame::Publish { .. }
            | Frame::Credit { .. } => {
                self.closed_reason = Some("broker sent a client-only frame".into());
            }
        }
    }

    fn check_open(&self) -> Result<(), DpsError> {
        if !self.open {
            return Err(DpsError::SessionClosed);
        }
        if let Some(reason) = &self.closed_reason {
            return Err(DpsError::Transport(reason.clone()));
        }
        Ok(())
    }

    /// Polls until `done` yields a value or `deadline` passes.
    fn wait<T>(
        &mut self,
        deadline: Instant,
        what: &str,
        mut done: impl FnMut(&mut Inner) -> Option<T>,
    ) -> Result<T, DpsError> {
        loop {
            self.poll()?;
            if let Some(v) = done(self) {
                return Ok(v);
            }
            if let Some(reason) = &self.closed_reason {
                return Err(DpsError::Transport(reason.clone()));
            }
            if Instant::now() >= deadline {
                return Err(DpsError::Transport(format!("timed out waiting for {what}")));
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    fn wait_ack(&mut self, seq: u64, timeout: Duration) -> Result<Option<PubRef>, DpsError> {
        let out = self.wait(Instant::now() + timeout, "broker ack", |inner| {
            inner.acks.remove(&seq)
        })?;
        out.map_err(DpsError::Protocol)
    }
}

/// A live client session on a broker. The served counterpart of
/// `dps::Session`.
pub struct Session {
    inner: Rc<RefCell<Inner>>,
    timeout: Duration,
}

impl Session {
    /// Connects over `transport` to the broker at `addr` and completes the
    /// `Hello` handshake (bounded by `timeout`, which also bounds every later
    /// request/ack round-trip on this session).
    pub fn connect(
        transport: &dyn Transport,
        addr: &str,
        timeout: Duration,
    ) -> Result<Session, DpsError> {
        let conn = transport
            .connect(addr)
            .map_err(|e| DpsError::Transport(format!("connect to {addr}: {e}")))?;
        let mut inner = Inner {
            conn,
            reader: FrameReader::new(),
            out: VecDeque::new(),
            session: None,
            next_seq: 1,
            next_sub: 1,
            acks: HashMap::new(),
            subs: HashMap::new(),
            opts: HashMap::new(),
            open: true,
            closed_reason: None,
        };
        inner.queue(&Frame::Hello {
            version: PROTOCOL_VERSION,
            session: None,
        })?;
        inner.wait(Instant::now() + timeout, "broker hello", |i| i.session)?;
        Ok(Session {
            inner: Rc::new(RefCell::new(inner)),
            timeout,
        })
    }

    /// The broker-assigned session id.
    pub fn id(&self) -> u64 {
        self.inner.borrow().session.expect("set by handshake")
    }

    /// Whether the session (and its link) is still usable.
    pub fn is_open(&self) -> bool {
        let inner = self.inner.borrow();
        inner.open && inner.closed_reason.is_none()
    }

    /// Non-blocking progress; call this from event loops that do their own
    /// scheduling. `recv`/`drain` on subscribers poll implicitly.
    pub fn poll(&self) -> Result<(), DpsError> {
        self.inner.borrow_mut().poll()
    }

    /// A publish handle.
    pub fn publisher(&self) -> Result<Publisher, DpsError> {
        self.inner.borrow().check_open()?;
        Ok(Publisher {
            inner: self.inner.clone(),
            timeout: self.timeout,
        })
    }

    /// Subscribes with the default credit window.
    pub fn subscriber(&self, filter: impl Into<SharedFilter>) -> Result<Subscriber, DpsError> {
        self.subscriber_with(filter, SubscribeOptions::default())
    }

    /// Subscribes with explicit credit options.
    pub fn subscriber_with(
        &self,
        filter: impl Into<SharedFilter>,
        opts: SubscribeOptions,
    ) -> Result<Subscriber, DpsError> {
        let filter = filter.into();
        let mut inner = self.inner.borrow_mut();
        inner.check_open()?;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let sub = inner.next_sub;
        inner.next_sub += 1;
        inner.queue(&Frame::Subscribe {
            seq,
            sub,
            filter: filter.clone(),
            credit: opts.credit,
        })?;
        inner.wait_ack(seq, self.timeout)?;
        let inbox = Rc::new(RefCell::new(SubInbox {
            queue: VecDeque::new(),
            consumed: 0,
            open: true,
        }));
        inner.subs.insert(sub, inbox.clone());
        inner.opts.insert(sub, opts);
        Ok(Subscriber {
            inner: self.inner.clone(),
            inbox,
            sub,
            filter,
            timeout: self.timeout,
        })
    }

    /// Graceful teardown: sends `Close`, waits for the broker's echo (or
    /// EOF), and invalidates the handles.
    pub fn close(self) -> Result<(), DpsError> {
        let mut inner = self.inner.borrow_mut();
        if !inner.open {
            return Err(DpsError::SessionClosed);
        }
        inner.open = false;
        for inbox in inner.subs.values() {
            inbox.borrow_mut().open = false;
        }
        if inner.closed_reason.is_none() {
            inner.queue(&Frame::Close {
                reason: "client close".into(),
            })?;
            let deadline = Instant::now() + self.timeout;
            // Flush + drain until the broker acknowledges; a dead link is
            // already closed, which is fine.
            let _ = inner.wait(deadline, "broker close", |i| {
                i.closed_reason.as_ref().map(|_| ())
            });
        }
        inner.conn.shutdown();
        Ok(())
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Session")
            .field("id", &inner.session)
            .field("open", &inner.open)
            .field("subs", &inner.subs.len())
            .finish()
    }
}

/// Publish handle of a [`Session`].
pub struct Publisher {
    inner: Rc<RefCell<Inner>>,
    timeout: Duration,
}

impl Publisher {
    /// Publishes `event` and waits for the broker's ack, returning the
    /// assigned publication identity.
    pub fn publish(&self, event: impl Into<SharedEvent>) -> Result<PubRef, DpsError> {
        let mut inner = self.inner.borrow_mut();
        inner.check_open()?;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.queue(&Frame::Publish {
            seq,
            event: event.into(),
        })?;
        let pub_id = inner.wait_ack(seq, self.timeout)?;
        pub_id.ok_or_else(|| DpsError::Protocol("publish ack without a pub_id".into()))
    }
}

/// Receive handle for one subscription of a [`Session`].
pub struct Subscriber {
    inner: Rc<RefCell<Inner>>,
    inbox: Rc<RefCell<SubInbox>>,
    sub: u64,
    filter: SharedFilter,
    timeout: Duration,
}

impl Subscriber {
    /// The client-side subscription id.
    pub fn id(&self) -> u64 {
        self.sub
    }

    /// The subscription's filter.
    pub fn filter(&self) -> &SharedFilter {
        &self.filter
    }

    /// Replenishes broker credit if auto-credit is on and half the window has
    /// been consumed.
    fn replenish(&self, inner: &mut Inner) {
        let opts = inner.opts.get(&self.sub).copied().unwrap_or_default();
        if !opts.auto_credit {
            return;
        }
        let consumed = self.inbox.borrow().consumed;
        if consumed >= opts.credit.max(2) / 2 {
            self.inbox.borrow_mut().consumed = 0;
            let _ = inner.queue(&Frame::Credit {
                sub: self.sub,
                more: consumed,
            });
        }
    }

    /// Next queued delivery, polling the link first. Never blocks.
    pub fn recv(&self) -> Option<Delivery> {
        let mut inner = self.inner.borrow_mut();
        if !self.inbox.borrow().open {
            return None;
        }
        let _ = inner.poll();
        let out = {
            let mut inbox = self.inbox.borrow_mut();
            let out = inbox.queue.pop_front();
            if out.is_some() {
                inbox.consumed += 1;
            }
            out
        };
        self.replenish(&mut inner);
        out
    }

    /// Polls until a delivery arrives or `timeout` passes.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Delivery> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(d) = self.recv() {
                return Some(d);
            }
            if Instant::now() >= deadline || !self.inbox.borrow().open {
                return None;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Everything queued right now, oldest first.
    pub fn drain(&self) -> Vec<Delivery> {
        let mut inner = self.inner.borrow_mut();
        if !self.inbox.borrow().open {
            return Vec::new();
        }
        let _ = inner.poll();
        let out: Vec<Delivery> = {
            let mut inbox = self.inbox.borrow_mut();
            let out: Vec<Delivery> = inbox.queue.drain(..).collect();
            inbox.consumed += out.len() as u32;
            out
        };
        self.replenish(&mut inner);
        out
    }

    /// Grants the broker `more` additional deliveries (manual credit mode).
    pub fn grant(&self, more: u32) -> Result<(), DpsError> {
        let mut inner = self.inner.borrow_mut();
        inner.check_open()?;
        inner.queue(&Frame::Credit {
            sub: self.sub,
            more,
        })
    }

    /// Cancels this subscription (the session stays open).
    pub fn close(self) -> Result<(), DpsError> {
        let mut inner = self.inner.borrow_mut();
        if !self.inbox.borrow().open {
            return Err(DpsError::SessionClosed);
        }
        self.inbox.borrow_mut().open = false;
        inner.check_open()?;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.queue(&Frame::Unsubscribe { seq, sub: self.sub })?;
        inner.wait_ack(seq, self.timeout)?;
        inner.subs.remove(&self.sub);
        inner.opts.remove(&self.sub);
        Ok(())
    }
}

impl std::fmt::Debug for Subscriber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscriber")
            .field("sub", &self.sub)
            .field("filter", &self.filter.to_string())
            .field("open", &self.inbox.borrow().open)
            .finish()
    }
}
