//! `dps-sub` — subscribe to a `dps-broker` and print matching events.
//!
//! ```sh
//! dps-sub --socket /tmp/dps.sock --filter "price > 100" --count 3
//! dps-sub --socket /tmp/dps.sock --filter "temp < 0" --duration-ms 5000
//! ```
//!
//! Prints one line per delivery: `deliver <node>:<seq> <event>`. Exits once
//! `--count` deliveries arrived, or when `--duration-ms` elapses (whichever
//! comes first; with neither, runs until the broker goes away).

use std::time::{Duration, Instant};

use dps_broker::UnixTransport;
use dps_client::{Session, SubscribeOptions};

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: dps-sub --socket PATH --filter FILTER [--count N] \
         [--duration-ms D] [--credit C] [--no-auto-credit] [--timeout-ms T]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut socket: Option<String> = None;
    let mut filter: Option<String> = None;
    let mut count: Option<u64> = None;
    let mut duration: Option<Duration> = None;
    let mut timeout = Duration::from_secs(10);
    let mut opts = SubscribeOptions::default();
    while let Some(arg) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--socket" => socket = Some(val("--socket")),
            "--filter" => filter = Some(val("--filter")),
            "--count" => {
                count = Some(
                    val("--count")
                        .parse()
                        .unwrap_or_else(|_| usage("--count must be an integer")),
                )
            }
            "--duration-ms" => {
                duration = Some(Duration::from_millis(
                    val("--duration-ms")
                        .parse()
                        .unwrap_or_else(|_| usage("--duration-ms must be an integer")),
                ))
            }
            "--credit" => {
                opts.credit = val("--credit")
                    .parse()
                    .unwrap_or_else(|_| usage("--credit must be an integer"))
            }
            "--no-auto-credit" => opts.auto_credit = false,
            "--timeout-ms" => {
                timeout = Duration::from_millis(
                    val("--timeout-ms")
                        .parse()
                        .unwrap_or_else(|_| usage("--timeout-ms must be an integer")),
                )
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    let socket = socket.unwrap_or_else(|| usage("--socket is required"));
    let filter = filter
        .unwrap_or_else(|| usage("--filter is required"))
        .parse::<dps::Filter>()
        .unwrap_or_else(|e| usage(&format!("bad filter: {e}")));

    let session = match Session::connect(&UnixTransport, &socket, timeout) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dps-sub: cannot connect to {socket}: {e}");
            std::process::exit(1);
        }
    };
    let sub = match session.subscriber_with(filter, opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dps-sub: subscribe failed: {e}");
            std::process::exit(1);
        }
    };
    println!("subscribed {}", sub.filter());

    let started = Instant::now();
    let mut received = 0u64;
    loop {
        if let Some(limit) = count {
            if received >= limit {
                break;
            }
        }
        let slice = match duration {
            Some(d) => match d.checked_sub(started.elapsed()) {
                Some(left) => left.min(Duration::from_millis(50)),
                None => break,
            },
            None => Duration::from_millis(50),
        };
        match sub.recv_timeout(slice) {
            Some(d) => {
                println!("deliver {}:{} {}", d.publisher, d.seq, d.event);
                received += 1;
            }
            None => {
                if !session.is_open() {
                    eprintln!("dps-sub: broker went away after {received} deliveries");
                    std::process::exit(1);
                }
            }
        }
    }
    println!("received {received}");
    let _ = session.close();
}
