//! `dps-pub` — publish events to a `dps-broker` over its Unix socket.
//!
//! ```sh
//! dps-pub --socket /tmp/dps.sock "price = 150" "temp = 20 & unit = celsius"
//! dps-pub --socket /tmp/dps.sock --stdin          # one event per line
//! dps-pub --socket /tmp/dps.sock --repeat 100 --interval-ms 5 "price = 150"
//! ```
//!
//! Each publication is acked by the broker; the assigned identity is printed
//! as `published <node>:<seq> <event>`. Exits non-zero on the first refused
//! or failed publish.

use std::io::BufRead;
use std::time::Duration;

use dps_broker::UnixTransport;
use dps_client::Session;

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: dps-pub --socket PATH [--repeat N] [--interval-ms M] \
         [--timeout-ms T] [--stdin | EVENT...]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut socket: Option<String> = None;
    let mut events: Vec<String> = Vec::new();
    let mut from_stdin = false;
    let mut repeat = 1u64;
    let mut interval = Duration::ZERO;
    let mut timeout = Duration::from_secs(10);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--socket" => socket = Some(val("--socket")),
            "--stdin" => from_stdin = true,
            "--repeat" => {
                repeat = val("--repeat")
                    .parse()
                    .unwrap_or_else(|_| usage("--repeat must be an integer"))
            }
            "--interval-ms" => {
                interval = Duration::from_millis(
                    val("--interval-ms")
                        .parse()
                        .unwrap_or_else(|_| usage("--interval-ms must be an integer")),
                )
            }
            "--timeout-ms" => {
                timeout = Duration::from_millis(
                    val("--timeout-ms")
                        .parse()
                        .unwrap_or_else(|_| usage("--timeout-ms must be an integer")),
                )
            }
            other if other.starts_with("--") => usage(&format!("unknown argument {other:?}")),
            event => events.push(event.to_string()),
        }
    }
    let socket = socket.unwrap_or_else(|| usage("--socket is required"));
    if from_stdin {
        for line in std::io::stdin().lock().lines() {
            let line = line.unwrap_or_else(|e| usage(&format!("stdin: {e}")));
            if !line.trim().is_empty() {
                events.push(line);
            }
        }
    }
    if events.is_empty() {
        usage("nothing to publish (pass events or --stdin)");
    }
    let parsed: Vec<dps::Event> = events
        .iter()
        .map(|s| {
            s.parse::<dps::Event>()
                .unwrap_or_else(|e| usage(&format!("bad event {s:?}: {e}")))
        })
        .collect();

    let session = match Session::connect(&UnixTransport, &socket, timeout) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dps-pub: cannot connect to {socket}: {e}");
            std::process::exit(1);
        }
    };
    let publisher = session.publisher().expect("fresh session is open");
    for round in 0..repeat {
        for event in &parsed {
            match publisher.publish(event.clone()) {
                Ok(id) => println!("published {}:{} {event}", id.node, id.seq),
                Err(e) => {
                    eprintln!("dps-pub: publish {event} failed: {e}");
                    std::process::exit(1);
                }
            }
            if !interval.is_zero() {
                std::thread::sleep(interval);
            }
        }
        if round + 1 < repeat && !interval.is_zero() {
            std::thread::sleep(interval);
        }
    }
    if let Err(e) = session.close() {
        eprintln!("dps-pub: close: {e}");
        std::process::exit(1);
    }
}
