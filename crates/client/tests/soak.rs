//! Wall-clock soak: `dps-pub` and `dps-sub` processes against a live broker
//! under subscriber churn. The CI variant runs ~10 seconds; the `#[ignore]`d
//! long variant runs two minutes (`cargo test -p dps-client --test soak --
//! --ignored`). Asserts delivery floors and that the broker survives the
//! whole run without exiting (no panics, no wedged event loop).

mod common;

use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use common::{bin, BrokerProc};

/// Parses the `received N` summary line a finished `dps-sub` prints.
fn received_count(stdout: &[u8]) -> u64 {
    String::from_utf8_lossy(stdout)
        .lines()
        .rev()
        .find_map(|l| l.strip_prefix("received ")?.trim().parse().ok())
        .unwrap_or(0)
}

fn soak(total: Duration) {
    let mut broker = BrokerProc::start(5);

    // A long-lived subscriber spanning the whole run.
    let long_ms = total.as_millis() as u64;
    let long_sub = Command::new(bin("dps-sub"))
        .args([
            "--socket",
            &broker.socket,
            "--filter",
            "load > 0",
            "--duration-ms",
            &long_ms.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("long dps-sub starts");
    std::thread::sleep(Duration::from_millis(300));

    // A continuous publisher: one `load` event every ~10ms. Each publish
    // waits for its ack, so the effective rate is well under 100/s — size
    // the feed to finish comfortably inside the long subscriber's window.
    let events_total = (long_ms / 40).max(50);
    let feed = Command::new(bin("dps-pub"))
        .args([
            "--socket",
            &broker.socket,
            "--repeat",
            &events_total.to_string(),
            "--interval-ms",
            "10",
            "load = 1",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("dps-pub starts");

    // Subscriber churn: short-lived dps-sub processes joining, taking a few
    // deliveries, and leaving — sequentially, for the duration of the run.
    let deadline = Instant::now() + total - Duration::from_millis(1500);
    let mut churned = 0u32;
    let mut churn_received = 0u64;
    while Instant::now() < deadline {
        let out = Command::new(bin("dps-sub"))
            .args([
                "--socket",
                &broker.socket,
                "--filter",
                "load > 0",
                "--count",
                "2",
                "--duration-ms",
                "3000",
            ])
            .output()
            .expect("churn dps-sub runs");
        assert!(out.status.success(), "churn subscriber failed: {out:?}");
        churned += 1;
        churn_received += received_count(&out.stdout);
        broker.assert_alive();
    }

    let feed_out = feed.wait_with_output().expect("dps-pub finishes");
    assert!(
        feed_out.status.success(),
        "publisher survived the whole run: {feed_out:?}"
    );
    let long_out = long_sub.wait_with_output().expect("long dps-sub finishes");
    assert!(
        long_out.status.success(),
        "long subscriber failed: {long_out:?}"
    );

    // Delivery floors: the long-lived subscriber saw most of the stream (it
    // was placed before publishing began); churn subscribers collectively
    // made progress too.
    let long_received = received_count(&long_out.stdout);
    assert!(
        long_received >= events_total * 8 / 10,
        "long subscriber floor: got {long_received} of {events_total}"
    );
    assert!(churned >= 2, "churn actually happened ({churned} joins)");
    assert!(
        churn_received >= churned as u64,
        "churn subscribers made progress: {churn_received} deliveries over {churned} joins"
    );

    // Zero broker panics: still serving after everything above.
    broker.assert_alive();
}

/// ~10-second variant, cheap enough for every CI run.
#[test]
fn soak_ci_ten_seconds() {
    soak(Duration::from_secs(10));
}

/// Long soak for manual runs: `cargo test -p dps-client --test soak -- --ignored`.
#[test]
#[ignore = "two-minute wall-clock soak; run explicitly"]
fn soak_long_two_minutes() {
    soak(Duration::from_secs(120));
}
