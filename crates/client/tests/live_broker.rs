//! End-to-end tests against a live `dps-broker` process over a Unix socket:
//! the client library (and the `dps-pub`/`dps-sub` CLI tools) drive a real
//! broker in another OS process — real sockets, real scheduling, real
//! teardown.

mod common;

use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use common::{bin, BrokerProc};
use dps_broker::UnixTransport;
use dps_client::Session;

const TIMEOUT: Duration = Duration::from_secs(10);

#[test]
fn unix_socket_end_to_end_delivers_the_full_matching_workload() {
    let mut broker = BrokerProc::start(7);

    // Two subscriber sessions with overlapping filters, one publisher.
    let hot = Session::connect(&UnixTransport, &broker.socket, TIMEOUT).unwrap();
    let hot_sub = hot
        .subscriber("price > 100".parse::<dps::Filter>().unwrap())
        .unwrap();
    let band = Session::connect(&UnixTransport, &broker.socket, TIMEOUT).unwrap();
    let band_sub = band
        .subscriber("price > 100 & price < 200".parse::<dps::Filter>().unwrap())
        .unwrap();
    // Let the overlay place the subscriptions before publishing.
    std::thread::sleep(Duration::from_millis(300));

    let feed = Session::connect(&UnixTransport, &broker.socket, TIMEOUT).unwrap();
    let publisher = feed.publisher().unwrap();
    let workload: Vec<i64> = (0..30).map(|k| (k * 37) % 300).collect();
    for price in &workload {
        publisher
            .publish(format!("price = {price}").parse::<dps::Event>().unwrap())
            .unwrap();
    }

    // Expected sets, computed from the workload (publish order preserved).
    let expect_hot: Vec<String> = workload
        .iter()
        .filter(|p| **p > 100)
        .map(|p| format!("price = {p}"))
        .collect();
    let expect_band: Vec<String> = workload
        .iter()
        .filter(|p| **p > 100 && **p < 200)
        .map(|p| format!("price = {p}"))
        .collect();
    assert!(expect_hot.len() >= 10, "workload exercises the filters");

    let collect = |sub: &dps_client::Subscriber, want: usize| -> Vec<String> {
        let mut got = Vec::new();
        let deadline = Instant::now() + TIMEOUT;
        while got.len() < want && Instant::now() < deadline {
            if let Some(d) = sub.recv_timeout(Duration::from_millis(100)) {
                got.push(d.event.to_string());
            }
        }
        got
    };
    let got_hot = collect(&hot_sub, expect_hot.len());
    let got_band = collect(&band_sub, expect_band.len());

    // Delivered:expected ratio must be exactly 1.0, with the right events.
    assert_eq!(got_hot, expect_hot, "hot subscriber: every match, in order");
    assert_eq!(
        got_band, expect_band,
        "band subscriber: every match, in order"
    );

    broker.assert_alive();
    feed.close().unwrap();
    hot.close().unwrap();
    band.close().unwrap();
}

#[test]
fn refused_requests_are_typed_errors_not_session_killers() {
    let mut broker = BrokerProc::start(3);
    let session = Session::connect(&UnixTransport, &broker.socket, TIMEOUT).unwrap();

    // An empty filter is refused by the overlay; the error surfaces as a
    // typed DpsError and the session keeps working afterwards.
    let err = session.subscriber(dps::Filter::all()).unwrap_err();
    assert!(matches!(err, dps::DpsError::Protocol(_)), "got {err:?}");

    let sub = session
        .subscriber("a > 0".parse::<dps::Filter>().unwrap())
        .unwrap();
    std::thread::sleep(Duration::from_millis(200));
    let publisher = session.publisher().unwrap();
    publisher
        .publish("a = 1".parse::<dps::Event>().unwrap())
        .unwrap();
    assert!(
        sub.recv_timeout(TIMEOUT).is_some(),
        "the session still delivers after a refused request"
    );
    broker.assert_alive();
    session.close().unwrap();
}

/// CLI round trip: dps-pub → dps-broker → dps-sub, diffing delivered lines
/// against the expected set (the same check the CI smoke job scripts).
#[test]
fn cli_pub_sub_round_trip() {
    let mut broker = BrokerProc::start(11);

    let sub = Command::new(bin("dps-sub"))
        .args([
            "--socket",
            &broker.socket,
            "--filter",
            "temp > 20",
            "--count",
            "3",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("dps-sub starts");
    // Give the subscription time to be placed in the overlay.
    std::thread::sleep(Duration::from_millis(300));

    let out = Command::new(bin("dps-pub"))
        .args([
            "--socket",
            &broker.socket,
            "temp = 25",
            "temp = 10",
            "temp = 30",
            "temp = 15",
            "temp = 21",
        ])
        .output()
        .expect("dps-pub runs");
    assert!(out.status.success(), "dps-pub failed: {out:?}");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).lines().count(),
        5,
        "every publish acked and printed"
    );

    let sub_out = sub.wait_with_output().expect("dps-sub finishes");
    assert!(sub_out.status.success(), "dps-sub failed: {sub_out:?}");
    let delivered: Vec<String> = String::from_utf8_lossy(&sub_out.stdout)
        .lines()
        .filter(|l| l.starts_with("deliver "))
        .map(|l| l.splitn(3, ' ').nth(2).unwrap().to_string())
        .collect();
    assert_eq!(
        delivered,
        vec!["temp = 25", "temp = 30", "temp = 21"],
        "exactly the matching events, in publish order"
    );
    broker.assert_alive();
}
