//! Shared helpers for tests that drive a live `dps-broker` subprocess.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Path of a workspace binary, resolved from the test executable's location
/// (`target/<profile>/deps/this_test` → `target/<profile>/<name>`). The
/// binaries are built by the same `cargo test` invocation that runs this.
pub fn bin(name: &str) -> PathBuf {
    let mut p = std::env::current_exe().expect("test binary path");
    p.pop();
    if p.ends_with("deps") {
        p.pop();
    }
    let bin = p.join(name);
    assert!(
        bin.exists(),
        "{} not found — run via `cargo test` at the workspace root so all bins are built",
        bin.display()
    );
    bin
}

/// Minimal scoped temp dir (std-only; no external crates).
pub struct TempDir {
    pub path: PathBuf,
}

impl TempDir {
    pub fn new() -> TempDir {
        let path = std::env::temp_dir().join(format!(
            "dps-e2e-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("temp dir");
        TempDir { path }
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// A broker subprocess that is killed (and its socket removed) on drop.
pub struct BrokerProc {
    pub child: Child,
    pub socket: String,
    _dir: TempDir,
}

impl BrokerProc {
    pub fn start(seed: u64) -> BrokerProc {
        let dir = TempDir::new();
        let socket = dir.path.join("dps.sock").display().to_string();
        let child = Command::new(bin("dps-broker"))
            .args(["--socket", &socket, "--seed", &seed.to_string()])
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("dps-broker starts");
        // Wait for the socket to appear.
        let deadline = Instant::now() + Duration::from_secs(10);
        while !std::path::Path::new(&socket).exists() {
            assert!(Instant::now() < deadline, "broker never bound {socket}");
            std::thread::sleep(Duration::from_millis(10));
        }
        BrokerProc {
            child,
            socket,
            _dir: dir,
        }
    }

    /// Panics if the broker died (e.g. panicked) since start.
    pub fn assert_alive(&mut self) {
        assert!(
            self.child.try_wait().expect("try_wait").is_none(),
            "broker process exited early"
        );
    }
}

impl Drop for BrokerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}
