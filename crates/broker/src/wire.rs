//! The DPS wire protocol: length-prefixed, JSON-framed, versioned.
//!
//! Every message on a broker connection is one **frame**: a 4-byte big-endian
//! length prefix followed by that many bytes of JSON encoding one [`Frame`]
//! value (externally tagged, e.g. `{"Publish": {...}}`). The prefix counts the
//! JSON body only. Frames larger than [`MAX_FRAME`] are rejected *before* any
//! allocation sized by the prefix, so a hostile length cannot OOM the peer.
//!
//! The full grammar, version rules and credit/close semantics are documented
//! in `docs/protocol.md` at the repository root.

use dps_content::{SharedEvent, SharedFilter};
use serde::{Deserialize, Serialize};

/// Protocol revision spoken by this build. A broker rejects a `Hello` carrying
/// any other version with a `Close` frame naming both sides' versions.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on the JSON body of a single frame, in bytes (1 MiB).
pub const MAX_FRAME: u32 = 1 << 20;

/// A publication identity on the wire: the publishing overlay node and its
/// per-publisher sequence number. Mirrors the simulator's `PubId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PubRef {
    /// Index of the publishing overlay node.
    pub node: u64,
    /// The publisher's per-node publication sequence number.
    pub seq: u32,
}

/// One protocol message. Externally tagged in JSON: `{"Hello": {...}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Frame {
    /// First frame in both directions. The client sends `session: None`; the
    /// broker replies with the session id it assigned (or `Close` on version
    /// mismatch).
    Hello {
        /// [`PROTOCOL_VERSION`] of the sender.
        version: u32,
        /// Broker-assigned session id (set only in the broker's reply).
        session: Option<u64>,
    },
    /// Client → broker: install a subscription. `sub` is a client-chosen id,
    /// unique within the session; `credit` is the initial delivery window.
    Subscribe {
        /// Client request sequence number, echoed in the `Ack`.
        seq: u64,
        /// Client-chosen subscription id.
        sub: u64,
        /// The content filter.
        filter: SharedFilter,
        /// Initial delivery credit (number of `Deliver` frames the broker may
        /// send before waiting for `Credit`).
        credit: u32,
    },
    /// Client → broker: cancel subscription `sub`.
    Unsubscribe {
        /// Client request sequence number, echoed in the `Ack`.
        seq: u64,
        /// The subscription to cancel.
        sub: u64,
    },
    /// Client → broker: publish an event from this session's node.
    Publish {
        /// Client request sequence number, echoed in the `Ack`.
        seq: u64,
        /// The event body.
        event: SharedEvent,
    },
    /// Broker → client: an event matched subscription `sub`. Consumes one
    /// credit of that subscription.
    Deliver {
        /// The client-chosen id of the matching subscription.
        sub: u64,
        /// Index of the publishing overlay node.
        publisher: u64,
        /// The publisher's per-node publication sequence number.
        pub_seq: u32,
        /// The event body.
        event: SharedEvent,
    },
    /// Broker → client: reply to `Subscribe`/`Unsubscribe`/`Publish`. Carries
    /// the publication identity for a publish, or an error message when the
    /// request was refused (the session stays open).
    Ack {
        /// The request's sequence number.
        seq: u64,
        /// Identity of the accepted publication (publish acks only).
        pub_id: Option<PubRef>,
        /// Why the request was refused, if it was.
        error: Option<String>,
    },
    /// Client → broker: extend subscription `sub`'s delivery window by `more`.
    Credit {
        /// The subscription whose window to extend.
        sub: u64,
        /// Additional `Deliver` frames the broker may send.
        more: u32,
    },
    /// Graceful teardown, either direction. The broker cancels the session's
    /// subscriptions, retires its node, echoes `Close` and drops the link.
    Close {
        /// Human-readable reason.
        reason: String,
    },
}

/// Why a frame could not be encoded or decoded. Named variants so transport
/// code can tell a hostile prefix from a short read from garbage JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The underlying transport failed.
    Io(String),
    /// The length prefix exceeds [`MAX_FRAME`] (or an encoded body would).
    FrameTooLarge {
        /// The offending length.
        len: u32,
        /// The cap it exceeds.
        max: u32,
    },
    /// The buffer ends mid-frame and no more bytes will ever come (EOF).
    Truncated {
        /// Bytes present.
        have: usize,
        /// Bytes the prefix promised.
        need: usize,
    },
    /// The frame body is not valid JSON for any [`Frame`] variant.
    Decode(String),
    /// The peer speaks a different protocol revision.
    Version {
        /// The peer's version.
        theirs: u32,
        /// Our [`PROTOCOL_VERSION`].
        ours: u32,
    },
    /// The connection is closed.
    Closed,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "transport error: {e}"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::Truncated { have, need } => {
                write!(f, "truncated frame: have {have} of {need} bytes")
            }
            WireError::Decode(e) => write!(f, "undecodable frame: {e}"),
            WireError::Version { theirs, ours } => {
                write!(
                    f,
                    "protocol version mismatch: peer speaks v{theirs}, this build v{ours}"
                )
            }
            WireError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes `frame` as one wire frame (prefix + JSON body).
///
/// Fails with [`WireError::FrameTooLarge`] if the body exceeds [`MAX_FRAME`] —
/// the sender learns immediately instead of the receiver dropping the link.
pub fn encode(frame: &Frame) -> Result<Vec<u8>, WireError> {
    let body = serde_json::to_string(frame).map_err(|e| WireError::Decode(e.to_string()))?;
    if body.len() > MAX_FRAME as usize {
        return Err(WireError::FrameTooLarge {
            len: body.len() as u32,
            max: MAX_FRAME,
        });
    }
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(body.as_bytes());
    Ok(out)
}

/// Decodes the first complete frame of `buf`, returning it and the number of
/// bytes it occupied. `Ok(None)` means the buffer holds only a frame prefix or
/// a partial body — feed more bytes and retry. Errors are terminal for the
/// connection: a hostile prefix ([`WireError::FrameTooLarge`]) or a body that
/// is not a [`Frame`] ([`WireError::Decode`]).
pub fn decode(buf: &[u8]) -> Result<Option<(Frame, usize)>, WireError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len > MAX_FRAME {
        return Err(WireError::FrameTooLarge {
            len,
            max: MAX_FRAME,
        });
    }
    let need = 4 + len as usize;
    if buf.len() < need {
        return Ok(None);
    }
    let body = std::str::from_utf8(&buf[4..need])
        .map_err(|e| WireError::Decode(format!("frame body is not UTF-8: {e}")))?;
    let frame = serde_json::from_str(body).map_err(|e| WireError::Decode(e.to_string()))?;
    Ok(Some((frame, need)))
}

/// Incremental frame reassembly over a byte stream: feed it whatever chunks
/// the transport produces, take complete frames out. Never allocates based on
/// the length prefix — a hostile prefix errors out at 4 bytes read.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by decoded frames (compacted lazily).
    consumed: usize,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends raw transport bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: keeps the buffer near one frame in size.
        if self.consumed > 0 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Takes the next complete frame, if one is buffered. `Ok(None)` means
    /// "need more bytes"; errors mean the stream is unrecoverable and the
    /// connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        match decode(&self.buf[self.consumed..])? {
            Some((frame, used)) => {
                self.consumed += used;
                Ok(Some(frame))
            }
            None => Ok(None),
        }
    }

    /// Called at EOF: a cleanly drained reader returns `Ok(())`; leftover
    /// bytes mean the peer died mid-frame ([`WireError::Truncated`]).
    pub fn finish(&self) -> Result<(), WireError> {
        let rest = &self.buf[self.consumed..];
        if rest.is_empty() {
            return Ok(());
        }
        let need = if rest.len() >= 4 {
            4 + u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize
        } else {
            4
        };
        Err(WireError::Truncated {
            have: rest.len(),
            need,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_one_frame() {
        let f = Frame::Publish {
            seq: 7,
            event: "price = 150".parse::<dps_content::Event>().unwrap().into(),
        };
        let bytes = encode(&f).unwrap();
        let (back, used) = decode(&bytes).unwrap().unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(back, f);
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocation() {
        let mut buf = u32::MAX.to_be_bytes().to_vec();
        buf.extend_from_slice(b"whatever");
        assert_eq!(
            decode(&buf).unwrap_err(),
            WireError::FrameTooLarge {
                len: u32::MAX,
                max: MAX_FRAME
            }
        );
    }

    #[test]
    fn reader_reassembles_across_arbitrary_chunking() {
        let frames = vec![
            Frame::Hello {
                version: PROTOCOL_VERSION,
                session: None,
            },
            Frame::Credit { sub: 3, more: 16 },
            Frame::Close {
                reason: "done".into(),
            },
        ];
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode(f).unwrap());
        }
        // Feed one byte at a time: every frame still comes out intact.
        let mut r = FrameReader::new();
        let mut got = Vec::new();
        for b in stream {
            r.feed(&[b]);
            while let Some(f) = r.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        r.finish().unwrap();
    }

    #[test]
    fn eof_mid_frame_is_a_named_truncation() {
        let bytes = encode(&Frame::Credit { sub: 1, more: 1 }).unwrap();
        let mut r = FrameReader::new();
        r.feed(&bytes[..bytes.len() - 2]);
        assert_eq!(r.next_frame().unwrap(), None);
        assert_eq!(
            r.finish().unwrap_err(),
            WireError::Truncated {
                have: bytes.len() - 2,
                need: bytes.len(),
            }
        );
    }

    #[test]
    fn garbage_body_is_a_decode_error() {
        let mut buf = 9u32.to_be_bytes().to_vec();
        buf.extend_from_slice(b"not json!");
        assert!(matches!(decode(&buf), Err(WireError::Decode(_))));
    }
}
