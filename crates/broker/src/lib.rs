//! **dps-broker** — the served half of DPS: a long-lived process hosting a
//! shard of the semantic overlay, spoken to over a framed, versioned wire
//! protocol.
//!
//! Three layers, bottom up:
//!
//! - [`wire`]: the frame codec — length-prefixed JSON frames with a hard size
//!   cap and loud, named decode errors;
//! - [`transport`]: the byte-stream abstraction the frames ride on — Unix
//!   sockets for deployments, in-process channels for deterministic tests;
//! - [`broker`]: the single-threaded event loop tying a
//!   [`dps::DpsNetwork`] shard to live client sessions, with
//!   per-subscription credit-based backpressure.
//!
//! The `dps-broker` binary wraps [`broker::Broker::serve`] around a Unix
//! socket; the `dps-client` crate implements the client side with the same
//! `Session`/`Publisher`/`Subscriber` shape as `dps::session`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broker;
pub mod transport;
pub mod wire;

pub use broker::{Broker, BrokerConfig, LogSink};
pub use transport::{ChannelTransport, Connection, Listener, Transport, UnixTransport};
pub use wire::{Frame, FrameReader, PubRef, WireError, MAX_FRAME, PROTOCOL_VERSION};
