//! The broker: a long-lived process hosting a shard of the DPS overlay behind
//! a [`Transport`](crate::transport::Transport) listener.
//!
//! Each client session gets a dedicated overlay node; subscriptions and
//! publications from the session act on that node exactly as the in-process
//! [`dps::Hub`] sessions do — the overlay cannot tell a served client from a
//! simulated one. The broker is a **single-threaded, non-blocking event
//! loop**: one [`Broker::pump`] call accepts pending connections, reads and
//! applies every decodable client frame, advances the overlay simulation a
//! fixed number of steps, fans matched deliveries out to sessions (gated by
//! per-subscription credit), and flushes output buffers. Driven in lockstep
//! over a [`ChannelTransport`](crate::transport::ChannelTransport) this is
//! fully deterministic; [`Broker::serve`] wraps it in a wall-clock loop for
//! socket deployments.
//!
//! # Backpressure
//!
//! `Deliver` frames consume per-subscription credit granted by `Subscribe`
//! and `Credit` frames. A subscriber that stops granting credit (or stops
//! reading its socket) stalls only itself: matched events queue in a bounded
//! per-subscription buffer (oldest dropped first past
//! [`BrokerConfig::max_pending`]), and the event loop never blocks on any one
//! session's socket.

use std::collections::{BTreeMap, VecDeque};

use dps::{DpsConfig, DpsError, DpsNetwork};
use dps_content::{SharedEvent, SharedFilter};
use dps_overlay::PubId;
use dps_sim::NodeId;

use crate::transport::{Connection, Listener};
use crate::wire::{self, Frame, FrameReader, PubRef, WireError, PROTOCOL_VERSION};

/// Tuning knobs for a [`Broker`].
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// Overlay flavor for the hosted shard.
    pub net: DpsConfig,
    /// Simulation seed (the overlay is deterministic given this).
    pub seed: u64,
    /// Background overlay nodes created at startup (population that routes
    /// and hosts groups even with zero sessions attached).
    pub background_nodes: usize,
    /// Simulation steps run at startup so the background overlay converges
    /// before the first session arrives.
    pub warmup_steps: u64,
    /// Simulation steps advanced per [`Broker::pump`] call.
    pub steps_per_pump: u64,
    /// Per-subscription cap on deliveries queued while out of credit; beyond
    /// it the oldest queued delivery is dropped (and counted).
    pub max_pending: usize,
    /// Per-session cap on buffered outbound bytes; `Deliver` emission pauses
    /// (keeping frames in the pending queue) while a session's buffer is
    /// above it, so a session that stops reading cannot balloon the broker.
    pub max_outbuf: usize,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            net: DpsConfig::default(),
            seed: 42,
            background_nodes: 8,
            warmup_steps: 60,
            steps_per_pump: 4,
            max_pending: 1024,
            max_outbuf: 256 * 1024,
        }
    }
}

struct SubState {
    overlay: dps::SubId,
    filter: SharedFilter,
    credit: u32,
    pending: VecDeque<Frame>,
    dropped: u64,
}

struct SessionState {
    conn: Box<dyn Connection>,
    reader: FrameReader,
    out: VecDeque<u8>,
    /// Set once the session's `Hello` is accepted.
    node: Option<NodeId>,
    subs: BTreeMap<u64, SubState>,
    /// A `Close` has been queued: flush, then drop the link.
    closing: bool,
    /// The link died abruptly: drop without flushing.
    dead: bool,
}

impl SessionState {
    fn queue(&mut self, frame: &Frame) {
        match wire::encode(frame) {
            Ok(bytes) => self.out.extend(bytes),
            // Only an over-sized frame can fail here; drop the session rather
            // than send it a half-encoded stream.
            Err(_) => self.dead = true,
        }
    }
}

/// Sink for the broker's human-readable log lines.
pub type LogSink = Box<dyn FnMut(&str) + Send>;

/// See the module docs.
pub struct Broker {
    net: DpsNetwork,
    listener: Box<dyn Listener>,
    sessions: BTreeMap<u64, SessionState>,
    next_session: u64,
    cfg: BrokerConfig,
    drain_buf: Vec<(PubId, SharedEvent)>,
    log: Option<LogSink>,
}

impl Broker {
    /// Builds the hosted overlay (background population + warmup) and starts
    /// accepting on `listener`.
    pub fn new(cfg: BrokerConfig, listener: Box<dyn Listener>) -> Self {
        let mut net = DpsNetwork::new(cfg.net.clone(), cfg.seed);
        net.add_nodes(cfg.background_nodes);
        net.run(cfg.warmup_steps);
        Broker {
            net,
            listener,
            sessions: BTreeMap::new(),
            next_session: 1,
            cfg,
            drain_buf: Vec::new(),
            log: None,
        }
    }

    /// Routes broker log lines (session lifecycle, protocol errors) to `f`.
    pub fn set_log(&mut self, f: LogSink) {
        self.log = Some(f);
    }

    fn log(&mut self, line: &str) {
        if let Some(f) = &mut self.log {
            f(line);
        }
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// The hosted network (metrics, oracle, faults — the full driver surface).
    pub fn network(&self) -> &DpsNetwork {
        &self.net
    }

    /// Mutable access to the hosted network, for fault injection in tests.
    pub fn network_mut(&mut self) -> &mut DpsNetwork {
        &mut self.net
    }

    /// One event-loop turn: accept, read+apply, step the overlay, fan out
    /// deliveries, flush. Never blocks. Returns the number of client frames
    /// applied, which lockstep drivers use as a settling signal.
    pub fn pump(&mut self) -> std::io::Result<usize> {
        self.accept_pending()?;
        let mut applied = 0;
        let ids: Vec<u64> = self.sessions.keys().copied().collect();
        for id in &ids {
            applied += self.read_session(*id);
        }
        self.net.run(self.cfg.steps_per_pump);
        for id in &ids {
            self.fan_out(*id);
        }
        self.flush_and_reap();
        Ok(applied)
    }

    /// Wall-clock serving loop: pumps until `stop` returns true, sleeping
    /// briefly whenever a turn was idle.
    pub fn serve(&mut self, mut stop: impl FnMut() -> bool) -> std::io::Result<()> {
        while !stop() {
            let applied = self.pump()?;
            if applied == 0 {
                std::thread::sleep(std::time::Duration::from_micros(500));
            }
        }
        Ok(())
    }

    fn accept_pending(&mut self) -> std::io::Result<()> {
        while let Some(conn) = self.listener.accept()? {
            let id = self.next_session;
            self.next_session += 1;
            self.sessions.insert(
                id,
                SessionState {
                    conn,
                    reader: FrameReader::new(),
                    out: VecDeque::new(),
                    node: None,
                    subs: BTreeMap::new(),
                    closing: false,
                    dead: false,
                },
            );
            self.log(&format!("session {id}: connected"));
        }
        Ok(())
    }

    /// Drains one session's socket and applies every complete frame.
    fn read_session(&mut self, id: u64) -> usize {
        let mut applied = 0;
        let mut eof = false;
        let mut buf = [0u8; 4096];
        {
            let s = self.sessions.get_mut(&id).expect("session exists");
            if s.closing || s.dead {
                return 0;
            }
            loop {
                match s.conn.recv(&mut buf) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => s.reader.feed(&buf[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => {
                        s.dead = true;
                        break;
                    }
                }
            }
        }
        loop {
            let next = {
                let s = self.sessions.get_mut(&id).expect("session exists");
                if s.closing || s.dead {
                    return applied;
                }
                s.reader.next_frame()
            };
            match next {
                Ok(Some(frame)) => {
                    applied += 1;
                    self.apply(id, frame);
                }
                Ok(None) => break,
                Err(e) => {
                    // Loud, named, and terminal: the stream is unrecoverable.
                    self.log(&format!("session {id}: dropping link: {e}"));
                    self.close_session(id, &format!("protocol error: {e}"));
                    return applied;
                }
            }
        }
        if eof {
            let leftovers = {
                let s = self.sessions.get_mut(&id).expect("session exists");
                s.reader.finish().err()
            };
            if let Some(e) = leftovers {
                self.log(&format!("session {id}: EOF mid-frame: {e}"));
            } else {
                self.log(&format!("session {id}: EOF"));
            }
            self.teardown(id);
            let s = self.sessions.get_mut(&id).expect("session exists");
            s.dead = true;
        }
        applied
    }

    /// Applies one client frame to the session and the hosted overlay.
    fn apply(&mut self, id: u64, frame: Frame) {
        // Before Hello, nothing else is legal.
        let node = self.sessions[&id].node;
        match (&frame, node) {
            (Frame::Hello { .. }, _) | (_, Some(_)) => {}
            (_, None) => {
                self.close_session(id, "protocol error: expected Hello first");
                return;
            }
        }
        match frame {
            Frame::Hello { version, .. } => {
                if version != PROTOCOL_VERSION {
                    let e = WireError::Version {
                        theirs: version,
                        ours: PROTOCOL_VERSION,
                    };
                    self.log(&format!("session {id}: {e}"));
                    self.close_session(id, &e.to_string());
                    return;
                }
                if node.is_some() {
                    self.close_session(id, "protocol error: duplicate Hello");
                    return;
                }
                let n = self.net.add_node();
                let s = self.sessions.get_mut(&id).expect("session exists");
                s.node = Some(n);
                s.queue(&Frame::Hello {
                    version: PROTOCOL_VERSION,
                    session: Some(id),
                });
                self.log(&format!("session {id}: hello, node {}", n.index()));
            }
            Frame::Subscribe {
                seq,
                sub,
                filter,
                credit,
            } => {
                let node = node.expect("checked above");
                if self.sessions[&id].subs.contains_key(&sub) {
                    self.ack_err(id, seq, &format!("subscription id {sub} already in use"));
                    return;
                }
                match self.net.try_subscribe(node, filter.clone()) {
                    Ok(overlay) => {
                        self.net.sink().watch(node);
                        let s = self.sessions.get_mut(&id).expect("session exists");
                        s.subs.insert(
                            sub,
                            SubState {
                                overlay,
                                filter,
                                credit,
                                pending: VecDeque::new(),
                                dropped: 0,
                            },
                        );
                        s.queue(&Frame::Ack {
                            seq,
                            pub_id: None,
                            error: None,
                        });
                    }
                    Err(e) => self.ack_err(id, seq, &e.to_string()),
                }
            }
            Frame::Unsubscribe { seq, sub } => {
                let node = node.expect("checked above");
                let overlay = self.sessions[&id].subs.get(&sub).map(|s| s.overlay);
                match overlay {
                    Some(overlay) => {
                        let out = self.net.try_unsubscribe(node, overlay);
                        let s = self.sessions.get_mut(&id).expect("session exists");
                        s.subs.remove(&sub);
                        if s.subs.is_empty() {
                            self.net.sink().unwatch(node);
                        }
                        match out {
                            Ok(()) => {
                                let s = self.sessions.get_mut(&id).expect("session exists");
                                s.queue(&Frame::Ack {
                                    seq,
                                    pub_id: None,
                                    error: None,
                                });
                            }
                            Err(e) => self.ack_err(id, seq, &e.to_string()),
                        }
                    }
                    None => self.ack_err(id, seq, &format!("unknown subscription id {sub}")),
                }
            }
            Frame::Publish { seq, event } => {
                let node = node.expect("checked above");
                match self.net.try_publish(node, event) {
                    Ok(pid) => {
                        let s = self.sessions.get_mut(&id).expect("session exists");
                        s.queue(&Frame::Ack {
                            seq,
                            pub_id: Some(PubRef {
                                node: pid.0.index() as u64,
                                seq: pid.1,
                            }),
                            error: None,
                        });
                    }
                    Err(e) => self.ack_err(id, seq, &e.to_string()),
                }
            }
            Frame::Credit { sub, more } => {
                let s = self.sessions.get_mut(&id).expect("session exists");
                if let Some(st) = s.subs.get_mut(&sub) {
                    st.credit = st.credit.saturating_add(more);
                }
                // Credit for an unknown sub is a no-op (it may race a close).
            }
            Frame::Close { reason } => {
                self.log(&format!("session {id}: close ({reason})"));
                self.close_session(id, "goodbye");
            }
            Frame::Deliver { .. } | Frame::Ack { .. } => {
                self.close_session(id, "protocol error: broker-only frame from client");
            }
        }
    }

    fn ack_err(&mut self, id: u64, seq: u64, error: &str) {
        self.log(&format!("session {id}: request {seq} refused: {error}"));
        let s = self.sessions.get_mut(&id).expect("session exists");
        s.queue(&Frame::Ack {
            seq,
            pub_id: None,
            error: Some(error.to_string()),
        });
    }

    /// Graceful teardown: cancel state, echo `Close`, flush, then drop.
    fn close_session(&mut self, id: u64, reason: &str) {
        self.teardown(id);
        let s = self.sessions.get_mut(&id).expect("session exists");
        if !s.closing {
            s.queue(&Frame::Close {
                reason: reason.to_string(),
            });
            s.closing = true;
        }
    }

    /// Releases a session's overlay footprint (subscriptions, watch, node).
    fn teardown(&mut self, id: u64) {
        let s = self.sessions.get_mut(&id).expect("session exists");
        let node = s.node.take();
        let subs: Vec<dps::SubId> = s.subs.values().map(|st| st.overlay).collect();
        s.subs.clear();
        if let Some(node) = node {
            for overlay in subs {
                let _ = self.net.try_unsubscribe(node, overlay);
            }
            self.net.sink().unwatch(node);
            // Retire the node: the overlay heals around it, and the oracle
            // stops expecting deliveries there.
            self.net.crash(node);
        }
    }

    /// Demultiplexes the session node's matched deliveries into per-sub
    /// queues and emits as much as credit (and the output buffer cap) allows.
    fn fan_out(&mut self, id: u64) {
        let Some(s) = self.sessions.get_mut(&id) else {
            return;
        };
        let Some(node) = s.node else { return };
        self.drain_buf.clear();
        self.net.sink().drain_deliveries(node, &mut self.drain_buf);
        for (pid, event) in self.drain_buf.drain(..) {
            for (cid, st) in s.subs.iter_mut() {
                if st.filter.matches(&event) {
                    st.pending.push_back(Frame::Deliver {
                        sub: *cid,
                        publisher: pid.0.index() as u64,
                        pub_seq: pid.1,
                        event: event.clone(),
                    });
                    if st.pending.len() > self.cfg.max_pending {
                        st.pending.pop_front();
                        st.dropped += 1;
                    }
                }
            }
        }
        let mut emitted: Vec<Frame> = Vec::new();
        let mut out_len = s.out.len();
        for st in s.subs.values_mut() {
            while st.credit > 0 && !st.pending.is_empty() && out_len < self.cfg.max_outbuf {
                let f = st.pending.pop_front().expect("non-empty");
                // Frame overhead is dominated by the event body; an estimate
                // is enough for the high-water mark.
                out_len += 64 + f.approx_len();
                st.credit -= 1;
                emitted.push(f);
            }
        }
        for f in emitted {
            s.queue(&f);
        }
    }

    /// Writes buffered output (never blocking) and reaps finished sessions.
    fn flush_and_reap(&mut self) {
        let mut done: Vec<u64> = Vec::new();
        for (id, s) in self.sessions.iter_mut() {
            if s.dead {
                done.push(*id);
                continue;
            }
            while !s.out.is_empty() {
                let (head, _) = s.out.as_slices();
                match s.conn.send(head) {
                    Ok(0) => break,
                    Ok(n) => {
                        s.out.drain(..n);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => {
                        s.dead = true;
                        break;
                    }
                }
            }
            if s.closing && s.out.is_empty() {
                s.conn.shutdown();
                done.push(*id);
            }
        }
        for id in done {
            // Abrupt deaths still need their overlay footprint released.
            self.teardown(id);
            self.sessions.remove(&id);
            self.log(&format!("session {id}: gone"));
        }
    }
}

impl Frame {
    /// Rough encoded size, used only for the output high-water mark.
    fn approx_len(&self) -> usize {
        match self {
            Frame::Deliver { event, .. } | Frame::Publish { event, .. } => {
                event.to_string().len() * 2
            }
            _ => 64,
        }
    }
}

impl std::fmt::Debug for Broker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Broker")
            .field("addr", &self.listener.local_addr())
            .field("sessions", &self.sessions.len())
            .finish()
    }
}

/// Convenience for error mapping at call sites that cross from wire to API.
pub fn wire_to_dps(e: WireError) -> DpsError {
    match e {
        WireError::Io(m) => DpsError::Transport(m),
        WireError::Closed => DpsError::SessionClosed,
        other => DpsError::Protocol(other.to_string()),
    }
}
