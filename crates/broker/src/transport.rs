//! Transport abstraction for the broker and its clients.
//!
//! The wire protocol ([`crate::wire`]) is transport-agnostic: anything that
//! moves ordered bytes both ways can carry it. This module defines the three
//! traits the broker is written against — [`Connection`], [`Listener`],
//! [`Transport`] — and ships two implementations:
//!
//! - [`UnixTransport`]: Unix-domain stream sockets, for real multi-process
//!   deployments (and the CI smoke job);
//! - [`ChannelTransport`]: an in-process byte-queue transport, for
//!   deterministic lockstep tests — no kernel, no scheduler, byte-identical
//!   runs.
//!
//! TCP or QUIC drop in later by implementing the same three traits; nothing
//! in the broker or client names a socket type.
//!
//! # Non-blocking contract
//!
//! All connections are non-blocking. `recv` and `send` follow std's
//! convention: `Err(e)` with `e.kind() == WouldBlock` means "nothing to do
//! right now", `Ok(0)` from `recv` means the peer closed cleanly. The broker's
//! event loop relies on this: it must never park inside one session's socket
//! while other sessions have work.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// One ordered, bidirectional byte stream (non-blocking; see module docs).
pub trait Connection: Send {
    /// Writes as much of `buf` as the transport will take; `WouldBlock` when
    /// the peer's window is full.
    fn send(&mut self, buf: &[u8]) -> io::Result<usize>;
    /// Reads available bytes; `Ok(0)` is clean EOF, `WouldBlock` means none
    /// buffered yet.
    fn recv(&mut self, buf: &mut [u8]) -> io::Result<usize>;
    /// Closes the write side; the peer's next `recv` drains to `Ok(0)`.
    fn shutdown(&mut self);
}

/// Accepts inbound [`Connection`]s (non-blocking).
pub trait Listener: Send {
    /// The next pending connection, or `None` when nobody is waiting.
    fn accept(&mut self) -> io::Result<Option<Box<dyn Connection>>>;
    /// The address this listener is bound to, for logs.
    fn local_addr(&self) -> String;
}

/// A way of reaching (and serving) brokers: names addresses, mints listeners
/// and connections.
pub trait Transport {
    /// Binds a listener at `addr`.
    fn listen(&self, addr: &str) -> io::Result<Box<dyn Listener>>;
    /// Connects to the listener at `addr`.
    fn connect(&self, addr: &str) -> io::Result<Box<dyn Connection>>;
}

// ---------------------------------------------------------------------------
// Unix-domain sockets
// ---------------------------------------------------------------------------

/// [`Transport`] over Unix-domain stream sockets; `addr` is a filesystem path.
/// Binding unlinks a stale socket file first, so a crashed broker does not
/// wedge its successor.
#[derive(Debug, Default, Clone, Copy)]
pub struct UnixTransport;

struct UnixConn(UnixStream);

impl Connection for UnixConn {
    fn send(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }

    fn recv(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.0.read(buf)
    }

    fn shutdown(&mut self) {
        let _ = self.0.shutdown(std::net::Shutdown::Write);
    }
}

struct UnixAcceptor {
    listener: UnixListener,
    path: PathBuf,
}

impl Listener for UnixAcceptor {
    fn accept(&mut self) -> io::Result<Option<Box<dyn Connection>>> {
        match self.listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(true)?;
                Ok(Some(Box::new(UnixConn(stream))))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn local_addr(&self) -> String {
        self.path.display().to_string()
    }
}

impl Drop for UnixAcceptor {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Transport for UnixTransport {
    fn listen(&self, addr: &str) -> io::Result<Box<dyn Listener>> {
        let path = PathBuf::from(addr);
        if path.exists() {
            std::fs::remove_file(&path)?;
        }
        let listener = UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        Ok(Box::new(UnixAcceptor { listener, path }))
    }

    fn connect(&self, addr: &str) -> io::Result<Box<dyn Connection>> {
        let stream = UnixStream::connect(addr)?;
        stream.set_nonblocking(true)?;
        Ok(Box::new(UnixConn(stream)))
    }
}

// ---------------------------------------------------------------------------
// In-process channels
// ---------------------------------------------------------------------------

/// One direction of a channel connection.
#[derive(Debug, Default)]
struct Pipe {
    bytes: VecDeque<u8>,
    closed: bool,
}

type SharedPipe = Arc<Mutex<Pipe>>;

struct ChannelConn {
    /// Bytes we read (peer writes here).
    rx: SharedPipe,
    /// Bytes we write (peer reads here).
    tx: SharedPipe,
}

impl Connection for ChannelConn {
    fn send(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut p = self.tx.lock().unwrap();
        if p.closed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"));
        }
        p.bytes.extend(buf);
        Ok(buf.len())
    }

    fn recv(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut p = self.rx.lock().unwrap();
        if p.bytes.is_empty() {
            return if p.closed {
                Ok(0)
            } else {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "no bytes queued"))
            };
        }
        let n = buf.len().min(p.bytes.len());
        for b in buf.iter_mut().take(n) {
            *b = p.bytes.pop_front().unwrap();
        }
        Ok(n)
    }

    fn shutdown(&mut self) {
        self.tx.lock().unwrap().closed = true;
    }
}

impl Drop for ChannelConn {
    fn drop(&mut self) {
        self.tx.lock().unwrap().closed = true;
        self.rx.lock().unwrap().closed = true;
    }
}

#[derive(Default)]
struct ChannelRegistry {
    /// Pending server-side halves per listening address.
    pending: HashMap<String, VecDeque<ChannelConn>>,
    listening: HashMap<String, bool>,
}

/// In-process [`Transport`]: connections are paired byte queues, addresses
/// live in a registry shared by `clone`s of this value. Fully deterministic —
/// no kernel buffering, no thread scheduling — which is what makes lockstep
/// broker tests byte-identical across runs.
#[derive(Clone, Default)]
pub struct ChannelTransport {
    registry: Arc<Mutex<ChannelRegistry>>,
}

impl ChannelTransport {
    /// A fresh, empty address space.
    pub fn new() -> Self {
        ChannelTransport::default()
    }
}

struct ChannelListener {
    registry: Arc<Mutex<ChannelRegistry>>,
    addr: String,
}

impl Listener for ChannelListener {
    fn accept(&mut self) -> io::Result<Option<Box<dyn Connection>>> {
        let mut reg = self.registry.lock().unwrap();
        Ok(reg
            .pending
            .get_mut(&self.addr)
            .and_then(|q| q.pop_front())
            .map(|c| Box::new(c) as Box<dyn Connection>))
    }

    fn local_addr(&self) -> String {
        self.addr.clone()
    }
}

impl Drop for ChannelListener {
    fn drop(&mut self) {
        let mut reg = self.registry.lock().unwrap();
        reg.listening.remove(&self.addr);
        reg.pending.remove(&self.addr);
    }
}

impl Transport for ChannelTransport {
    fn listen(&self, addr: &str) -> io::Result<Box<dyn Listener>> {
        let mut reg = self.registry.lock().unwrap();
        if reg.listening.insert(addr.to_string(), true).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                format!("channel address {addr:?} already has a listener"),
            ));
        }
        reg.pending.entry(addr.to_string()).or_default();
        Ok(Box::new(ChannelListener {
            registry: self.registry.clone(),
            addr: addr.to_string(),
        }))
    }

    fn connect(&self, addr: &str) -> io::Result<Box<dyn Connection>> {
        let mut reg = self.registry.lock().unwrap();
        if !reg.listening.contains_key(addr) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("no channel listener at {addr:?}"),
            ));
        }
        let client_to_server: SharedPipe = Arc::default();
        let server_to_client: SharedPipe = Arc::default();
        let server_half = ChannelConn {
            rx: client_to_server.clone(),
            tx: server_to_client.clone(),
        };
        reg.pending
            .get_mut(addr)
            .expect("listening implies a pending queue")
            .push_back(server_half);
        Ok(Box::new(ChannelConn {
            rx: server_to_client,
            tx: client_to_server,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_pair_moves_bytes_both_ways() {
        let t = ChannelTransport::new();
        let mut listener = t.listen("hub").unwrap();
        assert!(listener.accept().unwrap().is_none());
        let mut client = t.connect("hub").unwrap();
        let mut server = listener.accept().unwrap().expect("one pending conn");

        client.send(b"ping").unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(server.recv(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"ping");
        server.send(b"pong").unwrap();
        assert_eq!(client.recv(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"pong");

        // Empty queue reads as WouldBlock while open, EOF once shut down.
        assert_eq!(
            client.recv(&mut buf).unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
        server.shutdown();
        assert_eq!(client.recv(&mut buf).unwrap(), 0);
    }

    #[test]
    fn connect_without_listener_is_refused() {
        let t = ChannelTransport::new();
        let err = match t.connect("nowhere") {
            Err(e) => e,
            Ok(_) => panic!("connect to a bare address must fail"),
        };
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
    }

    #[test]
    fn unix_round_trip() {
        let dir = std::env::temp_dir().join(format!("dps-ut-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let addr = dir.join("t.sock").display().to_string();
        let t = UnixTransport;
        let mut listener = t.listen(&addr).unwrap();
        assert!(listener.accept().unwrap().is_none());
        let mut client = t.connect(&addr).unwrap();
        let mut server = loop {
            if let Some(c) = listener.accept().unwrap() {
                break c;
            }
        };
        client.send(b"hello").unwrap();
        let mut buf = [0u8; 16];
        let n = loop {
            match server.recv(&mut buf) {
                Ok(n) => break n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
                Err(e) => panic!("recv: {e}"),
            }
        };
        assert_eq!(&buf[..n], b"hello");
        drop(listener);
        assert!(!std::path::Path::new(&addr).exists(), "socket unlinked");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
