//! `dps-broker` — serve a DPS overlay shard on a Unix-domain socket.
//!
//! ```sh
//! dps-broker --socket /tmp/dps.sock [--seed 42] [--nodes 8]
//!            [--traversal root|generic] [--comm leader|epidemic] [--quiet]
//! ```
//!
//! Runs until killed. Logs session lifecycle and protocol errors to stdout
//! (line-buffered), which the CI smoke job captures as the broker log
//! artifact.

use dps::{CommKind, DpsConfig, TraversalKind};
use dps_broker::{Broker, BrokerConfig, Transport, UnixTransport};

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: dps-broker --socket PATH [--seed N] [--nodes N] \
         [--traversal root|generic] [--comm leader|epidemic] [--quiet]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut socket: Option<String> = None;
    let mut cfg = BrokerConfig::default();
    let mut traversal = TraversalKind::Root;
    let mut comm = CommKind::Leader;
    let mut quiet = false;
    while let Some(arg) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--socket" => socket = Some(val("--socket")),
            "--seed" => {
                cfg.seed = val("--seed")
                    .parse()
                    .unwrap_or_else(|_| usage("--seed must be an integer"))
            }
            "--nodes" => {
                cfg.background_nodes = val("--nodes")
                    .parse()
                    .unwrap_or_else(|_| usage("--nodes must be an integer"))
            }
            "--traversal" => {
                traversal = match val("--traversal").as_str() {
                    "root" => TraversalKind::Root,
                    "generic" => TraversalKind::Generic,
                    other => usage(&format!("unknown traversal {other:?}")),
                }
            }
            "--comm" => {
                comm = match val("--comm").as_str() {
                    "leader" => CommKind::Leader,
                    "epidemic" => CommKind::Epidemic,
                    other => usage(&format!("unknown comm {other:?}")),
                }
            }
            "--quiet" => quiet = true,
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    let socket = socket.unwrap_or_else(|| usage("--socket is required"));
    cfg.net = DpsConfig::named(traversal, comm);

    let listener = match UnixTransport.listen(&socket) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("dps-broker: cannot listen on {socket}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "dps-broker: serving {:?}+{:?} shard (seed {}, {} background nodes) on {socket}",
        traversal, comm, cfg.seed, cfg.background_nodes
    );
    let mut broker = Broker::new(cfg, listener);
    if !quiet {
        broker.set_log(Box::new(|line| println!("dps-broker: {line}")));
    }
    if let Err(e) = broker.serve(|| false) {
        eprintln!("dps-broker: listener failed: {e}");
        std::process::exit(1);
    }
}
