//! Property tests for the wire codec: every frame type survives a round
//! trip; truncation, garbage, and hostile length prefixes are rejected with
//! named errors (never a panic, never an allocation sized by the attacker).

use dps_broker::wire::{decode, encode, Frame, FrameReader, PubRef, WireError, MAX_FRAME};
use dps_content::strategies as st;
use proptest::prelude::*;

/// A strategy producing every [`Frame`] variant, with realistic payloads from
/// the content-model strategies.
fn frame() -> BoxedStrategy<Frame> {
    prop_oneof![
        (0u32..3, 0u64..1 << 48, (0u32..2).prop_map(|b| b == 1)).prop_map(|(version, s, some)| {
            Frame::Hello {
                version,
                session: some.then_some(s),
            }
        }),
        (0u64..1 << 32, 0u64..1 << 16, st::filter(), 0u32..1 << 16).prop_map(
            |(seq, sub, filter, credit)| Frame::Subscribe {
                seq,
                sub,
                filter: filter.into(),
                credit,
            }
        ),
        (0u64..1 << 32, 0u64..1 << 16).prop_map(|(seq, sub)| Frame::Unsubscribe { seq, sub }),
        (0u64..1 << 32, st::event()).prop_map(|(seq, event)| Frame::Publish {
            seq,
            event: event.into(),
        }),
        (
            0u64..1 << 16,
            0u64..1 << 32,
            0u32..1 << 20,
            st::full_event()
        )
            .prop_map(|(sub, publisher, pub_seq, event)| Frame::Deliver {
                sub,
                publisher,
                pub_seq,
                event: event.into(),
            }),
        (
            0u64..1 << 32,
            (0u32..2).prop_map(|b| b == 1),
            0u64..1 << 32,
            0u32..1 << 20,
            st::short_string(),
            (0u32..2).prop_map(|b| b == 1)
        )
            .prop_map(|(seq, has_id, node, pseq, err, has_err)| Frame::Ack {
                seq,
                pub_id: has_id.then_some(PubRef { node, seq: pseq }),
                error: has_err.then_some(err),
            }),
        (0u64..1 << 16, 0u32..1 << 16).prop_map(|(sub, more)| Frame::Credit { sub, more }),
        st::short_string().prop_map(|reason| Frame::Close { reason }),
    ]
    .boxed()
}

proptest! {
    /// Encode → decode is the identity, and consumes exactly the frame.
    #[test]
    fn round_trip_every_frame_type(f in frame()) {
        let bytes = encode(&f).expect("well-formed frames encode");
        let (back, used) = decode(&bytes).expect("own encoding decodes").expect("complete");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(back, f);
    }

    /// Any strict prefix of a frame is "incomplete", never an error or panic;
    /// EOF at that point is a named truncation.
    #[test]
    fn truncation_is_incomplete_then_named_at_eof(f in frame(), frac in 0u32..1000) {
        let bytes = encode(&f).unwrap();
        let cut = (bytes.len() - 1) * frac as usize / 1000;
        prop_assert_eq!(decode(&bytes[..cut]).unwrap(), None);
        let mut r = FrameReader::new();
        r.feed(&bytes[..cut]);
        prop_assert_eq!(r.next_frame().unwrap(), None);
        if cut > 0 {
            prop_assert!(matches!(r.finish(), Err(WireError::Truncated { .. })));
        }
    }

    /// A length prefix past the cap is rejected no matter what follows —
    /// before any allocation of that size could happen.
    #[test]
    fn oversized_prefix_is_rejected(over in 1u32..u32::MAX - MAX_FRAME, junk in 0u64..u64::MAX) {
        let len = MAX_FRAME + over;
        let mut buf = len.to_be_bytes().to_vec();
        buf.extend_from_slice(&junk.to_be_bytes());
        prop_assert_eq!(
            decode(&buf).unwrap_err(),
            WireError::FrameTooLarge { len, max: MAX_FRAME }
        );
    }

    /// A well-framed body that is not a Frame decodes to a named error, and
    /// the error message is loud about why.
    #[test]
    fn garbage_body_is_a_decode_error(s in st::short_string(), pad in 0u64..u64::MAX) {
        let body = format!("{s}{pad}");
        let mut buf = (body.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(body.as_bytes());
        prop_assert!(matches!(decode(&buf), Err(WireError::Decode(_))));
    }

    /// Reassembly is chunking-independent: any chunk size yields the same
    /// frame sequence as one contiguous feed.
    #[test]
    fn reader_is_chunking_independent(a in frame(), b in frame(), c in frame(), chunk in 1usize..9) {
        let frames = vec![a, b, c];
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode(f).unwrap());
        }
        let mut r = FrameReader::new();
        let mut got = Vec::new();
        for piece in stream.chunks(chunk) {
            r.feed(piece);
            while let Some(f) = r.next_frame().unwrap() {
                got.push(f);
            }
        }
        prop_assert_eq!(got, frames);
        r.finish().unwrap();
    }
}

/// The encoder refuses to emit a frame whose body would bust the cap — the
/// sender finds out, not the receiver.
#[test]
fn encoder_enforces_the_cap_too() {
    let reason = "x".repeat(MAX_FRAME as usize + 1);
    match encode(&Frame::Close { reason }) {
        Err(WireError::FrameTooLarge { max, .. }) => assert_eq!(max, MAX_FRAME),
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
}
