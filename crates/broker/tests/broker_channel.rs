//! Lockstep broker tests over the in-process [`ChannelTransport`]: a
//! single-threaded driver alternates client frame writes with
//! [`Broker::pump`] calls, so every run is fully deterministic — the final
//! test pins that determinism down to the exact bytes each client receives.

use dps_broker::wire::{encode, Frame, FrameReader, PROTOCOL_VERSION};
use dps_broker::{Broker, BrokerConfig, ChannelTransport, Connection, Transport};
use dps_content::Event;

/// A wire-level test client: frames out, frames (and raw bytes) in.
struct TestClient {
    conn: Box<dyn Connection>,
    reader: FrameReader,
    /// Every byte ever received, for byte-identity assertions.
    received_bytes: Vec<u8>,
    frames: Vec<Frame>,
}

impl TestClient {
    fn connect(t: &ChannelTransport, addr: &str) -> Self {
        TestClient {
            conn: t.connect(addr).expect("broker is listening"),
            reader: FrameReader::new(),
            received_bytes: Vec::new(),
            frames: Vec::new(),
        }
    }

    fn send(&mut self, frame: &Frame) {
        let bytes = encode(frame).unwrap();
        let n = self.conn.send(&bytes).expect("channel accepts all bytes");
        assert_eq!(n, bytes.len());
    }

    fn read(&mut self) {
        let mut buf = [0u8; 4096];
        loop {
            match self.conn.recv(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    self.received_bytes.extend_from_slice(&buf[..n]);
                    self.reader.feed(&buf[..n]);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => panic!("recv: {e}"),
            }
        }
        while let Some(f) = self
            .reader
            .next_frame()
            .expect("broker speaks the protocol")
        {
            self.frames.push(f);
        }
    }

    fn hello(&mut self) {
        self.send(&Frame::Hello {
            version: PROTOCOL_VERSION,
            session: None,
        });
    }

    fn deliveries(&self) -> Vec<(u64, String)> {
        self.frames
            .iter()
            .filter_map(|f| match f {
                Frame::Deliver { sub, event, .. } => Some((*sub, event.to_string())),
                _ => None,
            })
            .collect()
    }

    fn acks(&self) -> Vec<&Frame> {
        self.frames
            .iter()
            .filter(|f| matches!(f, Frame::Ack { .. }))
            .collect()
    }
}

fn broker_on(t: &ChannelTransport, addr: &str, seed: u64) -> Broker {
    let cfg = BrokerConfig {
        seed,
        ..BrokerConfig::default()
    };
    Broker::new(cfg, t.listen(addr).expect("fresh address"))
}

/// One lockstep turn: broker pump, then every client drains its socket.
fn turn(broker: &mut Broker, clients: &mut [&mut TestClient]) {
    broker.pump().expect("channel listener cannot fail");
    for c in clients.iter_mut() {
        c.read();
    }
}

fn settle(broker: &mut Broker, clients: &mut [&mut TestClient], turns: usize) {
    for _ in 0..turns {
        turn(broker, clients);
    }
}

fn ev(s: &str) -> Event {
    s.parse().unwrap()
}

#[test]
fn end_to_end_delivery_over_channels() {
    let t = ChannelTransport::new();
    let mut broker = broker_on(&t, "hub", 7);
    let mut sub = TestClient::connect(&t, "hub");
    let mut pubc = TestClient::connect(&t, "hub");
    sub.hello();
    pubc.hello();
    settle(&mut broker, &mut [&mut sub, &mut pubc], 3);
    assert!(matches!(
        sub.frames[0],
        Frame::Hello {
            session: Some(_),
            ..
        }
    ));

    sub.send(&Frame::Subscribe {
        seq: 1,
        sub: 10,
        filter: "price > 100".parse::<dps::Filter>().unwrap().into(),
        credit: 64,
    });
    settle(&mut broker, &mut [&mut sub, &mut pubc], 60);
    assert!(
        matches!(
            sub.frames[1],
            Frame::Ack {
                seq: 1,
                error: None,
                ..
            }
        ),
        "subscribe is acked: {:?}",
        sub.frames
    );

    for (seq, event) in [(1, "price = 150"), (2, "price = 50"), (3, "price = 101")] {
        pubc.send(&Frame::Publish {
            seq,
            event: ev(event).into(),
        });
    }
    settle(&mut broker, &mut [&mut sub, &mut pubc], 80);

    assert_eq!(pubc.acks().len(), 3, "every publish is acked");
    let got = sub.deliveries();
    assert_eq!(
        got,
        vec![
            (10, "price = 150".to_string()),
            (10, "price = 101".to_string())
        ],
        "exactly the matching events, in publish order"
    );
    assert_eq!(broker.network().delivered_ratio(), 1.0);
}

#[test]
fn stalled_subscriber_does_not_stall_the_broker_or_other_sessions() {
    let t = ChannelTransport::new();
    let mut broker = broker_on(&t, "hub", 11);
    let mut stalled = TestClient::connect(&t, "hub");
    let mut healthy = TestClient::connect(&t, "hub");
    let mut pubc = TestClient::connect(&t, "hub");
    stalled.hello();
    healthy.hello();
    pubc.hello();
    settle(&mut broker, &mut [&mut stalled, &mut healthy, &mut pubc], 3);

    let filter = || "load > 0".parse::<dps::Filter>().unwrap();
    // The stalled session grants a window of 2 and never replenishes.
    stalled.send(&Frame::Subscribe {
        seq: 1,
        sub: 1,
        filter: filter().into(),
        credit: 2,
    });
    healthy.send(&Frame::Subscribe {
        seq: 1,
        sub: 1,
        filter: filter().into(),
        credit: 1 << 16,
    });
    settle(
        &mut broker,
        &mut [&mut stalled, &mut healthy, &mut pubc],
        60,
    );

    for seq in 0..12u64 {
        pubc.send(&Frame::Publish {
            seq,
            event: ev(&format!("load = {}", seq + 1)).into(),
        });
        settle(
            &mut broker,
            &mut [&mut stalled, &mut healthy, &mut pubc],
            20,
        );
    }

    assert_eq!(pubc.acks().len(), 12, "the broker never stopped acking");
    assert_eq!(
        healthy.deliveries().len(),
        12,
        "the healthy session got everything"
    );
    assert_eq!(
        stalled.deliveries().len(),
        2,
        "the stalled session got exactly its credit window"
    );

    // Granting credit later releases the queued (bounded) backlog.
    stalled.send(&Frame::Credit { sub: 1, more: 100 });
    settle(
        &mut broker,
        &mut [&mut stalled, &mut healthy, &mut pubc],
        10,
    );
    assert_eq!(
        stalled.deliveries().len(),
        12,
        "credit releases the queued deliveries"
    );
}

#[test]
fn graceful_close_retires_the_session() {
    let t = ChannelTransport::new();
    let mut broker = broker_on(&t, "hub", 3);
    let mut client = TestClient::connect(&t, "hub");
    client.hello();
    settle(&mut broker, &mut [&mut client], 3);
    client.send(&Frame::Subscribe {
        seq: 1,
        sub: 1,
        filter: "a > 0".parse::<dps::Filter>().unwrap().into(),
        credit: 8,
    });
    settle(&mut broker, &mut [&mut client], 40);
    assert_eq!(broker.session_count(), 1);

    client.send(&Frame::Close {
        reason: "test done".into(),
    });
    settle(&mut broker, &mut [&mut client], 5);
    assert!(
        client
            .frames
            .iter()
            .any(|f| matches!(f, Frame::Close { .. })),
        "the broker echoes Close before dropping the link"
    );
    assert_eq!(broker.session_count(), 0, "the session is reaped");
    // And the link reads EOF now.
    let mut buf = [0u8; 8];
    assert_eq!(client.conn.recv(&mut buf).unwrap(), 0);
}

#[test]
fn version_mismatch_is_refused_by_name() {
    let t = ChannelTransport::new();
    let mut broker = broker_on(&t, "hub", 3);
    let mut client = TestClient::connect(&t, "hub");
    client.send(&Frame::Hello {
        version: 99,
        session: None,
    });
    settle(&mut broker, &mut [&mut client], 3);
    match &client.frames[..] {
        [Frame::Close { reason }] => {
            assert!(
                reason.contains("version") && reason.contains("99"),
                "the refusal names the versions: {reason}"
            );
        }
        other => panic!("expected a lone Close, got {other:?}"),
    }
    assert_eq!(broker.session_count(), 0);
}

/// The determinism acceptance: the same scripted run, twice, produces
/// byte-identical streams to every client.
#[test]
fn channel_runs_are_byte_identical_for_the_same_seed() {
    fn scripted_run(seed: u64) -> (Vec<u8>, Vec<u8>) {
        let t = ChannelTransport::new();
        let mut broker = broker_on(&t, "hub", seed);
        let mut sub = TestClient::connect(&t, "hub");
        let mut pubc = TestClient::connect(&t, "hub");
        sub.hello();
        pubc.hello();
        settle(&mut broker, &mut [&mut sub, &mut pubc], 3);
        sub.send(&Frame::Subscribe {
            seq: 1,
            sub: 1,
            filter: "temp > 10 & temp < 90"
                .parse::<dps::Filter>()
                .unwrap()
                .into(),
            credit: 32,
        });
        settle(&mut broker, &mut [&mut sub, &mut pubc], 60);
        for seq in 0..20u64 {
            pubc.send(&Frame::Publish {
                seq,
                event: ev(&format!("temp = {}", (seq * 13) % 100)).into(),
            });
            settle(&mut broker, &mut [&mut sub, &mut pubc], 10);
        }
        sub.send(&Frame::Close {
            reason: "end".into(),
        });
        pubc.send(&Frame::Close {
            reason: "end".into(),
        });
        settle(&mut broker, &mut [&mut sub, &mut pubc], 5);
        (sub.received_bytes, pubc.received_bytes)
    }

    let first = scripted_run(1234);
    let second = scripted_run(1234);
    assert!(!first.0.is_empty() && !first.1.is_empty());
    // Sanity: the subscriber actually received deliveries, not just the
    // handshake, so the identity assertion covers the full delivery path.
    assert!(first.0.len() > 500, "subscriber stream is substantial");
    assert_eq!(first, second, "same seed, same script, same bytes");
}
