//! The scenario engine: executes a [compiled](mod@crate::compile) spec
//! deterministically on a [`DpsNetwork`] and measures every phase.
//!
//! A run is a pure function of the spec (including its seed): setup builds
//! the declared overlay, the lowered [`dps_sim::FaultPlan`] is installed in one shot
//! (shifted onto the absolute timeline), and each phase then advances step by
//! step, applying churn events, burst subscriptions and publications in a
//! fixed order. The simulation executes on [`crate::env::shards`] execution
//! shards (`DPS_SHARDS`) — rows are byte-identical whatever that is, because
//! the underlying engine guarantees shard-count invariance and every driver
//! choice draws from shard-independent RNG streams.
//!
//! Measurement happens after a drain, so the per-phase delivered ratios see
//! fully settled deliveries (deep chains deliver one hop per step).

use dps::{DpsNetwork, DropReason, Filter};
use dps_sim::{ChurnEvent, Step};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use crate::compile::{compile, CompiledScenario, SpecError};
use crate::spec::ScenarioSpec;

/// Salt applied to the spec seed for the setup-subscription RNG (the same
/// derivation the experiment runners' `build_overlay` uses).
const SUB_RNG_SALT: u64 = 0xabcd;
/// Salt applied to the spec seed for the publication-event RNG.
const EVENT_RNG_SALT: u64 = 0xfeed;

/// One measured phase of a scenario run: the JSON row the runner emits.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseRow {
    /// Scenario name.
    pub scenario: String,
    /// Phase name.
    pub phase: String,
    /// Absolute simulation step the phase began at.
    pub from_step: Step,
    /// Absolute simulation step the phase ended at.
    pub until_step: Step,
    /// Publications issued during the phase.
    pub published: u64,
    /// Burst subscriptions issued during the phase.
    pub subscriptions: u64,
    /// Churn crashes applied during the phase.
    pub crashes: u64,
    /// Nodes that joined during the phase.
    pub joins: u64,
    /// Messages dropped by partitions during the phase.
    pub dropped_partitioned: u64,
    /// Messages dropped by loss sampling during the phase.
    pub dropped_loss: u64,
    /// Messages dropped because their destination had crashed.
    pub dropped_crashed: u64,
    /// Alive population at phase end.
    pub alive_at_end: usize,
    /// Raw delivered ratio over the phase's publications (measured after the
    /// final drain).
    pub delivered_ratio: f64,
    /// Reachable-aware delivered ratio over the phase's publications.
    pub delivered_ratio_reachable: f64,
    /// Median publish→deliver latency (steps from publish to first notify)
    /// over the phase's publications; `None` when nothing was delivered.
    pub latency_p50: Option<f64>,
    /// 99th-percentile publish→deliver latency; `None` when nothing was
    /// delivered.
    pub latency_p99: Option<f64>,
    /// 99.9th-percentile publish→deliver latency; `None` when nothing was
    /// delivered.
    pub latency_p999: Option<f64>,
    /// The spec's raw-ratio floor, if any.
    pub min_delivered: Option<f64>,
    /// The spec's reachable-ratio floor, if any.
    pub min_delivered_reachable: Option<f64>,
    /// The spec's p99 latency ceiling, if any.
    pub max_p99: Option<f64>,
    /// Whether every declared floor and ceiling held.
    pub pass: bool,
}

/// The outcome of one scenario run.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Whether every phase's declared floors held.
    pub passed: bool,
    /// One row per phase, in timeline order.
    pub rows: Vec<PhaseRow>,
    /// Total simulation steps the run executed (setup, phases and drain).
    /// Deterministic for a given spec, so safe next to the rows; the runner
    /// uses it for the steps/sec throughput summary at metro scale.
    pub total_steps: Step,
}

/// Bookkeeping recorded while a phase runs.
#[derive(Debug, Clone)]
struct PhaseRec {
    start: Step,
    end: Step,
    published: u64,
    subscriptions: u64,
    crashes: u64,
    joins: u64,
    dropped_partitioned_at_end: u64,
    dropped_loss_at_end: u64,
    dropped_crashed_at_end: u64,
    alive_at_end: usize,
}

/// An in-flight scenario run. Most callers use [`run_scenario`]; tests that
/// assert protocol internals between phases drive [`run_phase`](Self::run_phase)
/// themselves and inspect [`network`](Self::network) at each boundary.
pub struct ScenarioRun {
    compiled: CompiledScenario,
    net: DpsNetwork,
    event_rng: StdRng,
    next_phase: usize,
    recs: Vec<PhaseRec>,
}

impl ScenarioRun {
    /// Compiles `spec`, builds the declared overlay (nodes, setup
    /// subscriptions, convergence) and installs the lowered fault schedule.
    /// The simulation runs on `DPS_SHARDS` execution shards.
    pub fn new(spec: &ScenarioSpec) -> Result<Self, SpecError> {
        ScenarioRun::with_shards(spec, crate::env::shards())
    }

    /// Like [`new`](Self::new) with an explicit shard count (tests pin it).
    pub fn with_shards(spec: &ScenarioSpec, shards: usize) -> Result<Self, SpecError> {
        let compiled = compile(spec)?;
        let mut net = DpsNetwork::new_sharded(compiled.cfg.clone(), compiled.seed, shards);
        // The latency model must go in before the first node: `set_latency`
        // insists on a fresh simulation, and `add_nodes` already enqueues the
        // nodes' start-up sends.
        if let Some(model) = compiled.latency.clone() {
            net.try_set_latency(model)
                .expect("compile() validated the model and the network is fresh");
        }
        let nodes = net.add_nodes(compiled.nodes);
        net.run(30);
        let mut sub_rng = StdRng::seed_from_u64(compiled.seed ^ SUB_RNG_SALT);
        for _round in 0..compiled.subs_per_node {
            for (i, node) in nodes.iter().enumerate() {
                let _ = net.try_subscribe(*node, subscription(&compiled, &mut sub_rng));
                if i % 25 == 24 {
                    net.run(1);
                }
            }
            net.run(20);
        }
        if !net.quiesce(1500) {
            // A setup failure must not masquerade as a protocol failure in
            // the measured phases (the hand-rolled tests asserted this too).
            return Err(SpecError(format!(
                "{}: overlay failed to converge during setup \
                 ({} subscriptions still unplaced after 1500 steps)",
                compiled.name,
                net.pending_subscriptions()
            )));
        }
        net.run(150);
        // The timeline starts now: shift the relative windows onto it.
        let base = net.sim().now();
        net.schedule_faults(compiled.faults.clone().shifted(base));
        let event_rng = StdRng::seed_from_u64(compiled.seed ^ EVENT_RNG_SALT);
        Ok(ScenarioRun {
            compiled,
            net,
            event_rng,
            next_phase: 0,
            recs: Vec::new(),
        })
    }

    /// The network under simulation (between-phase inspection).
    pub fn network(&self) -> &DpsNetwork {
        &self.net
    }

    /// Mutable network access: tests inject bespoke actions (extra joins,
    /// hand-picked publications) at phase boundaries.
    pub fn network_mut(&mut self) -> &mut DpsNetwork {
        &mut self.net
    }

    /// Name of the phase the next [`run_phase`](Self::run_phase) call executes.
    pub fn next_phase_name(&self) -> Option<&str> {
        self.compiled
            .phases
            .get(self.next_phase)
            .map(|p| p.name.as_str())
    }

    /// Runs the next phase of the timeline; returns its name, or `None` when
    /// every phase has run. Within each step the order is fixed: churn events,
    /// then burst subscriptions, then the scheduled publication, then one
    /// simulation step.
    pub fn run_phase(&mut self) -> Option<&str> {
        let phase = self.compiled.phases.get(self.next_phase)?;
        let mut rec = PhaseRec {
            start: self.net.sim().now(),
            end: 0,
            published: 0,
            subscriptions: 0,
            crashes: 0,
            joins: 0,
            dropped_partitioned_at_end: 0,
            dropped_loss_at_end: 0,
            dropped_crashed_at_end: 0,
            alive_at_end: 0,
        };
        let mut next_sub = 0usize;
        for t in 1..=phase.steps {
            for plan in &phase.churn {
                for ev in plan.events_at(t) {
                    match ev {
                        ChurnEvent::CrashRandom => {
                            if self.net.crash_random().is_some() {
                                rec.crashes += 1;
                            }
                        }
                        ChurnEvent::Join => {
                            let id = self.net.add_node();
                            let f = subscription(&self.compiled, &mut self.event_rng);
                            let _ = self.net.try_subscribe(id, f);
                            rec.joins += 1;
                        }
                    }
                }
            }
            while phase.subscribe_at.get(next_sub) == Some(&t) {
                next_sub += 1;
                if let Some(node) = self.net.random_alive() {
                    let f = subscription(&self.compiled, &mut self.event_rng);
                    let _ = self.net.try_subscribe(node, f);
                    rec.subscriptions += 1;
                }
            }
            if let Some(every) = phase.publish_every {
                if (t - 1) % every == 0 {
                    if let Some(publisher) = self.net.random_alive() {
                        let ev = self.compiled.workload.event(&mut self.event_rng);
                        if self.net.try_publish(publisher, ev).is_ok() {
                            rec.published += 1;
                        }
                    }
                }
            }
            self.net.run(1);
        }
        rec.end = self.net.sim().now();
        let m = self.net.metrics();
        rec.dropped_partitioned_at_end = m.dropped_for(DropReason::Partitioned);
        rec.dropped_loss_at_end = m.dropped_for(DropReason::Loss);
        rec.dropped_crashed_at_end = m.dropped_for(DropReason::Crashed);
        rec.alive_at_end = self.net.sim().alive_count();
        self.recs.push(rec);
        self.next_phase += 1;
        Some(&self.compiled.phases[self.next_phase - 1].name)
    }

    /// Runs any remaining phases and the drain, measures every phase and
    /// checks the declared floors.
    pub fn finish(mut self) -> ScenarioReport {
        while self.run_phase().is_some() {}
        self.net.run(self.compiled.drain);
        let mut rows = Vec::with_capacity(self.recs.len());
        let (mut prev_cut, mut prev_loss, mut prev_crashed) = (0u64, 0u64, 0u64);
        for (phase, rec) in self.compiled.phases.iter().zip(&self.recs) {
            let delivered = self.net.delivered_ratio_between(rec.start, rec.end);
            let reachable = self
                .net
                .delivered_ratio_reachable_between(rec.start, rec.end);
            let lat = self.net.latency_summary_between(rec.start, rec.end);
            let pass = phase.min_delivered.is_none_or(|floor| delivered >= floor)
                && phase
                    .min_delivered_reachable
                    .is_none_or(|floor| reachable >= floor)
                // The ceiling needs deliveries to measure: a phase that
                // declared one but delivered nothing fails loudly instead of
                // passing vacuously.
                && phase
                    .max_p99
                    .is_none_or(|ceiling| lat.samples > 0 && lat.p99 <= ceiling);
            rows.push(PhaseRow {
                scenario: self.compiled.name.clone(),
                phase: phase.name.clone(),
                from_step: rec.start,
                until_step: rec.end,
                published: rec.published,
                subscriptions: rec.subscriptions,
                crashes: rec.crashes,
                joins: rec.joins,
                dropped_partitioned: rec.dropped_partitioned_at_end - prev_cut,
                dropped_loss: rec.dropped_loss_at_end - prev_loss,
                dropped_crashed: rec.dropped_crashed_at_end - prev_crashed,
                alive_at_end: rec.alive_at_end,
                delivered_ratio: delivered,
                delivered_ratio_reachable: reachable,
                latency_p50: (lat.samples > 0).then_some(lat.p50),
                latency_p99: (lat.samples > 0).then_some(lat.p99),
                latency_p999: (lat.samples > 0).then_some(lat.p999),
                min_delivered: phase.min_delivered,
                min_delivered_reachable: phase.min_delivered_reachable,
                max_p99: phase.max_p99,
                pass,
            });
            prev_cut = rec.dropped_partitioned_at_end;
            prev_loss = rec.dropped_loss_at_end;
            prev_crashed = rec.dropped_crashed_at_end;
        }
        ScenarioReport {
            scenario: self.compiled.name.clone(),
            passed: rows.iter().all(|r| r.pass),
            rows,
            total_steps: self.net.sim().now(),
        }
    }
}

/// Draws one subscription: the fixed topology filter if declared, a workload
/// draw otherwise.
fn subscription(compiled: &CompiledScenario, rng: &mut StdRng) -> Filter {
    match &compiled.filter {
        Some(f) => f.clone(),
        None => compiled.workload.subscription(rng),
    }
}

/// Compiles and executes `spec` end to end. Honors `DPS_SHARDS`; rows are
/// byte-identical whatever it is set to.
pub fn run_scenario(spec: &ScenarioSpec) -> Result<ScenarioReport, SpecError> {
    Ok(ScenarioRun::new(spec)?.finish())
}
