//! Strict parsers for the execution-environment knobs.
//!
//! Unknown or malformed values **fail loudly**: a typo like `DPS_SHARDS=fuor`
//! must abort the run, not silently fall back to a default and measure
//! something else than asked. The pure `parse_*` functions are unit-testable;
//! the readers panic with the parse error.

/// Parses a `DPS_SHARDS` value: unset means 1, otherwise an integer ≥ 1.
pub fn parse_shards(raw: Option<&str>) -> Result<usize, String> {
    match raw {
        None => Ok(1),
        Some(s) => match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!(
                "DPS_SHARDS={s:?} is not a valid shard count (expected an integer >= 1)"
            )),
        },
    }
}

/// Execution-shard count for each simulation, from `DPS_SHARDS`.
///
/// # Panics
///
/// Panics on a malformed value — see the [module docs](self).
pub fn shards() -> usize {
    match parse_shards(std::env::var("DPS_SHARDS").ok().as_deref()) {
        Ok(n) => n,
        Err(e) => panic!("{e}"),
    }
}

/// Parses a `DPS_THREADS` value: unset means "use available parallelism"
/// (`None`), otherwise an integer ≥ 1.
pub fn parse_threads(raw: Option<&str>) -> Result<Option<usize>, String> {
    match raw {
        None => Ok(None),
        Some(s) => match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(format!(
                "DPS_THREADS={s:?} is not a valid worker count (expected an integer >= 1)"
            )),
        },
    }
}

/// Worker-thread count for fanning independent scenario cells out, from
/// `DPS_THREADS` (default: the machine's available parallelism).
///
/// # Panics
///
/// Panics on a malformed value — see the [module docs](self).
pub fn threads() -> usize {
    match parse_threads(std::env::var("DPS_THREADS").ok().as_deref()) {
        Ok(Some(n)) => n,
        Ok(None) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_parsing_is_strict() {
        assert_eq!(parse_shards(None), Ok(1));
        assert_eq!(parse_shards(Some("4")), Ok(4));
        assert_eq!(parse_shards(Some(" 2 ")), Ok(2));
        assert!(parse_shards(Some("0")).unwrap_err().contains("DPS_SHARDS"));
        assert!(parse_shards(Some("fuor")).is_err());
        assert!(parse_shards(Some("-1")).is_err());
        assert!(parse_shards(Some("2.5")).is_err());
    }

    #[test]
    fn thread_parsing_is_strict() {
        assert_eq!(parse_threads(None), Ok(None));
        assert_eq!(parse_threads(Some("8")), Ok(Some(8)));
        assert!(parse_threads(Some("0"))
            .unwrap_err()
            .contains("DPS_THREADS"));
        assert!(parse_threads(Some("many")).is_err());
    }
}
