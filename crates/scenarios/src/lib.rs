//! **dps-scenarios** — the declarative scenario layer of the DPS
//! reproduction.
//!
//! The paper's claims are about behavior under *composed* adversity — churn,
//! partitions and loss striking mid-run while subscriptions and publications
//! flow. This crate turns each such storyline from ~100 lines of hand-coded
//! driver Rust into a ~20-line JSON spec file:
//!
//! * [`spec`] — the [`ScenarioSpec`] data model a `scenarios/*.json` file
//!   deserializes into: topology, a phased timeline of churn windows,
//!   partition and loss windows, workload bursts, and per-phase delivery
//!   floors;
//! * [`mod@compile`] — validation (loud errors on unknown schemes, overlapping
//!   exclusive windows, out-of-range rates) and lowering onto the existing
//!   [`dps_sim::ChurnPlan`] / [`dps_sim::FaultPlan`] / [`dps::DpsNetwork`]
//!   APIs;
//! * [`engine`] — the deterministic executor: [`run_scenario`] builds the
//!   overlay, installs the lowered fault schedule and advances phase by
//!   phase, emitting one measured [`PhaseRow`] per phase; [`ScenarioRun`]
//!   exposes the phase boundaries to tests that assert protocol internals
//!   mid-scenario;
//! * [`mod@env`] — strict `DPS_SHARDS` / `DPS_THREADS` parsing (typos abort, they
//!   do not silently fall back to defaults).
//!
//! Runs are deterministic: a spec plus its seed fully determines every row,
//! byte-identical whatever `DPS_SHARDS` is (the engine below guarantees
//! shard-count invariance). The library of named specs lives under
//! `scenarios/` at the repository root; the `scenarios` bin in
//! `dps-experiments` sweeps it and persists per-scenario JSON rows.
//!
//! ```
//! use dps_scenarios::{run_scenario, ScenarioSpec};
//!
//! let spec = ScenarioSpec::from_json_str(
//!     r#"{
//!         "name": "doc-smoke",
//!         "seed": 7,
//!         "topology": {"nodes": 12, "scheme": "epidemic", "fanout": 2},
//!         "phases": [
//!             {"name": "calm", "steps": 40, "publish_every": 10,
//!              "expect": {"min_delivered": 0.9}}
//!         ]
//!     }"#,
//! )
//! .unwrap();
//! let report = run_scenario(&spec).unwrap();
//! assert!(report.passed);
//! assert_eq!(report.rows.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod engine;
pub mod env;
pub mod spec;

pub use compile::{compile, CompiledPhase, CompiledScenario, SpecError};
pub use engine::{run_scenario, PhaseRow, ScenarioReport, ScenarioRun};
pub use spec::{
    ChurnSpec, ClassLatencySpec, CutSpec, ExpectSpec, LatencySpec, LossWindowSpec, OneWaySpec,
    PartitionWindowSpec, PhaseSpec, ScenarioSpec, SideSpec, SubscribeSpec, TopologySpec,
};
