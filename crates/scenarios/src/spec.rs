//! The declarative scenario spec: what a `scenarios/*.json` file contains.
//!
//! A spec is pure data — topology, a phased timeline of adversity (churn,
//! partitions, loss, workload bursts) and expected outcomes. The
//! [compiler](mod@crate::compile) validates it and lowers it onto the existing
//! `ChurnPlan`/`FaultPlan`/`DpsNetwork` APIs; nothing in here executes.
//!
//! All step counts inside a phase are **phase-relative**; the compiler
//! resolves them onto the run timeline. See the repository README for the
//! annotated file-format reference.

use serde::{Deserialize, Serialize};

use crate::compile::SpecError;

/// A complete declarative scenario, as parsed from one JSON spec file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (used for row labels and output file names).
    pub name: String,
    /// Free-text description of the storyline.
    pub description: Option<String>,
    /// RNG seed: the whole run is a pure function of the spec and this seed.
    pub seed: u64,
    /// Initial overlay: population, scheme and subscription load.
    pub topology: TopologySpec,
    /// The timeline: phases run back to back in order.
    pub phases: Vec<PhaseSpec>,
    /// Extra steps run after the last phase so in-flight deliveries settle
    /// before the per-phase ratios are measured. Default: `2 × nodes + 200`
    /// (deep chains deliver one hop per step).
    pub drain: Option<u64>,
}

impl ScenarioSpec {
    /// Parses a spec from JSON text.
    pub fn from_json_str(s: &str) -> Result<ScenarioSpec, SpecError> {
        serde_json::from_str(s).map_err(|e| SpecError(e.to_string()))
    }

    /// Reads and parses a spec file; errors carry the path.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<ScenarioSpec, SpecError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| SpecError(format!("{}: {e}", path.display())))?;
        ScenarioSpec::from_json_str(&text)
            .map_err(|e| SpecError(format!("{}: {e}", path.display())))
    }

    /// Re-renders the spec as pretty JSON (the golden-file format).
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serialization is infallible")
    }
}

/// Initial overlay topology and subscription load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologySpec {
    /// Initial population.
    pub nodes: usize,
    /// Communication scheme: `"leader"` or `"epidemic"`.
    pub scheme: String,
    /// Tree traversal: `"root"` (default) or `"generic"`.
    pub traversal: Option<String>,
    /// Epidemic intra-group gossip fanout `k` (default: the config default).
    pub fanout: Option<usize>,
    /// Workload subscriptions issued per node during setup (default 1).
    pub subs_per_node: Option<usize>,
    /// Workload preset drawn from for subscriptions and events:
    /// `"multiplayer-game"` (default), `"stock-exchange"` or
    /// `"alert-monitoring"`.
    pub workload: Option<String>,
    /// Instead of a preset: a synthetic workload of this many uniform numeric
    /// attributes (`a0..aN`), one subscription range per attribute — grows
    /// the attribute-tree forest without inventing a preset.
    pub attributes: Option<usize>,
    /// Instead of workload draws: every setup subscription (and subscribe
    /// bursts) uses exactly this filter, e.g. `"load > 10"`. Events must then
    /// be published by the test driver, since workload events need not carry
    /// the filtered attribute.
    pub filter: Option<String>,
    /// Which predicate a multi-predicate subscription joins the overlay with:
    /// `"explicit"` (default — picked uniformly at random, the paper's
    /// "arbitrarily chosen") or `"first"` (deterministic first predicate).
    pub join_rule: Option<String>,
    /// Link-latency distribution (default: unit latency — every link takes
    /// exactly one step, the classic cycle model). Applies to every message
    /// of the whole run, setup included.
    pub latency: Option<LatencySpec>,
}

/// The link-latency distribution of a scenario, lowered onto
/// [`dps_sim::LatencyModel`]. Latencies are in steps; every `min` must be
/// ≥ 1 and every `max` within the engine's [`dps_sim::MAX_LATENCY`] cap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LatencySpec {
    /// Every link delivers after a latency uniform in `[min, max]` steps.
    Uniform {
        /// Minimum latency, inclusive.
        min: u64,
        /// Maximum latency, inclusive.
        max: u64,
    },
    /// A jitter mixture: with probability `slow_weight` the latency is
    /// uniform in `[slow_min, slow_max]`, otherwise uniform in
    /// `[fast_min, fast_max]`.
    Bimodal {
        /// Fast-mode minimum, inclusive.
        fast_min: u64,
        /// Fast-mode maximum, inclusive.
        fast_max: u64,
        /// Slow-mode minimum, inclusive.
        slow_min: u64,
        /// Slow-mode maximum, inclusive.
        slow_max: u64,
        /// Probability of the slow mode, in `[0, 1]`.
        slow_weight: f64,
    },
    /// Per-destination-class latency: node `i` belongs to class
    /// `i % classes.len()`, and every link **into** it is uniform in that
    /// class's range — e.g. `[{fast}, {fast}, {slow}]` makes every third
    /// node a slow-link straggler.
    Classes {
        /// The class ranges, assigned round-robin by node index.
        classes: Vec<ClassLatencySpec>,
    },
}

/// One latency class of a [`LatencySpec::Classes`] distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassLatencySpec {
    /// Minimum latency, inclusive.
    pub min: u64,
    /// Maximum latency, inclusive.
    pub max: u64,
}

/// One phase of the timeline: `steps` simulation steps with the declared
/// adversity and workload in force. Within a phase, each step applies churn
/// events first, then subscribe-burst subscriptions, then a publication (if
/// due), then advances the simulation by one step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Phase name (unique within the scenario; labels the output row).
    pub name: String,
    /// Phase length in steps.
    pub steps: u64,
    /// Publish one workload event every this many steps (first at the phase's
    /// first step); omit for a publication-free phase.
    pub publish_every: Option<u64>,
    /// A burst of new subscriptions from random alive nodes.
    pub subscribe: Option<SubscribeSpec>,
    /// Node churn in force during this phase.
    pub churn: Option<ChurnSpec>,
    /// Partition windows within this phase. Windows are exclusive: they may
    /// not overlap in time (a composed double-cut is almost always a spec
    /// bug; express separate sides with one `Named` cut instead).
    pub partitions: Option<Vec<PartitionWindowSpec>>,
    /// Loss windows within this phase (same exclusivity rule).
    pub loss: Option<Vec<LossWindowSpec>>,
    /// Delivery floors asserted for publications issued in this phase.
    pub expect: Option<ExpectSpec>,
}

/// A mass-(re)subscription burst: `count` subscriptions from uniformly random
/// alive nodes, either all at the phase's first step or spread evenly over
/// the first `over` steps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubscribeSpec {
    /// Number of subscriptions to issue.
    pub count: u64,
    /// Spread the burst over this many steps (default: all at once).
    pub over: Option<u64>,
}

/// Churn knobs for one phase. `crash_every` and `crash_rate` are exclusive
/// spellings of the same schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnSpec {
    /// Crash one uniformly random alive node every this many steps.
    pub crash_every: Option<u64>,
    /// Per-step crash probability (the paper's `p`), accumulated
    /// deterministically like [`dps_sim::ChurnPlan::rate`].
    pub crash_rate: Option<f64>,
    /// One new node joins (and subscribes) every this many steps.
    pub join_every: Option<u64>,
}

/// One scheduled partition inside a phase: the cut holds for phase-relative
/// steps `[from, until)` (defaults: the whole phase) and heals itself when
/// the window closes — repeated cut/heal cycles are just several windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionWindowSpec {
    /// Window start, relative to the phase (default 0).
    pub from: Option<u64>,
    /// Window end, relative to the phase (default: the phase length).
    pub until: Option<u64>,
    /// What the cut severs.
    pub cut: CutSpec,
}

/// The shape of a partition cut.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CutSpec {
    /// Split the id space: node indices `< boundary` form side `"low"`, the
    /// rest (including nodes that join during the window) side `"high"`.
    Split {
        /// First node index of the high side.
        boundary: usize,
    },
    /// An asymmetric split: only one direction of cross-boundary traffic is
    /// cut (`"low" → "high"` when `low_to_high`, the reverse otherwise).
    SplitOneWay {
        /// First node index of the high side.
        boundary: usize,
        /// Direction of the severed traffic.
        low_to_high: bool,
    },
    /// Explicitly named sides; nodes listed in no side bridge the cut.
    Named {
        /// The sides, each naming its member node indices.
        sides: Vec<SideSpec>,
        /// Sever only `from_side → to_side` instead of all cross-side pairs.
        oneway: Option<OneWaySpec>,
    },
}

/// One named side of a [`CutSpec::Named`] partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SideSpec {
    /// Side name (for reports).
    pub name: String,
    /// Member node indices.
    pub nodes: Vec<usize>,
}

/// Direction selector of an asymmetric named cut.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OneWaySpec {
    /// Side whose outbound cross-side traffic is severed.
    pub from_side: String,
    /// Side whose inbound cross-side traffic is severed.
    pub to_side: String,
}

/// One scheduled loss window inside a phase: every link drops deliveries with
/// probability `rate` during phase-relative steps `[from, until)`. With
/// `ramp_to`, the rate ramps linearly from `rate` to `ramp_to` across the
/// window (lowered into stepped sub-windows).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LossWindowSpec {
    /// Window start, relative to the phase (default 0).
    pub from: Option<u64>,
    /// Window end, relative to the phase (default: the phase length).
    pub until: Option<u64>,
    /// Drop probability (at the window start, if ramping).
    pub rate: f64,
    /// Drop probability reached at the window end.
    pub ramp_to: Option<f64>,
}

/// Delivery floors for one phase, checked after the post-run drain over the
/// publications issued in the phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpectSpec {
    /// Floor on the raw delivered ratio (every alive matching subscriber
    /// counts, reachable or not).
    pub min_delivered: Option<f64>,
    /// Floor on the reachable-aware delivered ratio (subscribers on the far
    /// side of an absolute cut are excluded from the denominator — the fair
    /// measure while a partition holds).
    pub min_delivered_reachable: Option<f64>,
    /// Ceiling on the p99 publish→deliver latency (steps from publish to
    /// first notify) over this phase's publications. Requires the phase to
    /// publish (`publish_every`); a phase that declares the ceiling but
    /// delivers nothing fails rather than vacuously passing.
    pub max_p99: Option<f64>,
}
