//! The spec compiler: validates a [`ScenarioSpec`] and lowers it onto the
//! existing simulation APIs — phase-relative partition and loss windows
//! become scheduled [`FaultPlan`] windows on the run timeline, churn knobs
//! become [`ChurnPlan`]s, topology strings become a [`DpsConfig`] and a
//! [`Workload`].
//!
//! Validation fails loudly: an unknown scheme, a typo'd workload name,
//! overlapping exclusive windows or an out-of-range floor all return a
//! [`SpecError`] naming the offending phase instead of silently running
//! something else.

use dps::{CommKind, DpsConfig, Filter, JoinRule, NodeId, TraversalKind};
use dps_sim::{ChurnPlan, FaultPlan, LatencyModel, Step};
use dps_workload::{AttrSpec, Dist, SubShape, Workload};

use crate::spec::{
    CutSpec, LatencySpec, LossWindowSpec, PartitionWindowSpec, PhaseSpec, ScenarioSpec,
};

/// Maximum number of stepped sub-windows a loss ramp is lowered into.
const RAMP_SEGMENTS: u64 = 8;

/// A scenario spec was malformed; the message names the offending field.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn err<T>(msg: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError(msg.into()))
}

/// A validated, lowered scenario, ready for the [engine](crate::engine).
/// All windows are **timeline-relative**: step 0 is the end of overlay setup;
/// the engine shifts the fault plan by the absolute setup length at install
/// time ([`FaultPlan::shifted`]).
#[derive(Debug, Clone)]
pub struct CompiledScenario {
    /// Scenario name (from the spec).
    pub name: String,
    /// Protocol configuration the nodes run.
    pub cfg: DpsConfig,
    /// Workload subscriptions and events are drawn from.
    pub workload: Workload,
    /// Initial population.
    pub nodes: usize,
    /// Setup subscriptions per node.
    pub subs_per_node: usize,
    /// Fixed subscription filter (instead of workload draws), if declared.
    pub filter: Option<Filter>,
    /// RNG seed.
    pub seed: u64,
    /// Link-latency model, when the spec declares one (`None` keeps the
    /// engine's default unit latency — the classic cycle model).
    pub latency: Option<LatencyModel>,
    /// The lowered fault schedule (timeline-relative windows).
    pub faults: FaultPlan,
    /// The lowered phases, in timeline order.
    pub phases: Vec<CompiledPhase>,
    /// Post-run drain steps.
    pub drain: u64,
}

/// One lowered phase.
#[derive(Debug, Clone)]
pub struct CompiledPhase {
    /// Phase name.
    pub name: String,
    /// Timeline-relative start of the phase.
    pub start: Step,
    /// Phase length in steps.
    pub steps: u64,
    /// Publication cadence, if any.
    pub publish_every: Option<u64>,
    /// Phase-local steps (1-based, ascending) at which one burst
    /// subscription is issued.
    pub subscribe_at: Vec<u64>,
    /// Churn schedules evaluated at the phase-local step.
    pub churn: Vec<ChurnPlan>,
    /// Floor on the raw delivered ratio, if declared.
    pub min_delivered: Option<f64>,
    /// Floor on the reachable-aware delivered ratio, if declared.
    pub min_delivered_reachable: Option<f64>,
    /// Ceiling on the p99 publish→deliver latency, if declared.
    pub max_p99: Option<f64>,
}

/// Validates and lowers a spec. See the [module docs](self).
pub fn compile(spec: &ScenarioSpec) -> Result<CompiledScenario, SpecError> {
    if spec.name.is_empty() {
        return err("scenario name must not be empty");
    }
    // The name becomes the output filename (scenario_<name>.json) and must
    // survive shell quoting in the CI compare loop.
    if !spec
        .name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
    {
        return err(format!(
            "scenario name {:?} may only contain ASCII letters, digits, '-', '_' and '.' \
             (it names the output file)",
            spec.name
        ));
    }
    let t = &spec.topology;
    if t.nodes == 0 {
        return err(format!("{}: topology.nodes must be > 0", spec.name));
    }
    let comm = match t.scheme.as_str() {
        "leader" => CommKind::Leader,
        "epidemic" => CommKind::Epidemic,
        other => {
            return err(format!(
                "{}: unknown scheme {other:?} (expected \"leader\" or \"epidemic\")",
                spec.name
            ))
        }
    };
    let traversal = match t.traversal.as_deref() {
        None | Some("root") => TraversalKind::Root,
        Some("generic") => TraversalKind::Generic,
        Some(other) => {
            return err(format!(
                "{}: unknown traversal {other:?} (expected \"root\" or \"generic\")",
                spec.name
            ))
        }
    };
    let mut cfg = DpsConfig::named(traversal, comm);
    cfg.join_rule = match t.join_rule.as_deref() {
        None | Some("explicit") => JoinRule::Explicit,
        Some("first") => JoinRule::First,
        Some(other) => {
            return err(format!(
                "{}: unknown join_rule {other:?} (expected \"explicit\" or \"first\")",
                spec.name
            ))
        }
    };
    if let Some(k) = t.fanout {
        if k == 0 {
            return err(format!("{}: topology.fanout must be > 0", spec.name));
        }
        if comm != CommKind::Epidemic {
            return err(format!(
                "{}: topology.fanout only applies to the epidemic scheme",
                spec.name
            ));
        }
        cfg.gossip_fanout = k;
    }
    if t.workload.is_some() && t.attributes.is_some() {
        return err(format!(
            "{}: topology.workload and topology.attributes are exclusive",
            spec.name
        ));
    }
    let workload = if let Some(n_attrs) = t.attributes {
        if n_attrs == 0 {
            return err(format!("{}: topology.attributes must be > 0", spec.name));
        }
        synthetic_workload(n_attrs)
    } else {
        match t.workload.as_deref() {
            None | Some("multiplayer-game") => Workload::multiplayer_game(),
            Some("stock-exchange") => Workload::stock_exchange(),
            Some("alert-monitoring") => Workload::alert_monitoring(),
            Some(other) => {
                return err(format!(
                    "{}: unknown workload {other:?} (expected \"multiplayer-game\", \
                     \"stock-exchange\" or \"alert-monitoring\")",
                    spec.name
                ))
            }
        }
    };
    let filter = match &t.filter {
        None => None,
        Some(text) => Some(
            text.parse::<Filter>()
                .map_err(|e| SpecError(format!("{}: topology.filter {text:?}: {e}", spec.name)))?,
        ),
    };
    let latency = match &t.latency {
        None => None,
        Some(l) => Some(lower_latency(l, &spec.name)?),
    };

    if spec.phases.is_empty() {
        return err(format!(
            "{}: a scenario needs at least one phase",
            spec.name
        ));
    }
    let mut faults = FaultPlan::none();
    let mut phases = Vec::with_capacity(spec.phases.len());
    let mut start: Step = 0;
    for p in &spec.phases {
        let ctx = format!("{}: phase {:?}", spec.name, p.name);
        if p.name.is_empty() {
            return err(format!("{}: phase names must not be empty", spec.name));
        }
        if phases.iter().any(|c: &CompiledPhase| c.name == p.name) {
            return err(format!("{}: duplicate phase name {:?}", spec.name, p.name));
        }
        if p.steps == 0 {
            return err(format!("{ctx}: steps must be > 0"));
        }
        if p.publish_every == Some(0) {
            return err(format!("{ctx}: publish_every must be > 0"));
        }
        lower_partitions(&mut faults, p, start, t.nodes, &ctx)?;
        lower_loss(&mut faults, p, start, &ctx)?;
        let churn = lower_churn(p, &ctx)?;
        let subscribe_at = lower_subscribe(p, &ctx)?;
        let (min_delivered, min_delivered_reachable, max_p99) = match &p.expect {
            None => (None, None, None),
            Some(e) => {
                for floor in [e.min_delivered, e.min_delivered_reachable]
                    .into_iter()
                    .flatten()
                {
                    if !(0.0..=1.0).contains(&floor) {
                        return err(format!("{ctx}: expectation floors must be within [0, 1]"));
                    }
                }
                if let Some(ceiling) = e.max_p99 {
                    if !ceiling.is_finite() || ceiling < 1.0 {
                        return err(format!(
                            "{ctx}: expect.max_p99 must be a finite latency of >= 1 step"
                        ));
                    }
                    if p.publish_every.is_none() {
                        return err(format!(
                            "{ctx}: expect.max_p99 needs publish_every (a latency ceiling \
                             over a phase that publishes nothing would hold vacuously)"
                        ));
                    }
                }
                (e.min_delivered, e.min_delivered_reachable, e.max_p99)
            }
        };
        phases.push(CompiledPhase {
            name: p.name.clone(),
            start,
            steps: p.steps,
            publish_every: p.publish_every,
            subscribe_at,
            churn,
            min_delivered,
            min_delivered_reachable,
            max_p99,
        });
        start += p.steps;
    }

    Ok(CompiledScenario {
        name: spec.name.clone(),
        cfg,
        workload,
        nodes: t.nodes,
        subs_per_node: t.subs_per_node.unwrap_or(1),
        filter,
        seed: spec.seed,
        latency,
        faults,
        phases,
        drain: spec.drain.unwrap_or(2 * t.nodes as u64 + 200),
    })
}

/// A synthetic uniform workload over `n` numeric attributes `a0..aN`, one
/// range per attribute (the `forest_many_attrs` shape, declaratively).
fn synthetic_workload(n: usize) -> Workload {
    let attrs = (0..n)
        .map(|i| AttrSpec::Numeric {
            name: format!("a{i}"),
            domain: 1000,
            ev_dist: Dist::Uniform,
            sub_dist: Dist::Uniform,
            range_frac: 0.5,
            eq_frac: 0.0,
            gt_frac: 0.0,
        })
        .collect();
    Workload::new(
        format!("synthetic ({n} attributes)"),
        attrs,
        SubShape::OneOf,
    )
}

/// Lowers a [`LatencySpec`] onto the engine's [`LatencyModel`], re-running
/// the model's own validation so a bad range names the scenario instead of
/// panicking inside `Sim::set_latency` mid-run.
fn lower_latency(spec: &LatencySpec, name: &str) -> Result<LatencyModel, SpecError> {
    let model = match spec {
        LatencySpec::Uniform { min, max } => LatencyModel::Uniform {
            min: *min,
            max: *max,
        },
        LatencySpec::Bimodal {
            fast_min,
            fast_max,
            slow_min,
            slow_max,
            slow_weight,
        } => LatencyModel::Bimodal {
            fast: (*fast_min, *fast_max),
            slow: (*slow_min, *slow_max),
            slow_weight: *slow_weight,
        },
        LatencySpec::Classes { classes } => LatencyModel::Classed {
            classes: classes.iter().map(|c| (c.min, c.max)).collect(),
        },
    };
    model
        .validate()
        .map_err(|e| SpecError(format!("{name}: topology.latency: {e}")))?;
    Ok(model)
}

/// Resolves a phase-relative fault window to absolute engine steps,
/// validating bounds against the phase length.
///
/// Deliveries of phase step `t` happen at engine time `phase_start + t`
/// (`t = 1..=steps`; the engine increments its clock before delivering), so
/// the declared window `[from, until)` lowers to
/// `[phase_start + from + 1, phase_start + until + 1)`. That covers exactly
/// the deliveries an imperative driver covers by installing the fault after
/// `from` steps of the phase and healing it after `until` steps — in
/// particular, a whole-phase window severs the phase's final delivery step
/// and leaves the previous phase's deliveries untouched (pinned by the
/// parity test against the `partition_split`/`heal`/`set_loss` facade).
/// One consequence: a publication issued on the first step of the *next*
/// phase takes its reachability snapshot while the window is still open
/// (publish-at-`t` and deliver-at-`t+1` share an engine time), so the
/// boundary publication's accounting is conservative — far-side subscribers
/// count as unreachable even though the delivery itself is already clean.
fn window(
    from: Option<u64>,
    until: Option<u64>,
    phase_start: Step,
    phase_steps: u64,
    ctx: &str,
) -> Result<(Step, Step), SpecError> {
    let f = from.unwrap_or(0);
    let u = until.unwrap_or(phase_steps);
    if f >= u {
        return err(format!("{ctx}: empty window [{f}, {u})"));
    }
    if u > phase_steps {
        return err(format!(
            "{ctx}: window end {u} exceeds the phase length {phase_steps}"
        ));
    }
    Ok((phase_start + f + 1, phase_start + u + 1))
}

/// Rejects overlap among `[from, until)` intervals (exclusive windows).
fn check_disjoint(windows: &[(Step, Step)], what: &str, ctx: &str) -> Result<(), SpecError> {
    for (i, a) in windows.iter().enumerate() {
        for b in &windows[i + 1..] {
            if a.0 < b.1 && b.0 < a.1 {
                return err(format!(
                    "{ctx}: overlapping {what} windows (they are exclusive; \
                     merge them or stagger their intervals)"
                ));
            }
        }
    }
    Ok(())
}

fn lower_partitions(
    faults: &mut FaultPlan,
    p: &PhaseSpec,
    start: Step,
    nodes: usize,
    ctx: &str,
) -> Result<(), SpecError> {
    let Some(parts) = &p.partitions else {
        return Ok(());
    };
    let mut spans = Vec::with_capacity(parts.len());
    for PartitionWindowSpec { from, until, cut } in parts {
        let (f, u) = window(*from, *until, start, p.steps, ctx)?;
        spans.push((f, u));
        match cut {
            CutSpec::Split { boundary } | CutSpec::SplitOneWay { boundary, .. } => {
                if *boundary == 0 || *boundary >= nodes {
                    return err(format!(
                        "{ctx}: split boundary {boundary} must sit strictly inside \
                         the initial population (1..{nodes})"
                    ));
                }
            }
            CutSpec::Named { sides, oneway } => {
                if sides.len() < 2 {
                    return err(format!("{ctx}: a named cut needs at least two sides"));
                }
                for s in sides {
                    if s.nodes.is_empty() {
                        return err(format!("{ctx}: side {:?} has no nodes", s.name));
                    }
                    if let Some(bad) = s.nodes.iter().find(|i| **i >= nodes) {
                        return err(format!(
                            "{ctx}: side {:?} lists node {bad} outside the initial \
                             population 0..{nodes}",
                            s.name
                        ));
                    }
                }
                if let Some(ow) = oneway {
                    for side in [&ow.from_side, &ow.to_side] {
                        if !sides.iter().any(|s| s.name == *side) {
                            return err(format!("{ctx}: unknown partition side {side:?}"));
                        }
                    }
                    if ow.from_side == ow.to_side {
                        return err(format!("{ctx}: a one-way cut needs two distinct sides"));
                    }
                }
            }
        }
        match cut {
            CutSpec::Split { boundary } => {
                faults.add_split(f, u, *boundary);
            }
            CutSpec::SplitOneWay {
                boundary,
                low_to_high,
            } => {
                faults.add_split_oneway(f, u, *boundary, *low_to_high);
            }
            CutSpec::Named { sides, oneway } => {
                let sides: Vec<(String, Vec<NodeId>)> = sides
                    .iter()
                    .map(|s| {
                        (
                            s.name.clone(),
                            s.nodes.iter().map(|i| NodeId::from_index(*i)).collect(),
                        )
                    })
                    .collect();
                match oneway {
                    None => {
                        faults.add_partition(f, u, &sides);
                    }
                    Some(ow) => {
                        faults.add_partition_oneway(f, u, &sides, &ow.from_side, &ow.to_side);
                    }
                }
            }
        }
    }
    check_disjoint(&spans, "partition", ctx)
}

fn lower_loss(
    faults: &mut FaultPlan,
    p: &PhaseSpec,
    start: Step,
    ctx: &str,
) -> Result<(), SpecError> {
    let Some(loss) = &p.loss else {
        return Ok(());
    };
    let mut spans = Vec::with_capacity(loss.len());
    for LossWindowSpec {
        from,
        until,
        rate,
        ramp_to,
    } in loss
    {
        let (f, u) = window(*from, *until, start, p.steps, ctx)?;
        spans.push((f, u));
        for r in std::iter::once(rate).chain(ramp_to.as_ref()) {
            if !r.is_finite() || !(0.0..=1.0).contains(r) {
                return err(format!("{ctx}: loss rates must be within [0, 1]"));
            }
        }
        match ramp_to {
            None => {
                faults.set_loss_during(f, u, *rate);
            }
            Some(r1) => {
                // Lower the ramp into stepped sub-windows interpolating
                // linearly from `rate` at the start to `r1` in the last one.
                let len = u - f;
                if len < 2 {
                    return err(format!("{ctx}: a loss ramp needs a window of >= 2 steps"));
                }
                let segments = RAMP_SEGMENTS.min(len);
                for i in 0..segments {
                    let seg_from = f + i * len / segments;
                    let seg_until = f + (i + 1) * len / segments;
                    let r = rate + (r1 - rate) * i as f64 / (segments - 1) as f64;
                    faults.set_loss_during(seg_from, seg_until, r);
                }
            }
        }
    }
    check_disjoint(&spans, "loss", ctx)
}

fn lower_churn(p: &PhaseSpec, ctx: &str) -> Result<Vec<ChurnPlan>, SpecError> {
    let Some(churn) = &p.churn else {
        return Ok(Vec::new());
    };
    let mut plans = Vec::new();
    match (churn.crash_every, churn.crash_rate) {
        (Some(_), Some(_)) => {
            return err(format!(
                "{ctx}: churn.crash_every and churn.crash_rate are exclusive"
            ))
        }
        (Some(0), _) => return err(format!("{ctx}: churn.crash_every must be > 0")),
        (Some(every), None) => plans.push(ChurnPlan::storm(0, p.steps, every)),
        (None, Some(rate)) => {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return err(format!("{ctx}: churn.crash_rate must be within [0, 1]"));
            }
            plans.push(ChurnPlan::rate_during(0, p.steps, rate));
        }
        (None, None) => {}
    }
    match churn.join_every {
        Some(0) => return err(format!("{ctx}: churn.join_every must be > 0")),
        Some(every) => plans.push(ChurnPlan::joins_during(0, p.steps, every)),
        None => {}
    }
    if plans.is_empty() {
        return err(format!(
            "{ctx}: churn declared but neither crashes nor joins scheduled"
        ));
    }
    Ok(plans)
}

fn lower_subscribe(p: &PhaseSpec, ctx: &str) -> Result<Vec<u64>, SpecError> {
    let Some(s) = &p.subscribe else {
        return Ok(Vec::new());
    };
    if s.count == 0 {
        return err(format!("{ctx}: subscribe.count must be > 0"));
    }
    match s.over {
        None => Ok(vec![1; s.count as usize]),
        Some(over) => {
            if over == 0 || over > p.steps {
                return err(format!(
                    "{ctx}: subscribe.over must be within 1..={}",
                    p.steps
                ));
            }
            // Evenly spaced phase-local steps in [1, over].
            Ok((0..s.count).map(|i| 1 + i * over / s.count).collect())
        }
    }
}
