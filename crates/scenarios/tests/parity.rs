//! Parity pin: a spec-driven run must **byte-match** the equivalent run
//! hand-built on the raw `ChurnPlan` + `DpsNetwork` APIs — the declarative
//! layer is lowering, not reinterpretation. The hand-rolled side below
//! replicates, call for call, what the engine documents (setup shape, RNG
//! salts, the churn → subscribe → publish → step order) and drives the
//! faults through the **imperative facade** (`partition_split` after 10
//! phase steps, `heal` after 80, `set_loss` on/off) — so the test pins that
//! the compiler's scheduled windows cover exactly the delivery steps the
//! imperative sequence covers. Every measured quantity is compared through
//! its serialized JSON form.
//!
//! A second pin re-runs the spec on 4 execution shards and compares the rows
//! byte-for-byte — `run_scenario` honors `DPS_SHARDS` without changing a bit.

use dps::{CommKind, DpsConfig, DpsNetwork, DropReason, JoinRule, TraversalKind};
use dps_scenarios::{ScenarioRun, ScenarioSpec};
use dps_sim::{ChurnEvent, ChurnPlan};
use dps_workload::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

const SEED: u64 = 5;
const NODES: usize = 20;

/// The spec side: churn, a partition window and a loss window composed over
/// two phases.
fn spec() -> ScenarioSpec {
    ScenarioSpec::from_json_str(
        r#"{
            "name": "parity",
            "seed": 5,
            "topology": {"nodes": 20, "scheme": "epidemic", "fanout": 2},
            "phases": [
                {
                    "name": "adversity",
                    "steps": 120,
                    "publish_every": 10,
                    "churn": {"crash_every": 30},
                    "partitions": [{"from": 10, "until": 80,
                                    "cut": {"Split": {"boundary": 10}}}],
                    "loss": [{"from": 20, "until": 100, "rate": 0.1}]
                },
                {"name": "calm", "steps": 60, "publish_every": 15}
            ]
        }"#,
    )
    .unwrap()
}

/// One phase's measured quantities.
#[derive(Serialize)]
struct PhaseMeasure {
    name: String,
    published: u64,
    crashes: u64,
    steps: u64,
    delivered: f64,
    reachable: f64,
}

/// Everything the comparison looks at, serialized for the byte-match.
#[derive(Serialize)]
struct Measures {
    phases: Vec<PhaseMeasure>,
    dropped_partitioned: u64,
    dropped_loss: u64,
    alive: usize,
}

/// The hand-built side: the same scenario, written the way the pre-scenario
/// tests wrote them — explicit plans, explicit loop.
fn hand_built() -> Measures {
    let mut cfg = DpsConfig::named(TraversalKind::Root, CommKind::Epidemic).with_fanout(2);
    cfg.join_rule = JoinRule::Explicit;
    let w = Workload::multiplayer_game();
    let mut net = DpsNetwork::new_sharded(cfg, SEED, 1);
    let nodes = net.add_nodes(NODES);
    net.run(30);
    let mut sub_rng = StdRng::seed_from_u64(SEED ^ 0xabcd);
    for (i, node) in nodes.iter().enumerate() {
        let _ = net.try_subscribe(*node, w.subscription(&mut sub_rng));
        if i % 25 == 24 {
            net.run(1);
        }
    }
    net.run(20);
    net.quiesce(1500);
    net.run(150);

    let mut event_rng = StdRng::seed_from_u64(SEED ^ 0xfeed);
    let mut phases = Vec::new();
    for (name, steps, publish_every, crash_every) in [
        ("adversity", 120u64, 10u64, Some(30u64)),
        ("calm", 60, 15, None),
    ] {
        let start = net.sim().now();
        let plan = crash_every.map(|every| ChurnPlan::storm(0, steps, every));
        let mut published = 0u64;
        let mut crashes = 0u64;
        for t in 1..=steps {
            if let Some(plan) = &plan {
                for ev in plan.events_at(t) {
                    if ev == ChurnEvent::CrashRandom && net.crash_random().is_some() {
                        crashes += 1;
                    }
                }
            }
            if (t - 1) % publish_every == 0 {
                if let Some(publisher) = net.random_alive() {
                    if net.try_publish(publisher, w.event(&mut event_rng)).is_ok() {
                        published += 1;
                    }
                }
            }
            if name == "adversity" {
                // The imperative fault sequence the spec windows must match.
                // A call here runs at engine time `base + t - 1`, after this
                // iteration's publish (whose reachability snapshot must see
                // the pre-transition state, like the scheduled window does)
                // and before the `run(1)` that delivers at `base + t` — the
                // first delivery step the transition affects. The spec's
                // `[10, 80)` cut and `[20, 100)` loss windows therefore map
                // to transitions at t = 11/81 and t = 21/101.
                match t {
                    11 => {
                        net.partition_split(10);
                    }
                    21 => net.set_loss(0.1),
                    81 => {
                        net.heal();
                    }
                    101 => net.set_loss(0.0),
                    _ => {}
                }
            }
            net.run(1);
        }
        phases.push((name, start, net.sim().now(), published, crashes));
    }
    net.run(2 * NODES as u64 + 200);

    let m = net.metrics();
    Measures {
        phases: phases
            .into_iter()
            .map(|(name, start, end, published, crashes)| PhaseMeasure {
                name: name.to_string(),
                published,
                crashes,
                steps: end - start,
                delivered: net.delivered_ratio_between(start, end),
                reachable: net.delivered_ratio_reachable_between(start, end),
            })
            .collect(),
        dropped_partitioned: m.dropped_for(DropReason::Partitioned),
        dropped_loss: m.dropped_for(DropReason::Loss),
        alive: net.sim().alive_count(),
    }
}

fn spec_driven(shards: usize) -> Measures {
    let report = ScenarioRun::with_shards(&spec(), shards).unwrap().finish();
    Measures {
        phases: report
            .rows
            .iter()
            .map(|r| PhaseMeasure {
                name: r.phase.clone(),
                published: r.published,
                crashes: r.crashes,
                steps: r.until_step - r.from_step,
                delivered: r.delivered_ratio,
                reachable: r.delivered_ratio_reachable,
            })
            .collect(),
        dropped_partitioned: report.rows.iter().map(|r| r.dropped_partitioned).sum(),
        dropped_loss: report.rows.iter().map(|r| r.dropped_loss).sum(),
        alive: report.rows.last().unwrap().alive_at_end,
    }
}

#[test]
fn spec_run_byte_matches_hand_built_plans() {
    let spec_json = serde_json::to_string_pretty(&spec_driven(1)).unwrap();
    let hand_json = serde_json::to_string_pretty(&hand_built()).unwrap();
    assert_eq!(
        spec_json, hand_json,
        "the spec lowering diverged from the hand-built run"
    );
    // The adversity actually happened (the parity is not vacuous).
    let m = hand_built();
    assert!(m.dropped_partitioned > 0 && m.dropped_loss > 0);
    assert_eq!(
        m.phases[0].crashes, 4,
        "120 steps / crash_every 30 = 4 crashes"
    );
}

#[test]
fn spec_run_is_shard_invariant() {
    let s1 = serde_json::to_string_pretty(&spec_driven(1)).unwrap();
    let s4 = serde_json::to_string_pretty(&spec_driven(4)).unwrap();
    assert_eq!(s1, s4, "rows must be byte-identical across DPS_SHARDS");
}
