//! Malformed-spec rejection: the compiler and the deserializer must fail
//! loudly with messages naming the problem — never silently run something
//! other than what the file says.

use dps_scenarios::{compile, ScenarioSpec, SpecError};

/// A minimal valid spec the cases below perturb.
fn valid() -> String {
    r#"{
        "name": "probe",
        "seed": 1,
        "topology": {"nodes": 10, "scheme": "epidemic"},
        "phases": [{"name": "p", "steps": 50}]
    }"#
    .to_string()
}

fn compile_err(json: &str) -> SpecError {
    let spec = ScenarioSpec::from_json_str(json).expect("fixture must parse as JSON");
    compile(&spec).expect_err("fixture must be rejected")
}

#[test]
fn valid_fixture_compiles() {
    let spec = ScenarioSpec::from_json_str(&valid()).unwrap();
    compile(&spec).unwrap();
}

#[test]
fn rejects_unknown_scheme() {
    let e = compile_err(&valid().replace("\"epidemic\"", "\"epidemci\""));
    assert!(
        e.0.contains("unknown scheme") && e.0.contains("epidemci"),
        "{e}"
    );
}

#[test]
fn rejects_unknown_traversal_and_workload() {
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "leader", "traversal": "rotated"},
            "phases": [{"name": "p", "steps": 50}]}"#,
    );
    assert!(e.0.contains("unknown traversal"), "{e}");
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "leader", "workload": "stonks"},
            "phases": [{"name": "p", "steps": 50}]}"#,
    );
    assert!(
        e.0.contains("unknown workload") && e.0.contains("stonks"),
        "{e}"
    );
}

#[test]
fn rejects_overlapping_exclusive_partition_windows() {
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic"},
            "phases": [{"name": "p", "steps": 100, "partitions": [
                {"from": 0, "until": 60, "cut": {"Split": {"boundary": 5}}},
                {"from": 40, "until": 80, "cut": {"Split": {"boundary": 3}}}
            ]}]}"#,
    );
    assert!(e.0.contains("overlapping partition windows"), "{e}");
    // Adjacent windows are fine (heal-then-cut cycles).
    let spec = ScenarioSpec::from_json_str(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic"},
            "phases": [{"name": "p", "steps": 100, "partitions": [
                {"from": 0, "until": 40, "cut": {"Split": {"boundary": 5}}},
                {"from": 40, "until": 80, "cut": {"Split": {"boundary": 3}}}
            ]}]}"#,
    )
    .unwrap();
    compile(&spec).unwrap();
}

#[test]
fn rejects_overlapping_exclusive_loss_windows() {
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic"},
            "phases": [{"name": "p", "steps": 100, "loss": [
                {"from": 0, "until": 60, "rate": 0.1},
                {"from": 30, "until": 90, "rate": 0.2}
            ]}]}"#,
    );
    assert!(e.0.contains("overlapping loss windows"), "{e}");
}

#[test]
fn rejects_window_and_rate_abuse() {
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic"},
            "phases": [{"name": "p", "steps": 50, "loss": [{"rate": 1.5}]}]}"#,
    );
    assert!(e.0.contains("within [0, 1]"), "{e}");
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic"},
            "phases": [{"name": "p", "steps": 50,
                        "partitions": [{"from": 20, "until": 10,
                                        "cut": {"Split": {"boundary": 5}}}]}]}"#,
    );
    assert!(e.0.contains("empty window"), "{e}");
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic"},
            "phases": [{"name": "p", "steps": 50,
                        "partitions": [{"until": 60,
                                        "cut": {"Split": {"boundary": 5}}}]}]}"#,
    );
    assert!(e.0.contains("exceeds the phase length"), "{e}");
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic"},
            "phases": [{"name": "p", "steps": 50,
                        "partitions": [{"cut": {"Split": {"boundary": 10}}}]}]}"#,
    );
    assert!(e.0.contains("boundary"), "{e}");
}

#[test]
fn rejects_exclusive_churn_spellings() {
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic"},
            "phases": [{"name": "p", "steps": 50,
                        "churn": {"crash_every": 10, "crash_rate": 0.1}}]}"#,
    );
    assert!(e.0.contains("exclusive"), "{e}");
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic"},
            "phases": [{"name": "p", "steps": 50, "churn": {}}]}"#,
    );
    assert!(e.0.contains("neither crashes nor joins"), "{e}");
}

#[test]
fn rejects_structural_mistakes() {
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic"},
            "phases": []}"#,
    );
    assert!(e.0.contains("at least one phase"), "{e}");
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic"},
            "phases": [{"name": "p", "steps": 50}, {"name": "p", "steps": 10}]}"#,
    );
    assert!(e.0.contains("duplicate phase name"), "{e}");
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "leader", "fanout": 2},
            "phases": [{"name": "p", "steps": 50}]}"#,
    );
    assert!(e.0.contains("fanout"), "{e}");
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic"},
            "phases": [{"name": "p", "steps": 50,
                        "expect": {"min_delivered": 1.2}}]}"#,
    );
    assert!(e.0.contains("floors"), "{e}");
}

#[test]
fn rejects_bad_latency_models() {
    // Zero-step links are not a thing: the engine needs latency >= 1.
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic",
                         "latency": {"Uniform": {"min": 0, "max": 3}}},
            "phases": [{"name": "p", "steps": 50}]}"#,
    );
    assert!(
        e.0.contains("topology.latency") && e.0.contains(">= 1"),
        "{e}"
    );
    // Inverted ranges name the offending bounds.
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic",
                         "latency": {"Uniform": {"min": 7, "max": 2}}},
            "phases": [{"name": "p", "steps": 50}]}"#,
    );
    assert!(e.0.contains("topology.latency"), "{e}");
    // Weights are probabilities.
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic",
                         "latency": {"Bimodal": {"fast_min": 1, "fast_max": 2,
                                                 "slow_min": 4, "slow_max": 8,
                                                 "slow_weight": 1.5}}},
            "phases": [{"name": "p", "steps": 50}]}"#,
    );
    assert!(e.0.contains("topology.latency"), "{e}");
    // An empty class list would make every destination unclassifiable.
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic",
                         "latency": {"Classes": {"classes": []}}},
            "phases": [{"name": "p", "steps": 50}]}"#,
    );
    assert!(e.0.contains("topology.latency"), "{e}");
}

#[test]
fn rejects_latency_ceiling_without_publications() {
    // A p99 ceiling over a phase that never publishes would hold vacuously.
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic"},
            "phases": [{"name": "p", "steps": 50,
                        "expect": {"max_p99": 20.0}}]}"#,
    );
    assert!(
        e.0.contains("max_p99") && e.0.contains("publish_every"),
        "{e}"
    );
    // Sub-step ceilings are nonsense (latency is at least one step).
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic"},
            "phases": [{"name": "p", "steps": 50, "publish_every": 10,
                        "expect": {"max_p99": 0.5}}]}"#,
    );
    assert!(e.0.contains("max_p99"), "{e}");
}

#[test]
fn rejects_unknown_fields_and_bad_json() {
    // A typo'd key must not silently deserialize to defaults.
    let e = ScenarioSpec::from_json_str(&valid().replace("\"seed\"", "\"sede\"")).unwrap_err();
    assert!(e.0.contains("unknown field") && e.0.contains("sede"), "{e}");
    // Unknown enum variant tags name themselves.
    let e = ScenarioSpec::from_json_str(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic"},
            "phases": [{"name": "p", "steps": 50,
                        "partitions": [{"cut": {"Spilt": {"boundary": 5}}}]}]}"#,
    )
    .unwrap_err();
    assert!(
        e.0.contains("unknown variant") && e.0.contains("Spilt"),
        "{e}"
    );
    // Syntax errors carry positions.
    let e = ScenarioSpec::from_json_str("{\n  \"name\": \"x\",,\n}").unwrap_err();
    assert!(e.0.contains("line 2"), "{e}");
    // Shape errors carry the field path.
    let e = ScenarioSpec::from_json_str(&valid().replace("\"seed\": 1", "\"seed\": \"one\""))
        .unwrap_err();
    assert!(e.0.contains("seed"), "{e}");
    // A missing *required* float field is a deserialization error, not a
    // silent NaN (missing keys read as null; floats reject null).
    let e = ScenarioSpec::from_json_str(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic"},
            "phases": [{"name": "p", "steps": 50,
                        "loss": [{"from": 0, "until": 50}]}]}"#,
    )
    .unwrap_err();
    assert!(
        e.0.contains("rate") && e.0.contains("null"),
        "missing required rate must fail at parse time: {e}"
    );
}
