//! Malformed-spec rejection: the compiler and the deserializer must fail
//! loudly with messages naming the problem — never silently run something
//! other than what the file says.

use dps_scenarios::{compile, ScenarioSpec, SpecError};

/// A minimal valid spec the cases below perturb.
fn valid() -> String {
    r#"{
        "name": "probe",
        "seed": 1,
        "topology": {"nodes": 10, "scheme": "epidemic"},
        "phases": [{"name": "p", "steps": 50}]
    }"#
    .to_string()
}

fn compile_err(json: &str) -> SpecError {
    let spec = ScenarioSpec::from_json_str(json).expect("fixture must parse as JSON");
    compile(&spec).expect_err("fixture must be rejected")
}

#[test]
fn valid_fixture_compiles() {
    let spec = ScenarioSpec::from_json_str(&valid()).unwrap();
    compile(&spec).unwrap();
}

#[test]
fn rejects_unknown_scheme() {
    let e = compile_err(&valid().replace("\"epidemic\"", "\"epidemci\""));
    assert!(
        e.0.contains("unknown scheme") && e.0.contains("epidemci"),
        "{e}"
    );
}

#[test]
fn rejects_unknown_traversal_and_workload() {
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "leader", "traversal": "rotated"},
            "phases": [{"name": "p", "steps": 50}]}"#,
    );
    assert!(e.0.contains("unknown traversal"), "{e}");
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "leader", "workload": "stonks"},
            "phases": [{"name": "p", "steps": 50}]}"#,
    );
    assert!(
        e.0.contains("unknown workload") && e.0.contains("stonks"),
        "{e}"
    );
}

#[test]
fn rejects_overlapping_exclusive_partition_windows() {
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic"},
            "phases": [{"name": "p", "steps": 100, "partitions": [
                {"from": 0, "until": 60, "cut": {"Split": {"boundary": 5}}},
                {"from": 40, "until": 80, "cut": {"Split": {"boundary": 3}}}
            ]}]}"#,
    );
    assert!(e.0.contains("overlapping partition windows"), "{e}");
    // Adjacent windows are fine (heal-then-cut cycles).
    let spec = ScenarioSpec::from_json_str(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic"},
            "phases": [{"name": "p", "steps": 100, "partitions": [
                {"from": 0, "until": 40, "cut": {"Split": {"boundary": 5}}},
                {"from": 40, "until": 80, "cut": {"Split": {"boundary": 3}}}
            ]}]}"#,
    )
    .unwrap();
    compile(&spec).unwrap();
}

#[test]
fn rejects_overlapping_exclusive_loss_windows() {
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic"},
            "phases": [{"name": "p", "steps": 100, "loss": [
                {"from": 0, "until": 60, "rate": 0.1},
                {"from": 30, "until": 90, "rate": 0.2}
            ]}]}"#,
    );
    assert!(e.0.contains("overlapping loss windows"), "{e}");
}

#[test]
fn rejects_window_and_rate_abuse() {
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic"},
            "phases": [{"name": "p", "steps": 50, "loss": [{"rate": 1.5}]}]}"#,
    );
    assert!(e.0.contains("within [0, 1]"), "{e}");
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic"},
            "phases": [{"name": "p", "steps": 50,
                        "partitions": [{"from": 20, "until": 10,
                                        "cut": {"Split": {"boundary": 5}}}]}]}"#,
    );
    assert!(e.0.contains("empty window"), "{e}");
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic"},
            "phases": [{"name": "p", "steps": 50,
                        "partitions": [{"until": 60,
                                        "cut": {"Split": {"boundary": 5}}}]}]}"#,
    );
    assert!(e.0.contains("exceeds the phase length"), "{e}");
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic"},
            "phases": [{"name": "p", "steps": 50,
                        "partitions": [{"cut": {"Split": {"boundary": 10}}}]}]}"#,
    );
    assert!(e.0.contains("boundary"), "{e}");
}

#[test]
fn rejects_exclusive_churn_spellings() {
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic"},
            "phases": [{"name": "p", "steps": 50,
                        "churn": {"crash_every": 10, "crash_rate": 0.1}}]}"#,
    );
    assert!(e.0.contains("exclusive"), "{e}");
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic"},
            "phases": [{"name": "p", "steps": 50, "churn": {}}]}"#,
    );
    assert!(e.0.contains("neither crashes nor joins"), "{e}");
}

#[test]
fn rejects_structural_mistakes() {
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic"},
            "phases": []}"#,
    );
    assert!(e.0.contains("at least one phase"), "{e}");
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic"},
            "phases": [{"name": "p", "steps": 50}, {"name": "p", "steps": 10}]}"#,
    );
    assert!(e.0.contains("duplicate phase name"), "{e}");
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "leader", "fanout": 2},
            "phases": [{"name": "p", "steps": 50}]}"#,
    );
    assert!(e.0.contains("fanout"), "{e}");
    let e = compile_err(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic"},
            "phases": [{"name": "p", "steps": 50,
                        "expect": {"min_delivered": 1.2}}]}"#,
    );
    assert!(e.0.contains("floors"), "{e}");
}

#[test]
fn rejects_unknown_fields_and_bad_json() {
    // A typo'd key must not silently deserialize to defaults.
    let e = ScenarioSpec::from_json_str(&valid().replace("\"seed\"", "\"sede\"")).unwrap_err();
    assert!(e.0.contains("unknown field") && e.0.contains("sede"), "{e}");
    // Unknown enum variant tags name themselves.
    let e = ScenarioSpec::from_json_str(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic"},
            "phases": [{"name": "p", "steps": 50,
                        "partitions": [{"cut": {"Spilt": {"boundary": 5}}}]}]}"#,
    )
    .unwrap_err();
    assert!(
        e.0.contains("unknown variant") && e.0.contains("Spilt"),
        "{e}"
    );
    // Syntax errors carry positions.
    let e = ScenarioSpec::from_json_str("{\n  \"name\": \"x\",,\n}").unwrap_err();
    assert!(e.0.contains("line 2"), "{e}");
    // Shape errors carry the field path.
    let e = ScenarioSpec::from_json_str(&valid().replace("\"seed\": 1", "\"seed\": \"one\""))
        .unwrap_err();
    assert!(e.0.contains("seed"), "{e}");
    // A missing *required* float field is a deserialization error, not a
    // silent NaN (missing keys read as null; floats reject null).
    let e = ScenarioSpec::from_json_str(
        r#"{"name": "probe", "seed": 1,
            "topology": {"nodes": 10, "scheme": "epidemic"},
            "phases": [{"name": "p", "steps": 50,
                        "loss": [{"from": 0, "until": 50}]}]}"#,
    )
    .unwrap_err();
    assert!(
        e.0.contains("rate") && e.0.contains("null"),
        "missing required rate must fail at parse time: {e}"
    );
}
