//! Spec round-trip coverage: every library spec under `scenarios/` must
//! parse, re-serialize and re-parse to the same value, and the re-serialized
//! form of two representative specs is pinned byte-for-byte against golden
//! files (so the JSON surface — key names, variant tags, null handling —
//! cannot drift silently).
//!
//! To regenerate the goldens after an intentional format change:
//! `DPS_BLESS=1 cargo test -p dps-scenarios --test spec_roundtrip`.

use std::path::PathBuf;

use dps_scenarios::{compile, ScenarioSpec};

fn library_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn library_specs() -> Vec<(PathBuf, ScenarioSpec)> {
    // The main library plus the metro tier (scenarios/metro/, swept by the
    // `scenarios` bin under DPS_SCALE=metro) and the latency tier
    // (scenarios/latency/, swept by the CI latency-matrix job). Metro specs
    // are too big to *run* here, but they must parse, compile and round-trip
    // like any other.
    let mut paths: Vec<PathBuf> = [
        library_dir(),
        library_dir().join("metro"),
        library_dir().join("latency"),
    ]
    .iter()
    .flat_map(|dir| {
        std::fs::read_dir(dir)
            .unwrap_or_else(|e| panic!("{} must exist: {e}", dir.display()))
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
    })
    .collect();
    paths.sort();
    assert!(
        paths.len() >= 8,
        "the scenario library must ship at least 8 specs, found {}",
        paths.len()
    );
    paths
        .into_iter()
        .map(|p| {
            let spec = ScenarioSpec::load(&p)
                .unwrap_or_else(|e| panic!("{} must parse: {e}", p.display()));
            (p, spec)
        })
        .collect()
}

#[test]
fn every_library_spec_parses_compiles_and_round_trips() {
    for (path, spec) in library_specs() {
        let name = path.display();
        // The file stem is the scenario name (artifact naming relies on it).
        assert_eq!(
            path.file_stem().unwrap().to_str().unwrap(),
            spec.name,
            "{name}: file stem and spec name must agree"
        );
        compile(&spec).unwrap_or_else(|e| panic!("{name} must compile: {e}"));
        // Parse -> serialize -> parse must be the identity.
        let rendered = spec.to_json_string();
        let reparsed = ScenarioSpec::from_json_str(&rendered)
            .unwrap_or_else(|e| panic!("{name}: re-serialized spec must parse: {e}"));
        assert_eq!(spec, reparsed, "{name}: round trip changed the spec");
    }
}

#[test]
fn representative_specs_match_their_goldens() {
    let golden_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    for file in [
        "epidemic-partition-churn.json",
        "epidemic-loss-ramp-resubscribe.json",
        // Pins the LatencySpec JSON surface (variant tags, class objects,
        // the max_p99 expectation) against drift.
        "latency/slow-link-straggler.json",
    ] {
        let spec = ScenarioSpec::load(library_dir().join(file)).unwrap();
        let rendered = spec.to_json_string();
        let golden_path = golden_dir.join(file);
        if std::env::var("DPS_BLESS").is_ok() {
            std::fs::create_dir_all(golden_path.parent().unwrap()).unwrap();
            std::fs::write(&golden_path, &rendered).unwrap();
            continue;
        }
        let golden = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("{}: {e} (run with DPS_BLESS=1)", golden_path.display()));
        assert_eq!(
            rendered, golden,
            "{file}: re-serialization drifted from the golden file \
             (regenerate with DPS_BLESS=1 if intentional)"
        );
    }
}
