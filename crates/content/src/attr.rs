//! Attribute names, types and values.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// The name of an attribute, e.g. `"price"` or `"symbol"`.
///
/// Attribute names are interned behind an [`Arc`] so that cloning them (which the
/// overlay does constantly while routing) is a reference-count bump, not an
/// allocation.
///
/// ```
/// use dps_content::AttrName;
///
/// let a = AttrName::from("price");
/// let b: AttrName = "price".into();
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "price");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct AttrName(Arc<str>);

impl AttrName {
    /// Returns the name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for AttrName {
    fn from(s: &str) -> Self {
        AttrName(Arc::from(s))
    }
}

impl From<String> for AttrName {
    fn from(s: String) -> Self {
        AttrName(Arc::from(s))
    }
}

impl fmt::Display for AttrName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for AttrName {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// The type of an attribute: the paper's model supports numerical attributes
/// (operators `=`, `<`, `>`) and string attributes (equality plus prefix, suffix
/// and substring wildcards).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AttrType {
    /// 64-bit signed integer attribute.
    Int,
    /// UTF-8 string attribute.
    Str,
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrType::Int => f.write_str("int"),
            AttrType::Str => f.write_str("string"),
        }
    }
}

/// A concrete attribute value carried by an event, or the constant of a predicate.
///
/// ```
/// use dps_content::{AttrType, Value};
///
/// let v = Value::from(42);
/// assert_eq!(v.attr_type(), AttrType::Int);
/// let s = Value::from("abc");
/// assert_eq!(s.attr_type(), AttrType::Str);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// An integer value.
    Int(i64),
    /// A string value. Interned for cheap cloning.
    Str(Arc<str>),
}

impl Value {
    /// The type of this value.
    pub fn attr_type(&self) -> AttrType {
        match self {
            Value::Int(_) => AttrType::Int,
            Value::Str(_) => AttrType::Str,
        }
    }

    /// Returns the integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// Returns the string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_name_round_trip() {
        let n = AttrName::from("price");
        assert_eq!(n.to_string(), "price");
        assert_eq!(n.as_ref(), "price");
        assert_eq!(AttrName::from(String::from("price")), n);
    }

    #[test]
    fn value_types() {
        assert_eq!(Value::from(3).attr_type(), AttrType::Int);
        assert_eq!(Value::from("x").attr_type(), AttrType::Str);
        assert_eq!(Value::from(3).as_int(), Some(3));
        assert_eq!(Value::from(3).as_str(), None);
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from("x").as_int(), None);
    }

    #[test]
    fn value_ordering_within_type() {
        assert!(Value::from(1) < Value::from(2));
        assert!(Value::from("a") < Value::from("b"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::from(7).to_string(), "7");
        assert_eq!(Value::from("abc").to_string(), "abc");
        assert_eq!(AttrType::Int.to_string(), "int");
        assert_eq!(AttrType::Str.to_string(), "string");
    }
}
