//! Refcounted, immutable payload wrappers for zero-copy fan-out.
//!
//! One publication visits hundreds of hops (tree climb, branch descent, group
//! spread, gossip rounds, anti-entropy replays). Carrying a bare [`Event`] —
//! a heap `Vec<(AttrName, Value)>` — means every hop re-allocates the payload
//! body. [`SharedEvent`] and [`SharedFilter`] wrap the same immutable value in
//! an [`Arc`], so the body is allocated **once per publication (or
//! subscription)** and every subsequent clone is a refcount bump.
//!
//! Both wrappers are transparent stand-ins: `Deref` exposes the full read
//! surface, and `Eq`/`Ord`/`Hash`/`Display`/serde all delegate to the inner
//! value, so two `SharedEvent`s compare **structurally** (not by pointer) and
//! serialize byte-identically to the value they wrap. There is deliberately no
//! `FromStr` impl — `"a = 1".parse()` keeps inferring plain [`Event`] /
//! [`Filter`], and the explicit `.into()` at the publish/subscribe boundary
//! marks the single point where the one allocation happens.

use std::fmt;
use std::sync::Arc;

use serde::{json, Deserialize, Serialize};

use crate::{Event, Filter};

macro_rules! shared_wrapper {
    ($(#[$doc:meta])* $name:ident, $inner:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
        pub struct $name(Arc<$inner>);

        impl $name {
            /// Wraps `inner` in a refcount (the one allocation of its lifetime).
            pub fn new(inner: $inner) -> Self {
                $name(Arc::new(inner))
            }

            /// Read access to the wrapped value (also available via `Deref`).
            pub fn inner(&self) -> &$inner {
                &self.0
            }
        }

        impl std::ops::Deref for $name {
            type Target = $inner;

            fn deref(&self) -> &$inner {
                &self.0
            }
        }

        impl From<$inner> for $name {
            fn from(inner: $inner) -> Self {
                $name::new(inner)
            }
        }

        impl AsRef<$inner> for $name {
            fn as_ref(&self) -> &$inner {
                &self.0
            }
        }

        impl std::borrow::Borrow<$inner> for $name {
            fn borrow(&self) -> &$inner {
                &self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(&*self.0, f)
            }
        }

        impl Serialize for $name {
            fn to_json(&self) -> json::Value {
                self.0.to_json()
            }
        }

        impl Deserialize for $name {
            fn from_json(v: &json::Value) -> Result<Self, String> {
                $inner::from_json(v).map($name::new)
            }
        }
    };
}

shared_wrapper!(
    /// An immutable [`Event`] behind an [`Arc`]: allocate once at publish,
    /// hand a refcount bump to every hop of the fan-out.
    SharedEvent,
    Event
);

shared_wrapper!(
    /// An immutable [`Filter`] behind an [`Arc`]: allocate once at subscribe,
    /// share between the node's filter index, the oracle, and the facade
    /// registry.
    SharedFilter,
    Filter
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_is_a_refcount_bump() {
        let e = SharedEvent::new("a = 1 & b = 2".parse().unwrap());
        let f = e.clone();
        assert!(Arc::ptr_eq(&e.0, &f.0));
        assert_eq!(e, f);
    }

    #[test]
    fn eq_and_hash_are_structural() {
        use std::collections::HashSet;
        let a = SharedEvent::new("a = 1".parse().unwrap());
        let b = SharedEvent::new("a = 1".parse().unwrap());
        assert!(!Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(a, b);
        let set: HashSet<SharedEvent> = [a, b].into_iter().collect();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn deref_exposes_the_read_surface() {
        let e = SharedEvent::new("a = 4".parse().unwrap());
        assert_eq!(e.len(), 1);
        assert_eq!(e.get(&"a".into()), Some(&crate::Value::from(4)));
        let f = SharedFilter::new("a > 2 & a < 9".parse().unwrap());
        assert!(f.matches(&e));
        assert_eq!(f.predicates().len(), 2);
    }

    #[test]
    fn display_and_serde_delegate() {
        let e: Event = "a = 4".parse().unwrap();
        let s = SharedEvent::new(e.clone());
        assert_eq!(s.to_string(), e.to_string());
        assert_eq!(s.to_json(), e.to_json());
        let back = SharedEvent::from_json(&e.to_json()).unwrap();
        assert_eq!(back, s);
        let f: Filter = "a > 2".parse().unwrap();
        let sf = SharedFilter::from(f.clone());
        assert_eq!(sf.to_json(), f.to_json());
        assert_eq!(SharedFilter::from_json(&f.to_json()).unwrap(), sf);
    }
}
