//! Events: conjunctions of attribute equalities published into the system.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{AttrName, Value};

/// An event `E = (name_1 = v_1) ∧ … ∧ (name_k = v_k)`.
///
/// Attribute names within one event are unique; insertion order is irrelevant
/// (attributes are kept sorted by name so that `Eq`/`Hash` are structural).
///
/// ```
/// use dps_content::{Event, Value};
///
/// let e = Event::new([("a", Value::from(4)), ("c", Value::from("abc"))]);
/// assert_eq!(e.get(&"a".into()), Some(&Value::from(4)));
/// assert_eq!(e.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Event {
    attrs: Vec<(AttrName, Value)>,
}

impl Event {
    /// Builds an event from `(name, value)` pairs.
    ///
    /// If the same name appears several times, the last value wins (matching the
    /// conjunction-of-equalities semantics, a duplicate with a different value
    /// would make the event unsatisfiable, so we treat the input as a map).
    pub fn new<N, I>(attrs: I) -> Self
    where
        N: Into<AttrName>,
        I: IntoIterator<Item = (N, Value)>,
    {
        let mut out: Vec<(AttrName, Value)> = Vec::new();
        for (n, v) in attrs {
            let n = n.into();
            match out.binary_search_by(|(existing, _)| existing.cmp(&n)) {
                Ok(i) => out[i].1 = v,
                Err(i) => out.insert(i, (n, v)),
            }
        }
        Event { attrs: out }
    }

    /// An event with no attributes (matches only the empty filter).
    pub fn empty() -> Self {
        Event::default()
    }

    /// The value bound to `name`, if present.
    pub fn get(&self, name: &AttrName) -> Option<&Value> {
        self.attrs
            .binary_search_by(|(n, _)| n.cmp(name))
            .ok()
            .map(|i| &self.attrs[i].1)
    }

    /// Number of attribute equalities in the event.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the event carries no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&AttrName, &Value)> {
        self.attrs.iter().map(|(n, v)| (n, v))
    }

    /// Iterates over the attribute names of the event in name order.
    pub fn names(&self) -> impl Iterator<Item = &AttrName> {
        self.attrs.iter().map(|(n, _)| n)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (n, v) in &self.attrs {
            if !first {
                f.write_str(" & ")?;
            }
            first = false;
            write!(f, "{n} = {v}")?;
        }
        if first {
            f.write_str("(empty event)")?;
        }
        Ok(())
    }
}

impl<N: Into<AttrName>> FromIterator<(N, Value)> for Event {
    fn from_iter<I: IntoIterator<Item = (N, Value)>>(iter: I) -> Self {
        Event::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_order_is_irrelevant() {
        let e1 = Event::new([("b", Value::from(1)), ("a", Value::from(2))]);
        let e2 = Event::new([("a", Value::from(2)), ("b", Value::from(1))]);
        assert_eq!(e1, e2);
        let names: Vec<_> = e1.names().map(|n| n.as_str().to_owned()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn duplicate_names_last_wins() {
        let e = Event::new([("a", Value::from(1)), ("a", Value::from(2))]);
        assert_eq!(e.len(), 1);
        assert_eq!(e.get(&"a".into()), Some(&Value::from(2)));
    }

    #[test]
    fn get_and_len() {
        let e = Event::new([("a", Value::from(4)), ("c", Value::from("abc"))]);
        assert_eq!(e.get(&"a".into()), Some(&Value::from(4)));
        assert_eq!(e.get(&"b".into()), None);
        assert_eq!(e.len(), 2);
        assert!(!e.is_empty());
        assert!(Event::empty().is_empty());
    }

    #[test]
    fn display() {
        let e = Event::new([("a", Value::from(4)), ("c", Value::from("x"))]);
        assert_eq!(e.to_string(), "a = 4 & c = x");
        assert_eq!(Event::empty().to_string(), "(empty event)");
    }

    #[test]
    fn from_iterator() {
        let e: Event = vec![("a", Value::from(1))].into_iter().collect();
        assert_eq!(e.len(), 1);
    }
}
