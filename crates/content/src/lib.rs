//! Content-based publish/subscribe data model for the DPS system.
//!
//! This crate implements Section 2 of *"A Semantic Overlay for Self-\* Peer-to-Peer
//! Publish/Subscribe"* (Anceaume et al., ICDCS 2006): a finite but unbounded universe of
//! typed attributes, over which
//!
//! * a **subscription** (here [`Filter`]) is a conjunction of predicates
//!   `F = AF_1 ∧ … ∧ AF_j`, each predicate being a triple *(name, op, constant)*
//!   ([`Predicate`]);
//! * an **event** ([`Event`]) is a conjunction of equalities `E = (name_1 = v_1) ∧ …`;
//! * an event *matches* a filter iff every predicate of the filter is satisfied by a
//!   value in the event (see [`Filter::matches`]);
//! * a predicate `AF_2` is *included* in `AF_1` (`AF_2 ⊂ AF_1`, Definition 3) iff every
//!   event matching `AF_2` also matches `AF_1` (see [`Predicate::includes`]).
//!
//! The inclusion relation is the foundation of the semantic overlay: groups of similar
//! subscribers are ordered into per-attribute trees by predicate inclusion. The module
//! [`placement`] implements the paper's constraints **C1** and **C2**, which disambiguate
//! where predicates such as equalities (which are included in both `a > c` and `a < c'`
//! groups) live in the tree.
//!
//! # Example
//!
//! ```
//! use dps_content::{Event, Filter, Predicate, Value};
//!
//! # fn main() -> Result<(), dps_content::ParseError> {
//! let filter: Filter = "a > 2 & a < 20 & c = ab*".parse()?;
//! let event = Event::new([("a", Value::from(4)), ("c", Value::from("abc"))]);
//! assert!(filter.matches(&event));
//!
//! let broad: Predicate = "a > 2".parse()?;
//! let narrow: Predicate = "a > 5".parse()?;
//! assert!(broad.includes(&narrow)); // every event with a > 5 also has a > 2
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attr;
mod event;
mod filter;
mod index;
mod parse;
mod predicate;
mod shared;

pub mod placement;
#[cfg(feature = "proptest-support")]
pub mod strategies;

pub use attr::{AttrName, AttrType, Value};
pub use event::Event;
pub use filter::Filter;
pub use index::{match_mode, FilterIndex, MatchMode, MatchScratch};
pub use parse::ParseError;
pub use predicate::{Op, Predicate, TypeMismatchError};
pub use shared::{SharedEvent, SharedFilter};
