//! [`FilterIndex`]: sublinear content matching by the counting algorithm.
//!
//! The linear scan (`for every filter: Filter::matches`) is O(filters ×
//! predicates) per event — the broker hot path once subscription counts reach
//! five or six figures. The index inverts the problem: predicates are grouped
//! into **per-attribute sub-indexes** keyed so that, given one event attribute
//! value, every satisfied predicate is found without touching the unsatisfied
//! ones:
//!
//! * `Eq` / `StrEq` — hash lookups keyed by the constant;
//! * paired `Gt`+`Lt` on one attribute — the dominant shape of range
//!   subscriptions (`lo < a < hi`) — become **open intervals** in a centered
//!   interval-stab tree: a stab query reports exactly the intervals
//!   containing the event value, each worth *two* satisfied predicates, so
//!   half-satisfied ranges (inside one bound, outside the other) cost
//!   nothing instead of one wasted bump per bound;
//! * unpaired `Lt` / `Gt` — flattened `(constant, slot)` postings sorted by
//!   constant: `v < c` holds for a contiguous suffix (binary-searched),
//!   `v > c` for a contiguous prefix. A small unsorted overlay absorbs
//!   inserts and is merged back when it grows, so building stays O(n log n)
//!   while queries scan cache-friendly contiguous memory;
//! * `Prefix` — the patterns, sorted; each prefix of the event value is found
//!   by binary search (a value has at most `len + 1` prefixes);
//! * `Suffix` — the same trick on **reversed** keys: `v` ends with `c` iff
//!   `rev(v)` starts with `rev(c)`;
//! * `Contains` — a small per-attribute scan list (substring patterns admit no
//!   total order that contiguously groups the satisfied ones).
//!
//! Each satisfied predicate bumps a per-filter **counter**; a filter matches
//! the event exactly when its counter reaches its arity (its number of
//! predicates — a conjunction is satisfied iff every conjunct is). Filters
//! with no predicates always match. Counters are epoch-stamped words in a
//! [`MatchScratch`] (16-bit epoch packed with a 16-bit count, one load/store
//! per bump), so a query is allocation-free in steady state and never pays to
//! reset the previous query's counts. Matched filters are recorded in a slot
//! **bitmap**, not a list — emission walks set bits in slot order, which *is*
//! handle order while handles have only ever been inserted in ascending order
//! (every call site in this workspace; a per-index flag tracks it), so the
//! common case never sorts.
//!
//! **Determinism.** Matches are yielded sorted by handle (ties — one handle
//! inserted twice — by insertion slot), whatever the internal hash-map or
//! posting order is; every consumer therefore observes the same result
//! sequence across runs, shards and threads. The index is differential-tested
//! against the linear scan under proptest (`tests/index_differential.rs`) and
//! cross-checked in CI by running the scenario matrix under both
//! [`MatchMode`]s and comparing row JSON byte-for-byte.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, OnceLock};

use crate::{AttrName, Event, Filter, Op, SharedFilter, Value};

/// Which matcher the delivery paths use: the linear scan oracle or the
/// counting-algorithm [`FilterIndex`]. Selected process-wide by the
/// `DPS_MATCH` environment variable (see [`match_mode`]) so CI can prove the
/// two produce byte-identical scenario rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchMode {
    /// Match by scanning every filter (`Filter::matches`) — the reference
    /// semantics.
    Scan,
    /// Match through the [`FilterIndex`] (the default).
    Index,
}

impl MatchMode {
    /// Parses a `DPS_MATCH` value. `None` or the empty string mean the
    /// default ([`MatchMode::Index`]); anything other than `scan` / `index`
    /// is an error naming the offending value — a typo must abort the run,
    /// not silently fall back.
    pub fn parse(raw: Option<&str>) -> Result<Self, String> {
        match raw {
            None | Some("") => Ok(MatchMode::Index),
            Some("scan") => Ok(MatchMode::Scan),
            Some("index") => Ok(MatchMode::Index),
            Some(other) => Err(format!(
                "invalid DPS_MATCH value {other:?}: expected \"scan\" or \"index\""
            )),
        }
    }
}

/// The process-wide [`MatchMode`], read once from the `DPS_MATCH` environment
/// variable (default: [`MatchMode::Index`]).
///
/// # Panics
///
/// Panics on an invalid `DPS_MATCH` value (strict, like `DPS_SCALE` /
/// `DPS_SHARDS`: a typo aborts instead of silently mismeasuring).
pub fn match_mode() -> MatchMode {
    static MODE: OnceLock<MatchMode> = OnceLock::new();
    *MODE.get_or_init(|| {
        let raw = std::env::var("DPS_MATCH").ok();
        match MatchMode::parse(raw.as_deref()) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    })
}

/// Slot id: dense index into the slot table (reused after removals).
type SlotId = u32;

/// One live entry's filter (the handle lives in the parallel `handle_of`
/// array and the `handles` map).
#[derive(Debug, Clone)]
struct Slot {
    filter: SharedFilter,
}

/// Sentinel slot marking a tombstoned `flat` entry in [`RangePostings`]
/// (would require 2^32 live slots to collide with a real one).
const TOMBSTONE: SlotId = SlotId::MAX;

/// Flattened numeric range postings, sorted by constant, with a small
/// unsorted overlay absorbing recent inserts (merged back once it exceeds
/// `max(64, flat/16)`, keeping amortized build cost O(n log n)). For `Lt`
/// postings the satisfied set for event value `v` is the contiguous suffix
/// with constants `> v`; for `Gt` the prefix with constants `< v`.
///
/// Removal from the sorted array tombstones the entry instead of shifting
/// the tail (`Vec::remove` would make unsubscribe-heavy churn on one
/// attribute O(n²) total); tombstones are compacted at the next merge, or
/// eagerly once they exceed the same `max(64, flat/16)` bound — each
/// compaction reclaims a constant fraction, so removal stays amortized O(1)
/// modulo the binary search.
#[derive(Debug, Clone, Default)]
struct RangePostings {
    flat: Vec<(i64, SlotId)>,
    pending: Vec<(i64, SlotId)>,
    /// Tombstoned entries still in `flat`.
    dead: usize,
}

impl RangePostings {
    fn insert(&mut self, c: i64, s: SlotId) {
        self.pending.push((c, s));
        if self.pending.len() >= 64.max(self.flat.len() / 16) {
            self.compact();
            self.flat.append(&mut self.pending);
            self.flat.sort_unstable_by_key(|&(c, _)| c);
        }
    }

    fn compact(&mut self) {
        if self.dead > 0 {
            self.flat.retain(|&(_, s)| s != TOMBSTONE);
            self.dead = 0;
        }
    }

    fn remove(&mut self, c: i64, s: SlotId) {
        if let Some(i) = self.pending.iter().position(|&e| e == (c, s)) {
            self.pending.swap_remove(i);
            return;
        }
        let mut i = self.flat.partition_point(|&(fc, _)| fc < c);
        while i < self.flat.len() && self.flat[i].0 == c {
            if self.flat[i].1 == s {
                self.flat[i].1 = TOMBSTONE;
                self.dead += 1;
                if self.dead >= 64.max(self.flat.len() / 16) {
                    self.compact();
                }
                return;
            }
            i += 1;
        }
    }

    fn is_empty(&self) -> bool {
        self.flat.len() == self.dead && self.pending.is_empty()
    }
}

/// A static centered interval-stab tree over open intervals `(lo, hi)`
/// (stabbed by `v` iff `lo < v < hi`). Each node holds the intervals
/// straddling its center, sorted by `lo` ascending and by `hi` descending:
/// a stab at `v < center` reports the `by_lo` prefix with `lo < v` (every
/// stored interval already has `hi > center > v`), symmetrically for
/// `v > center` — every touched entry is a true stab, no wasted checks.
#[derive(Debug, Clone)]
struct StabTree {
    nodes: Vec<StabNode>,
    /// Root node index; `u32::MAX` when empty.
    root: u32,
}

impl Default for StabTree {
    fn default() -> Self {
        StabTree {
            nodes: Vec::new(),
            root: u32::MAX,
        }
    }
}

#[derive(Debug, Clone)]
struct StabNode {
    center: i64,
    left: u32,
    right: u32,
    /// Straddling intervals sorted by `(lo, slot)` ascending.
    by_lo: Vec<(i64, SlotId)>,
    /// The same intervals sorted by `(hi, slot)` descending.
    by_hi: Vec<(i64, SlotId)>,
}

impl StabTree {
    fn build(items: &[(i64, i64, SlotId)]) -> StabTree {
        let mut t = StabTree {
            nodes: Vec::new(),
            root: u32::MAX,
        };
        // Degenerate intervals (no integer strictly between the bounds) can
        // never be stabbed; keeping them out also guarantees the partition
        // below always makes progress.
        let live: Vec<(i64, i64, SlotId)> = items
            .iter()
            .copied()
            .filter(|&(lo, hi, _)| hi.saturating_sub(lo) >= 2)
            .collect();
        t.root = Self::build_node(&mut t.nodes, live);
        t
    }

    fn build_node(nodes: &mut Vec<StabNode>, items: Vec<(i64, i64, SlotId)>) -> u32 {
        if items.is_empty() {
            return u32::MAX;
        }
        // Center on the median of the interval midpoints. Each midpoint is
        // strictly interior (`hi >= lo + 2`, and the i128 sum cannot
        // truncate past a bound — `lo/2 + hi/2` could, landing ON `lo` for
        // odd tight spans like (3, 5) and recursing forever), so the
        // interval that produced the median straddles the center, lands in
        // `here`, and both child sets strictly shrink.
        let mut mids: Vec<i64> = items
            .iter()
            .map(|&(lo, hi, _)| ((lo as i128 + hi as i128) / 2) as i64)
            .collect();
        mids.sort_unstable();
        let center = mids[mids.len() / 2];
        let mut left = Vec::new();
        let mut right = Vec::new();
        let mut here = Vec::new();
        for it in items {
            if it.1 <= center {
                left.push(it);
            } else if it.0 >= center {
                right.push(it);
            } else {
                here.push(it);
            }
        }
        let mut by_lo: Vec<(i64, SlotId)> = here.iter().map(|&(lo, _, s)| (lo, s)).collect();
        by_lo.sort_unstable();
        let mut by_hi: Vec<(i64, SlotId)> = here.iter().map(|&(_, hi, s)| (hi, s)).collect();
        by_hi.sort_unstable_by(|a, b| b.cmp(a));
        let l = Self::build_node(nodes, left);
        let r = Self::build_node(nodes, right);
        nodes.push(StabNode {
            center,
            left: l,
            right: r,
            by_lo,
            by_hi,
        });
        (nodes.len() - 1) as u32
    }

    fn is_empty(&self) -> bool {
        self.root == u32::MAX
    }

    /// Reports the slot of every interval containing `v`, exactly once each.
    #[inline]
    fn stab(&self, v: i64, mut report: impl FnMut(SlotId)) {
        let mut cur = self.root;
        while cur != u32::MAX {
            let n = &self.nodes[cur as usize];
            if v < n.center {
                for &(lo, s) in &n.by_lo {
                    if lo >= v {
                        break;
                    }
                    report(s);
                }
                cur = n.left;
            } else if v > n.center {
                for &(hi, s) in &n.by_hi {
                    if hi <= v {
                        break;
                    }
                    report(s);
                }
                cur = n.right;
            } else {
                // v == center: every straddling interval is stabbed, and no
                // left (hi <= center) or right (lo >= center) one can be.
                for &(_, s) in &n.by_lo {
                    report(s);
                }
                return;
            }
        }
    }
}

/// Paired-range postings: open intervals `(lo, hi, slot)` in a [`StabTree`],
/// with a small pending overlay absorbing inserts (scanned linearly until
/// the next rebuild). Removal of a tree-resident interval leaves a stale
/// tree entry behind — the caller quarantines the slot (no reuse) until the
/// next global rebuild sweeps it out.
#[derive(Debug, Clone, Default)]
struct IntervalPostings {
    /// Every live interval (rebuild source of truth).
    items: Vec<(i64, i64, SlotId)>,
    /// Live intervals not yet in the tree.
    pending: Vec<(i64, i64, SlotId)>,
    tree: StabTree,
}

impl IntervalPostings {
    /// Returns true when the pending overlay outgrew its bound and the tree
    /// should be rebuilt.
    fn insert(&mut self, lo: i64, hi: i64, s: SlotId) -> bool {
        self.items.push((lo, hi, s));
        self.pending.push((lo, hi, s));
        self.pending.len() >= 64.max(self.items.len() / 16)
    }

    fn rebuild(&mut self) {
        self.tree = StabTree::build(&self.items);
        self.pending.clear();
    }

    /// Removes the interval; returns true when the static tree may retain a
    /// stale reference to `s` (the caller must quarantine the slot).
    fn remove(&mut self, lo: i64, hi: i64, s: SlotId) -> bool {
        if let Some(i) = self.items.iter().position(|&e| e == (lo, hi, s)) {
            self.items.swap_remove(i);
        }
        if let Some(i) = self.pending.iter().position(|&e| e == (lo, hi, s)) {
            self.pending.swap_remove(i);
            false
        } else {
            !self.tree.is_empty()
        }
    }

    fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// One indexable unit of a filter: a paired `lo < a < hi` interval or a
/// single predicate. The decomposition is a pure function of the predicate
/// list, so insert and remove (which re-derives it from the stored filter)
/// always agree on what was posted where.
enum Posting<'a> {
    /// `attr`, `lo`, `hi` from a `Gt(lo)` + `Lt(hi)` pair; counts **two**
    /// satisfied predicates when stabbed, zero otherwise (a half-satisfied
    /// range can never complete its conjunction, so the half-count the
    /// unpaired encoding would record is pure waste).
    Interval(&'a AttrName, i64, i64),
    Single(&'a crate::Predicate),
}

/// Pairs each `Gt` with the next unpaired `Lt` on the same attribute (and
/// vice versa), in predicate order; everything else posts singly.
fn decompose(filter: &Filter) -> Vec<Posting<'_>> {
    let preds = filter.predicates();
    let mut used = vec![false; preds.len()];
    let mut out = Vec::with_capacity(preds.len());
    for i in 0..preds.len() {
        if used[i] {
            continue;
        }
        let p = &preds[i];
        let want = match p.op() {
            Op::Gt => Op::Lt,
            Op::Lt => Op::Gt,
            _ => {
                out.push(Posting::Single(p));
                continue;
            }
        };
        let partner = (i + 1..preds.len())
            .find(|&j| !used[j] && preds[j].op() == want && preds[j].name() == p.name());
        match partner {
            Some(j) => {
                used[j] = true;
                let (Value::Int(a), Value::Int(b)) = (p.constant(), preds[j].constant()) else {
                    unreachable!("Gt/Lt predicates carry int constants")
                };
                let (lo, hi) = if p.op() == Op::Gt { (*a, *b) } else { (*b, *a) };
                out.push(Posting::Interval(p.name(), lo, hi));
            }
            None => out.push(Posting::Single(p)),
        }
    }
    out
}

/// The per-attribute sub-indexes (see the module docs in `index.rs`).
#[derive(Debug, Clone, Default)]
struct AttrIndex {
    /// `a = c` postings keyed by the constant.
    eq: HashMap<i64, Vec<SlotId>>,
    /// Paired `lo < a < hi` range postings (see [`IntervalPostings`]).
    iv: IntervalPostings,
    /// Unpaired `a < c` postings; satisfied for constants `> v`.
    lt: RangePostings,
    /// `a > c` postings; satisfied for constants `< v`.
    gt: RangePostings,
    /// `s = "c"` postings keyed by the constant.
    str_eq: HashMap<Arc<str>, Vec<SlotId>>,
    /// `s = "c*"` postings, sorted by pattern for binary search on each
    /// prefix of the event value.
    prefix: Vec<(Arc<str>, Vec<SlotId>)>,
    /// `s = "*c"` postings keyed by the **reversed** pattern, sorted, probed
    /// with prefixes of the reversed event value.
    suffix: Vec<(String, Vec<SlotId>)>,
    /// `s = "*c*"` postings: no sublinear order exists, so a scan list —
    /// bounded by the number of `Contains` patterns on this one attribute.
    contains: Vec<(Arc<str>, Vec<SlotId>)>,
}

impl AttrIndex {
    fn is_empty(&self) -> bool {
        self.eq.is_empty()
            && self.iv.is_empty()
            && self.lt.is_empty()
            && self.gt.is_empty()
            && self.str_eq.is_empty()
            && self.prefix.is_empty()
            && self.suffix.is_empty()
            && self.contains.is_empty()
    }
}

/// Reusable per-query state: packed epoch+count words per slot, the hit
/// bitmap, and a string-reversal buffer. Owning one per matching site keeps
/// queries allocation-free in steady state; a fresh default works too (the
/// first query sizes it).
#[derive(Debug, Clone, Default)]
pub struct MatchScratch {
    /// Per-slot word: `(epoch << 16) | satisfied_count`, valid when the high
    /// half equals the current epoch.
    state: Vec<u32>,
    /// Current query epoch (16-bit rolling; a wrap clears `state`).
    epoch: u32,
    /// Bitmap of slots whose count reached their arity this query.
    hits: Vec<u64>,
    /// Number of set bits in `hits`.
    hit_count: u32,
    /// Reversed event value, for the suffix sub-index.
    rev: String,
}

impl MatchScratch {
    /// Creates an empty scratch (equivalent to `Default::default()`).
    pub fn new() -> Self {
        MatchScratch::default()
    }

    fn begin(&mut self, slots: usize) {
        if self.state.len() < slots {
            self.state.resize(slots, 0);
            self.hits.resize(slots.div_ceil(64), 0);
        }
        self.hits.fill(0);
        self.hit_count = 0;
        self.epoch = (self.epoch + 1) & 0xffff;
        if self.epoch == 0 {
            // Epoch wrapped: stale stamps could collide with the new epoch.
            self.state.fill(0);
            self.epoch = 1;
        }
    }

    /// Marks `slot` as a hit (used for always-matching empty filters).
    fn set_hit(&mut self, slot: SlotId) {
        let i = slot as usize;
        let word = &mut self.hits[i >> 6];
        if *word & (1 << (i & 63)) == 0 {
            *word |= 1 << (i & 63);
            self.hit_count += 1;
        }
    }
}

/// Counts `by` satisfied predicates for `slot` (1 for a single posting, 2
/// for a stabbed interval pair); sets the hit bit when the count reaches the
/// filter's arity. The bit is set at most once: a slot's postings together
/// contribute exactly its arity when all are satisfied and strictly less
/// otherwise, and each posting bumps at most once per event, so the count
/// lands on the arity only with the final contribution. A free function over
/// split scratch fields so the per-attribute query loops borrow cleanly; one
/// load + one store on the packed state word.
#[inline]
fn bump(
    state: &mut [u32],
    hits: &mut [u64],
    hit_count: &mut u32,
    epoch: u32,
    arity: &[u32],
    slot: SlotId,
    by: u32,
) {
    let i = slot as usize;
    let w = state[i];
    let c = if w >> 16 == epoch {
        (w & 0xffff) + by
    } else {
        by
    };
    state[i] = (epoch << 16) | c;
    if c == arity[i] {
        hits[i >> 6] |= 1 << (i & 63);
        *hit_count += 1;
    }
}

/// A content-matching index over `(handle, Filter)` pairs — see the
/// module docs in `index.rs` for the structure and the counting scheme.
///
/// `H` is the caller's handle type (a subscription id, a `(node, sub)` pair,
/// a dense index…); results come back **sorted by handle**, so iteration
/// order is deterministic regardless of internal hash layouts. Handles may
/// repeat (the index is a multimap); [`FilterIndex::remove`] drops every
/// entry under the handle.
///
/// ```
/// use dps_content::{Event, Filter, FilterIndex, Value};
///
/// let mut idx: FilterIndex<u32> = FilterIndex::new();
/// idx.insert(7, "a > 2 & a < 20".parse::<Filter>().unwrap());
/// idx.insert(3, "c = ab*".parse::<Filter>().unwrap());
/// let ev = Event::new([("a", Value::from(10)), ("c", Value::from("abc"))]);
/// assert_eq!(idx.matching(&ev), vec![3, 7]); // handle order
/// idx.remove(7);
/// assert_eq!(idx.matching(&ev), vec![3]);
/// ```
#[derive(Debug, Clone)]
pub struct FilterIndex<H> {
    slots: Vec<Option<Slot>>,
    /// Arity per slot (parallel to `slots`; hot in the counting loop).
    arity: Vec<u32>,
    /// Handle per slot (parallel to `slots`; hot in hit emission — avoids
    /// touching the fat `Slot` during queries). Stale for free slots.
    handle_of: Vec<H>,
    free: Vec<SlotId>,
    /// Removed slots whose filters had tree-resident interval postings: the
    /// static stab trees may still reference them (their arity is zeroed, so
    /// stale bumps can never hit), and they must not be reused until the
    /// next [`FilterIndex::gc`] rebuilds the trees without them.
    quarantine: Vec<SlotId>,
    by_attr: HashMap<AttrName, AttrIndex>,
    /// Slots of predicate-less filters (they match every event), sorted.
    empty: Vec<SlotId>,
    /// Handle → slots, for removal and lookup.
    handles: BTreeMap<H, Vec<SlotId>>,
    /// Whether slot order and handle order coincide: true while every insert
    /// appended a fresh slot with a handle ≥ all before it. While it holds —
    /// every call site in this workspace inserts ascending subscription ids —
    /// hit emission walks the bitmap in slot order and never sorts.
    monotonic: bool,
    /// Largest handle ever inserted (tracks `monotonic`).
    max_handle: Option<H>,
    len: usize,
}

impl<H> Default for FilterIndex<H> {
    fn default() -> Self {
        FilterIndex {
            slots: Vec::new(),
            arity: Vec::new(),
            handle_of: Vec::new(),
            free: Vec::new(),
            quarantine: Vec::new(),
            by_attr: HashMap::new(),
            empty: Vec::new(),
            handles: BTreeMap::new(),
            monotonic: true,
            max_handle: None,
            len: 0,
        }
    }
}

impl<H: Copy + Ord> FilterIndex<H> {
    /// Creates an empty index.
    pub fn new() -> Self {
        FilterIndex::default()
    }

    /// Number of live `(handle, filter)` entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index holds no filters.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The first filter registered under `handle`, if any.
    pub fn get(&self, handle: H) -> Option<&Filter> {
        self.get_shared(handle).map(|f| f.inner())
    }

    /// Like [`FilterIndex::get`], but exposes the refcounted wrapper so a
    /// caller can share the stored filter without re-allocating it.
    pub fn get_shared(&self, handle: H) -> Option<&SharedFilter> {
        let slot = *self.handles.get(&handle)?.first()?;
        self.slots[slot as usize].as_ref().map(|s| &s.filter)
    }

    /// Iterates over every `(handle, filter)` entry in handle order (the
    /// linear-scan view of the index; also the `DPS_MATCH=scan` path).
    pub fn entries(&self) -> impl Iterator<Item = (H, &Filter)> + '_ {
        self.handles.iter().flat_map(move |(h, slots)| {
            slots.iter().filter_map(move |s| {
                self.slots[*s as usize]
                    .as_ref()
                    .map(|slot| (*h, slot.filter.inner()))
            })
        })
    }

    /// Registers `filter` under `handle`. Handles may repeat; every entry is
    /// matched (and [`FilterIndex::remove`]d) independently.
    ///
    /// # Panics
    ///
    /// Panics on a filter of 65536+ predicates (the packed satisfied-count
    /// is 16-bit; real filters are conjunctions of a handful).
    pub fn insert(&mut self, handle: H, filter: impl Into<SharedFilter>) {
        let filter = filter.into();
        assert!(
            filter.len() <= u16::MAX as usize,
            "FilterIndex: filter arity {} exceeds the 16-bit counting range",
            filter.len()
        );
        let slot = match self.free.pop() {
            Some(s) => {
                // Reusing a slot can put a small handle after a large one.
                self.monotonic = false;
                s
            }
            None => {
                self.slots.push(None);
                self.arity.push(0);
                self.handle_of.push(handle);
                (self.slots.len() - 1) as SlotId
            }
        };
        if self.max_handle.is_some_and(|m| handle < m) {
            self.monotonic = false;
        }
        self.max_handle = Some(self.max_handle.map_or(handle, |m| m.max(handle)));
        self.arity[slot as usize] = filter.len() as u32;
        self.handle_of[slot as usize] = handle;
        if filter.is_empty() {
            let at = self.empty.binary_search(&slot).unwrap_err();
            self.empty.insert(at, slot);
        }
        for posting in decompose(&filter) {
            let p = match posting {
                Posting::Interval(name, lo, hi) => {
                    let ai = self.by_attr.entry(name.clone()).or_default();
                    if ai.iv.insert(lo, hi, slot) {
                        ai.iv.rebuild();
                    }
                    continue;
                }
                Posting::Single(p) => p,
            };
            let ai = self.by_attr.entry(p.name().clone()).or_default();
            match (p.op(), p.constant()) {
                (Op::Eq, Value::Int(c)) => ai.eq.entry(*c).or_default().push(slot),
                (Op::Lt, Value::Int(c)) => ai.lt.insert(*c, slot),
                (Op::Gt, Value::Int(c)) => ai.gt.insert(*c, slot),
                (Op::StrEq, Value::Str(c)) => ai.str_eq.entry(c.clone()).or_default().push(slot),
                (Op::Prefix, Value::Str(c)) => {
                    match ai.prefix.binary_search_by(|(k, _)| (**k).cmp(c)) {
                        Ok(i) => ai.prefix[i].1.push(slot),
                        Err(i) => ai.prefix.insert(i, (c.clone(), vec![slot])),
                    }
                }
                (Op::Suffix, Value::Str(c)) => {
                    let rev: String = c.chars().rev().collect();
                    match ai.suffix.binary_search_by(|(k, _)| (**k).cmp(&rev)) {
                        Ok(i) => ai.suffix[i].1.push(slot),
                        Err(i) => ai.suffix.insert(i, (rev, vec![slot])),
                    }
                }
                (Op::Contains, Value::Str(c)) => {
                    match ai.contains.iter_mut().find(|(k, _)| k == c) {
                        Some((_, posts)) => posts.push(slot),
                        None => ai.contains.push((c.clone(), vec![slot])),
                    }
                }
                // Predicate construction enforces op/constant type agreement;
                // a mismatched pair cannot be represented.
                _ => unreachable!("predicate op/constant type mismatch"),
            }
        }
        self.slots[slot as usize] = Some(Slot { filter });
        self.handles.entry(handle).or_default().push(slot);
        self.len += 1;
        self.maybe_gc();
    }

    /// Rebuilds every interval tree (dropping stale entries) and returns the
    /// quarantined slots to the free list, once enough removals accumulated.
    /// Amortized: a sweep costs O(intervals log intervals) and is triggered
    /// only after `max(16, len/8)` interval-bearing removals.
    fn maybe_gc(&mut self) {
        if self.quarantine.len() < 16.max(self.len / 8) {
            return;
        }
        for ai in self.by_attr.values_mut() {
            ai.iv.rebuild();
        }
        self.free.append(&mut self.quarantine);
    }

    /// Removes **every** filter registered under `handle`; returns how many
    /// entries were dropped (0 when the handle is unknown).
    pub fn remove(&mut self, handle: H) -> usize {
        let Some(slots) = self.handles.remove(&handle) else {
            return 0;
        };
        let removed = slots.len();
        for slot in slots {
            let entry = self.slots[slot as usize]
                .take()
                .expect("handle table points at a live slot");
            if entry.filter.is_empty() {
                if let Ok(at) = self.empty.binary_search(&slot) {
                    self.empty.remove(at);
                }
            }
            // Re-derives the same decomposition `insert` posted (it is a
            // pure function of the stored predicate list).
            let mut stale = false;
            for posting in decompose(&entry.filter) {
                let p = match posting {
                    Posting::Interval(name, lo, hi) => {
                        if let Some(ai) = self.by_attr.get_mut(name) {
                            stale |= ai.iv.remove(lo, hi, slot);
                            if ai.is_empty() {
                                self.by_attr.remove(name);
                            }
                        }
                        continue;
                    }
                    Posting::Single(p) => p,
                };
                let Some(ai) = self.by_attr.get_mut(p.name()) else {
                    continue;
                };
                match (p.op(), p.constant()) {
                    (Op::Eq, Value::Int(c)) => unpost_map(&mut ai.eq, c, slot),
                    (Op::Lt, Value::Int(c)) => ai.lt.remove(*c, slot),
                    (Op::Gt, Value::Int(c)) => ai.gt.remove(*c, slot),
                    (Op::StrEq, Value::Str(c)) => {
                        if let Some(posts) = ai.str_eq.get_mut(&**c) {
                            unpost(posts, slot);
                            if posts.is_empty() {
                                ai.str_eq.remove(&**c);
                            }
                        }
                    }
                    (Op::Prefix, Value::Str(c)) => {
                        if let Ok(i) = ai.prefix.binary_search_by(|(k, _)| (**k).cmp(c)) {
                            unpost(&mut ai.prefix[i].1, slot);
                            if ai.prefix[i].1.is_empty() {
                                ai.prefix.remove(i);
                            }
                        }
                    }
                    (Op::Suffix, Value::Str(c)) => {
                        let rev: String = c.chars().rev().collect();
                        if let Ok(i) = ai.suffix.binary_search_by(|(k, _)| (**k).cmp(&rev)) {
                            unpost(&mut ai.suffix[i].1, slot);
                            if ai.suffix[i].1.is_empty() {
                                ai.suffix.remove(i);
                            }
                        }
                    }
                    (Op::Contains, Value::Str(c)) => {
                        if let Some(i) = ai.contains.iter().position(|(k, _)| k == c) {
                            unpost(&mut ai.contains[i].1, slot);
                            if ai.contains[i].1.is_empty() {
                                ai.contains.remove(i);
                            }
                        }
                    }
                    _ => unreachable!("predicate op/constant type mismatch"),
                }
                if ai.is_empty() {
                    self.by_attr.remove(p.name());
                }
            }
            if stale {
                // A stab tree still references this slot. Zero its arity so
                // stale bumps can never complete (counts start at 1), and
                // keep it out of circulation until the next gc sweep.
                self.arity[slot as usize] = 0;
                self.quarantine.push(slot);
            } else {
                self.free.push(slot);
            }
        }
        self.len -= removed;
        if self.len == 0 {
            // Nothing live: every per-attribute index (stale trees included)
            // is gone, so drop the slot table and regain the no-sort path.
            self.slots.clear();
            self.arity.clear();
            self.handle_of.clear();
            self.free.clear();
            self.quarantine.clear();
            self.monotonic = true;
            self.max_handle = None;
        } else {
            self.maybe_gc();
        }
        removed
    }

    /// Collects the handles of every filter matching `event` into `out`
    /// (cleared first), sorted by handle. The counting core: each event
    /// attribute probes its sub-indexes and bumps the counters of the
    /// satisfied predicates' filters; cost is proportional to the number of
    /// **satisfied** predicates, not the number of filters.
    pub fn matching_into(&self, event: &Event, scratch: &mut MatchScratch, out: &mut Vec<H>) {
        out.clear();
        if self.len == 0 {
            return;
        }
        self.count_hits(event, scratch);
        if scratch.hit_count == 0 {
            return;
        }
        out.reserve(scratch.hit_count as usize);
        if self.monotonic {
            // Slot order IS handle order: emit straight off the bitmap.
            for (w, word) in scratch.hits.iter().enumerate() {
                let mut bits = *word;
                while bits != 0 {
                    let slot = (w << 6) + bits.trailing_zeros() as usize;
                    out.push(self.handle_of[slot]);
                    bits &= bits - 1;
                }
            }
        } else {
            // Slot reuse or out-of-order inserts: sort by (handle, slot).
            let mut pairs: Vec<(H, SlotId)> = Vec::with_capacity(scratch.hit_count as usize);
            for (w, word) in scratch.hits.iter().enumerate() {
                let mut bits = *word;
                while bits != 0 {
                    let slot = (w << 6) + bits.trailing_zeros() as usize;
                    pairs.push((self.handle_of[slot], slot as SlotId));
                    bits &= bits - 1;
                }
            }
            pairs.sort_unstable();
            out.extend(pairs.iter().map(|(h, _)| *h));
        }
    }

    /// The handles of every filter matching `event`, sorted by handle.
    /// Convenience wrapper allocating a fresh [`MatchScratch`]; hot paths
    /// should own a scratch and call [`FilterIndex::matching_into`].
    pub fn matching(&self, event: &Event) -> Vec<H> {
        let mut scratch = MatchScratch::new();
        let mut out = Vec::new();
        self.matching_into(event, &mut scratch, &mut out);
        out
    }

    /// Whether **any** filter in the index matches `event` (the per-node
    /// delivery test: a notification fires if at least one subscription
    /// matches).
    pub fn any_match(&self, event: &Event, scratch: &mut MatchScratch) -> bool {
        if !self.empty.is_empty() {
            return true;
        }
        if self.len == 0 {
            return false;
        }
        self.count_hits(event, scratch);
        scratch.hit_count > 0
    }

    /// Runs the counting pass for `event`, leaving the matched slots in the
    /// `scratch.hits` bitmap (empty filters included).
    fn count_hits(&self, event: &Event, scratch: &mut MatchScratch) {
        scratch.begin(self.slots.len());
        for &s in &self.empty {
            scratch.set_hit(s);
        }
        let arity = &self.arity;
        // Split borrows once; the per-posting loops below stay tight.
        let MatchScratch {
            state,
            epoch,
            hits,
            hit_count,
            rev,
        } = scratch;
        let epoch = *epoch;
        for (name, value) in event.iter() {
            let Some(ai) = self.by_attr.get(name) else {
                continue;
            };
            match value {
                Value::Int(v) => {
                    if let Some(posts) = ai.eq.get(v) {
                        for &s in posts {
                            bump(state, hits, hit_count, epoch, arity, s, 1);
                        }
                    }
                    // Paired ranges: each stabbed interval is two satisfied
                    // predicates at once.
                    ai.iv
                        .tree
                        .stab(*v, |s| bump(state, hits, hit_count, epoch, arity, s, 2));
                    for &(lo, hi, s) in &ai.iv.pending {
                        if lo < *v && *v < hi {
                            bump(state, hits, hit_count, epoch, arity, s, 2);
                        }
                    }
                    // `v < c` ⟺ the constant lies in `(v, +∞)`: a suffix.
                    let lt = &ai.lt;
                    let start = lt.flat.partition_point(|&(c, _)| c <= *v);
                    for &(_, s) in &lt.flat[start..] {
                        if s != TOMBSTONE {
                            bump(state, hits, hit_count, epoch, arity, s, 1);
                        }
                    }
                    for &(c, s) in &lt.pending {
                        if c > *v {
                            bump(state, hits, hit_count, epoch, arity, s, 1);
                        }
                    }
                    // `v > c` ⟺ the constant lies in `(-∞, v)`: a prefix.
                    let gt = &ai.gt;
                    let end = gt.flat.partition_point(|&(c, _)| c < *v);
                    for &(_, s) in &gt.flat[..end] {
                        if s != TOMBSTONE {
                            bump(state, hits, hit_count, epoch, arity, s, 1);
                        }
                    }
                    for &(c, s) in &gt.pending {
                        if c < *v {
                            bump(state, hits, hit_count, epoch, arity, s, 1);
                        }
                    }
                }
                Value::Str(v) => {
                    if let Some(posts) = ai.str_eq.get(&**v) {
                        for &s in posts {
                            bump(state, hits, hit_count, epoch, arity, s, 1);
                        }
                    }
                    // Every prefix of `v` (char-boundary cuts plus `v`
                    // itself, the empty prefix included) is binary-searched
                    // in the sorted pattern list.
                    if !ai.prefix.is_empty() {
                        for p in prefixes(v) {
                            if let Ok(i) = ai.prefix.binary_search_by(|(k, _)| (**k).cmp(p)) {
                                for &s in &ai.prefix[i].1 {
                                    bump(state, hits, hit_count, epoch, arity, s, 1);
                                }
                            }
                        }
                    }
                    // Suffixes of `v` are prefixes of its reversal.
                    if !ai.suffix.is_empty() {
                        rev.clear();
                        rev.extend(v.chars().rev());
                        for p in prefixes(rev) {
                            if let Ok(i) = ai.suffix.binary_search_by(|(k, _)| (**k).cmp(p)) {
                                for &s in &ai.suffix[i].1 {
                                    bump(state, hits, hit_count, epoch, arity, s, 1);
                                }
                            }
                        }
                    }
                    for (pat, posts) in &ai.contains {
                        if v.contains(&**pat) {
                            for &s in posts {
                                bump(state, hits, hit_count, epoch, arity, s, 1);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Every prefix of `s` at char boundaries, the empty string and `s` included.
fn prefixes(s: &str) -> impl Iterator<Item = &str> {
    s.char_indices()
        .map(|(i, _)| i)
        .chain(std::iter::once(s.len()))
        .map(move |i| &s[..i])
}

/// Drops `slot` from `posts` (it appears at most once per posting list:
/// filters are duplicate-free, so one filter posts one slot per key).
fn unpost(posts: &mut Vec<SlotId>, slot: SlotId) {
    if let Some(i) = posts.iter().position(|s| *s == slot) {
        posts.swap_remove(i);
    }
}

fn unpost_map(map: &mut HashMap<i64, Vec<SlotId>>, key: &i64, slot: SlotId) {
    if let Some(posts) = map.get_mut(key) {
        unpost(posts, slot);
        if posts.is_empty() {
            map.remove(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Predicate;

    fn f(s: &str) -> Filter {
        s.parse().unwrap()
    }

    fn ev(pairs: &[(&str, Value)]) -> Event {
        Event::new(pairs.iter().map(|(n, v)| (*n, v.clone())))
    }

    #[test]
    fn counting_matches_conjunctions() {
        let mut idx: FilterIndex<u32> = FilterIndex::new();
        idx.insert(0, f("a > 2 & a < 20"));
        idx.insert(1, f("a > 2 & b > 0"));
        idx.insert(2, f("a = 4"));
        let e = ev(&[("a", Value::from(4))]);
        assert_eq!(idx.matching(&e), vec![0, 2]);
        let e = ev(&[("a", Value::from(4)), ("b", Value::from(1))]);
        assert_eq!(idx.matching(&e), vec![0, 1, 2]);
        let e = ev(&[("a", Value::from(25)), ("b", Value::from(1))]);
        assert_eq!(idx.matching(&e), vec![1]); // range on `a` excludes 0 and 2
        let e = ev(&[("b", Value::from(1))]);
        assert!(idx.matching(&e).is_empty()); // `a` absent: nothing matches
    }

    #[test]
    fn string_sub_indexes() {
        let mut idx: FilterIndex<u32> = FilterIndex::new();
        idx.insert(0, Filter::from(Predicate::str_eq("c", "abc")));
        idx.insert(1, Filter::from(Predicate::prefix("c", "ab")));
        idx.insert(2, Filter::from(Predicate::suffix("c", "bc")));
        idx.insert(3, Filter::from(Predicate::contains("c", "b")));
        idx.insert(4, Filter::from(Predicate::prefix("c", ""))); // matches any string
        let e = ev(&[("c", Value::from("abc"))]);
        assert_eq!(idx.matching(&e), vec![0, 1, 2, 3, 4]);
        let e = ev(&[("c", Value::from("zb"))]);
        assert_eq!(idx.matching(&e), vec![3, 4]);
        let e = ev(&[("c", Value::from(7))]); // wrong type: no string matches
        assert!(idx.matching(&e).is_empty());
    }

    #[test]
    fn empty_filter_always_matches() {
        let mut idx: FilterIndex<u32> = FilterIndex::new();
        idx.insert(9, Filter::all());
        assert_eq!(idx.matching(&Event::empty()), vec![9]);
        let mut scratch = MatchScratch::new();
        assert!(idx.any_match(&Event::empty(), &mut scratch));
        idx.remove(9);
        assert!(!idx.any_match(&Event::empty(), &mut scratch));
    }

    #[test]
    fn remove_drops_every_entry_under_a_handle() {
        let mut idx: FilterIndex<u32> = FilterIndex::new();
        idx.insert(1, f("a > 0"));
        idx.insert(1, f("b > 0"));
        idx.insert(2, f("a > 0"));
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.remove(1), 2);
        assert_eq!(idx.len(), 1);
        let e = ev(&[("a", Value::from(5)), ("b", Value::from(5))]);
        assert_eq!(idx.matching(&e), vec![2]);
        assert_eq!(idx.remove(1), 0);
    }

    #[test]
    fn slots_are_reused_and_entries_enumerate() {
        let mut idx: FilterIndex<u32> = FilterIndex::new();
        idx.insert(1, f("a > 0"));
        idx.insert(2, f("a > 1"));
        idx.remove(1);
        idx.insert(3, f("a > 2"));
        let entries: Vec<(u32, String)> =
            idx.entries().map(|(h, flt)| (h, flt.to_string())).collect();
        assert_eq!(
            entries,
            vec![(2, "a > 1".to_owned()), (3, "a > 2".to_owned())]
        );
        assert_eq!(idx.get(3).unwrap().to_string(), "a > 2");
        assert!(idx.get(1).is_none());
        // Slot 0 (freed by handle 1, reused by handle 3) now holds the
        // largest handle: emission must still yield handle order.
        let e = ev(&[("a", Value::from(9))]);
        assert_eq!(idx.matching(&e), vec![2, 3]);
    }

    #[test]
    fn duplicate_attribute_ranges_count_correctly() {
        // Two predicates on the same attribute must BOTH be satisfied.
        let mut idx: FilterIndex<u32> = FilterIndex::new();
        idx.insert(0, f("a > 2 & a > 5")); // equivalent to a > 5
        idx.insert(1, f("a = 3 & a = 5")); // unsatisfiable
        let e = ev(&[("a", Value::from(6))]);
        assert_eq!(idx.matching(&e), vec![0]);
        let e = ev(&[("a", Value::from(3))]);
        assert!(idx.matching(&e).is_empty());
        let e = ev(&[("a", Value::from(5))]);
        assert!(idx.matching(&e).is_empty());
    }

    #[test]
    fn yield_order_is_handle_order() {
        let mut idx: FilterIndex<i32> = FilterIndex::new();
        for h in [5, -1, 3, 0] {
            idx.insert(h, f("a > 0"));
        }
        let e = ev(&[("a", Value::from(1))]);
        assert_eq!(idx.matching(&e), vec![-1, 0, 3, 5]);
    }

    #[test]
    fn range_postings_survive_overlay_merges() {
        // Push past the pending-overlay threshold so queries exercise both
        // the flat array and the overlay, plus removals from each.
        let mut idx: FilterIndex<u32> = FilterIndex::new();
        for h in 0..200u32 {
            idx.insert(h, Filter::new([Predicate::gt("a", i64::from(h))]));
        }
        let e = ev(&[("a", Value::from(100))]);
        let got = idx.matching(&e);
        let want: Vec<u32> = (0..100).collect(); // a > c satisfied for c < 100
        assert_eq!(got, want);
        idx.remove(50);
        idx.remove(199);
        let got = idx.matching(&e);
        assert_eq!(got.len(), 99);
        assert!(!got.contains(&50));
    }

    #[test]
    fn interval_pairs_count_as_units() {
        let mut idx: FilterIndex<u32> = FilterIndex::new();
        idx.insert(0, f("a > 2 & a < 20")); // one interval posting
        idx.insert(1, f("a > 2 & a < 20 & a > 5")); // interval + single gt
        idx.insert(2, f("a > 9 & a < 5")); // degenerate: unsatisfiable
        idx.insert(3, f("a > 2 & b < 7")); // different attrs: two singles
        let e = ev(&[("a", Value::from(10)), ("b", Value::from(3))]);
        assert_eq!(idx.matching(&e), vec![0, 1, 3]);
        let e = ev(&[("a", Value::from(4))]);
        assert_eq!(idx.matching(&e), vec![0]); // 1 fails a > 5, 3 lacks b
        let e = ev(&[("a", Value::from(21)), ("b", Value::from(9))]);
        assert!(idx.matching(&e).is_empty()); // outside every range and b ≥ 7
    }

    #[test]
    fn interval_trees_survive_removal_and_slot_reuse() {
        // Enough pairs to trigger tree rebuilds, then removals leaving stale
        // tree entries, then inserts that must not resurrect them.
        let mut idx: FilterIndex<u32> = FilterIndex::new();
        for h in 0..200u32 {
            let c = i64::from(h);
            idx.insert(
                h,
                Filter::new([Predicate::gt("a", c), Predicate::lt("a", c + 10)]),
            );
        }
        let e = ev(&[("a", Value::from(100))]);
        let want: Vec<u32> = (91..100).collect(); // c < 100 < c + 10
        assert_eq!(idx.matching(&e), want);
        for h in 92..96u32 {
            idx.remove(h);
        }
        let want: Vec<u32> = (91..100).filter(|h| !(92..96).contains(h)).collect();
        assert_eq!(idx.matching(&e), want);
        // Force gc sweeps (quarantine > max(16, len/8)) and slot reuse.
        for h in 0..60u32 {
            idx.remove(h);
        }
        for h in 200..260u32 {
            let c = i64::from(h);
            idx.insert(
                h,
                Filter::new([Predicate::gt("a", c), Predicate::lt("a", c + 10)]),
            );
        }
        let got = idx.matching(&e);
        let want: Vec<u32> = (91..100).filter(|h| !(92..96).contains(h)).collect();
        assert_eq!(got, want);
        let e = ev(&[("a", Value::from(255))]);
        let want: Vec<u32> = (246..255).collect();
        assert_eq!(idx.matching(&e), want);
    }

    #[test]
    fn tight_and_negative_interval_trees_terminate() {
        // Regression: `((lo as i128 + hi as i128) / 2) as i64` truncation could put the node center
        // ON a bound (e.g. (3, 5) -> 3, (-5, -3) -> -3), so the partition
        // moved every item to one child unchanged and build_node recursed
        // until stack overflow once enough pairs forced a tree build.
        for (lo, hi, inside) in [(3i64, 5i64, 4i64), (-5, -3, -4), (-6, -2, -4)] {
            let mut idx: FilterIndex<u32> = FilterIndex::new();
            for h in 0..80u32 {
                idx.insert(
                    h,
                    Filter::new([Predicate::gt("a", lo), Predicate::lt("a", hi)]),
                );
            }
            let e = ev(&[("a", Value::from(inside))]);
            assert_eq!(idx.matching(&e), (0..80).collect::<Vec<u32>>());
            let e = ev(&[("a", Value::from(hi))]);
            assert!(idx.matching(&e).is_empty());
        }
    }

    #[test]
    fn unpaired_range_churn_compacts_tombstones() {
        // Removals from the sorted flat array tombstone in place; heavy
        // churn on one attribute must stay correct through compaction and
        // still tear the attribute index down once everything is gone.
        let mut idx: FilterIndex<u32> = FilterIndex::new();
        for h in 0..300u32 {
            idx.insert(h, Filter::new([Predicate::gt("a", i64::from(h))]));
        }
        for h in (0..300u32).filter(|h| !h.is_multiple_of(3)) {
            idx.remove(h);
        }
        let e = ev(&[("a", Value::from(200))]);
        let want: Vec<u32> = (0..200u32).filter(|h| h.is_multiple_of(3)).collect();
        assert_eq!(idx.matching(&e), want);
        for h in (0..300u32).filter(|h| h.is_multiple_of(3)) {
            idx.remove(h);
        }
        assert!(idx.is_empty());
        assert!(idx.matching(&e).is_empty());
    }

    #[test]
    fn match_mode_parses_strictly() {
        assert_eq!(MatchMode::parse(None), Ok(MatchMode::Index));
        assert_eq!(MatchMode::parse(Some("")), Ok(MatchMode::Index));
        assert_eq!(MatchMode::parse(Some("scan")), Ok(MatchMode::Scan));
        assert_eq!(MatchMode::parse(Some("index")), Ok(MatchMode::Index));
        let err = MatchMode::parse(Some("indx")).unwrap_err();
        assert!(err.contains("indx"), "{err}");
    }
}
