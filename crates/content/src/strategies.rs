//! Proptest strategies for predicates, filters and events.
//!
//! These generators are shared by the property-based test suites of this crate and
//! of the overlay crate (enable the `proptest-support` feature). They generate
//! values in a deliberately small universe (few attribute names, small constants,
//! short strings over a small alphabet) so that random predicates are frequently
//! related by inclusion and random events frequently match — the interesting cases.

use proptest::prelude::*;

use crate::{Event, Filter, Op, Predicate, Value};

/// Attribute names used by the generated universe.
pub const ATTRS: [&str; 3] = ["a", "b", "c"];

/// Strategy for attribute names out of the small universe.
pub fn attr_name() -> impl Strategy<Value = &'static str> {
    proptest::sample::select(&ATTRS[..])
}

/// Strategy for small integer constants.
pub fn int_constant() -> impl Strategy<Value = i64> {
    -20i64..=20
}

/// Strategy for short strings over the alphabet `{a, b}` (length 0..=4), so that
/// prefix/suffix/substring relations are common.
pub fn short_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(proptest::sample::select(&['a', 'b'][..]), 1..=4)
        .prop_map(|cs| cs.into_iter().collect())
}

/// Strategy for an arbitrary numeric predicate on a random attribute.
pub fn numeric_predicate() -> impl Strategy<Value = Predicate> {
    (attr_name(), int_constant(), 0u8..3).prop_map(|(n, c, op)| match op {
        0 => Predicate::lt(n, c),
        1 => Predicate::gt(n, c),
        _ => Predicate::eq(n, c),
    })
}

/// Strategy for an arbitrary string predicate on a random attribute.
pub fn string_predicate() -> impl Strategy<Value = Predicate> {
    (attr_name(), short_string(), 0u8..4).prop_map(|(n, s, op)| match op {
        0 => Predicate::str_eq(n, &s),
        1 => Predicate::prefix(n, &s),
        2 => Predicate::suffix(n, &s),
        _ => Predicate::contains(n, &s),
    })
}

/// Strategy for any predicate (numeric or string).
pub fn predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![3 => numeric_predicate(), 2 => string_predicate()]
}

/// Strategy for a filter of 1..=4 predicates.
pub fn filter() -> impl Strategy<Value = Filter> {
    proptest::collection::vec(predicate(), 1..=4).prop_map(Filter::new)
}

/// Strategy for a random value (int or short string).
pub fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        int_constant().prop_map(Value::from),
        short_string().prop_map(Value::from),
    ]
}

/// Strategy for an event assigning a random value to every attribute of the
/// universe (so any generated predicate finds its attribute present).
pub fn full_event() -> impl Strategy<Value = Event> {
    proptest::collection::vec(value(), ATTRS.len())
        .prop_map(|vs| Event::new(ATTRS.iter().copied().zip(vs)))
}

/// Strategy for an event over a random subset of the attributes.
pub fn event() -> impl Strategy<Value = Event> {
    proptest::collection::vec((attr_name(), value()), 0..=ATTRS.len()).prop_map(Event::new)
}

/// Strategy for an event whose typed values are compatible with the given
/// predicate's attribute (useful to probe matching boundaries).
pub fn typed_event_for(p: &Predicate) -> impl Strategy<Value = Event> {
    let name = p.name().clone();
    let is_int = matches!(p.op(), Op::Eq | Op::Lt | Op::Gt);
    let val = if is_int {
        int_constant().prop_map(Value::from).boxed()
    } else {
        short_string().prop_map(Value::from).boxed()
    };
    val.prop_map(move |v| Event::new([(name.as_str(), v)]))
}
