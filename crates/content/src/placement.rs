//! Canonical placement rules for predicates in a semantic tree — the paper's
//! constraints **C1** and **C2** (§3).
//!
//! Predicate inclusion alone leaves the position of some predicates ambiguous: the
//! group `a = 4` is included in `a > 2`, `a > 3`, `a < 11` and `a < 20` alike. The
//! paper resolves this with two constraints:
//!
//! * **C1** — ambiguous predicates follow a unique consistent convention. We adopt
//!   the paper's example convention: *numeric equalities are placed as successors of
//!   greater-than groups*; by extension, *string equalities follow the prefix chain*,
//!   and each wildcard family (prefix, suffix, substring) forms its own chain.
//! * **C2** — a group is placed below its **immediate** predecessor `Gm` such that no
//!   group is a predecessor of both `Gm` and the new group, i.e. the *deepest*
//!   chain group that includes it.
//!
//! The functions here are pure predicate mathematics; the distributed tree
//! maintenance that uses them lives in the `dps-overlay` crate.

use serde::{Deserialize, Serialize};

use crate::{Op, Predicate};

/// The chain (branch family) a group participates in as an *interior* node.
///
/// Within one attribute tree, interior groups of the same chain are totally ordered
/// by inclusion for `Gt`/`Lt` and tree-ordered for the string wildcards; equality
/// groups are always leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Chain {
    /// `a > c` groups.
    Gt,
    /// `a < c` groups.
    Lt,
    /// `s = "p*"` groups.
    Prefix,
    /// `s = "*p"` groups.
    Suffix,
    /// `s = "*p*"` groups.
    Contains,
}

/// The chain a predicate belongs to as an interior (branchable) group, or `None`
/// for equalities, which are always leaves.
pub fn interior_chain(op: Op) -> Option<Chain> {
    match op {
        Op::Gt => Some(Chain::Gt),
        Op::Lt => Some(Chain::Lt),
        Op::Prefix => Some(Chain::Prefix),
        Op::Suffix => Some(Chain::Suffix),
        Op::Contains => Some(Chain::Contains),
        Op::Eq | Op::StrEq => None,
    }
}

/// The chain through which a new predicate descends to find its designated
/// predecessor (convention C1).
///
/// * `a > c` descends the greater-than chain; `a < c` the less-than chain.
/// * `a = v` descends the **greater-than** chain (the paper's example convention).
/// * string equality descends the **prefix** chain.
/// * each wildcard family descends its own chain.
pub fn home_chain(op: Op) -> Chain {
    match op {
        Op::Gt | Op::Eq => Chain::Gt,
        Op::Lt => Chain::Lt,
        Op::Prefix | Op::StrEq => Chain::Prefix,
        Op::Suffix => Chain::Suffix,
        Op::Contains => Chain::Contains,
    }
}

/// Whether a group labeled `parent` may appear on the designated path from the
/// attribute root to a group labeled `target` — i.e. `parent` is in `target`'s home
/// chain *and* includes it (strictly; a group is never its own ancestor).
pub fn on_designated_path(parent: &Predicate, target: &Predicate) -> bool {
    parent != target
        && interior_chain(parent.op()) == Some(home_chain(target.op()))
        && parent.includes(target)
}

/// Among the children of one group, selects the branch a traversal looking for
/// `target` must descend into (constraint C2: go as deep as inclusion allows).
///
/// For `Gt`/`Lt` at most one child can qualify (those chains are totally ordered,
/// so two qualifying siblings would have to be nested, contradicting C2). For the
/// substring chain several incomparable children may include `target`; C1 demands a
/// deterministic convention, and we pick the **longest pattern**, breaking ties by
/// lexicographic order of the pattern.
///
/// Returns the index into `children` of the branch to follow, or `None` when the
/// current group is already the designated predecessor.
pub fn choose_branch<'a, I>(children: I, target: &Predicate) -> Option<usize>
where
    I: IntoIterator<Item = &'a Predicate>,
{
    let mut best: Option<(usize, &Predicate)> = None;
    for (i, child) in children.into_iter().enumerate() {
        if !on_designated_path(child, target) {
            continue;
        }
        best = match best {
            None => Some((i, child)),
            Some((bi, b)) => {
                if prefer(child, b) {
                    Some((i, child))
                } else {
                    Some((bi, b))
                }
            }
        };
    }
    best.map(|(i, _)| i)
}

/// Deterministic preference among two candidate branches that both include the
/// target: prefer the more specific one (deeper placement, C2); for incomparable
/// substring patterns prefer longest-then-lexicographically-smallest (C1
/// convention).
fn prefer(a: &Predicate, b: &Predicate) -> bool {
    if b.strictly_includes(a) {
        return true; // a is deeper
    }
    if a.strictly_includes(b) {
        return false;
    }
    // Incomparable (only possible in the substring chain): longest pattern first.
    let (ka, kb) = (pattern_key(a), pattern_key(b));
    ka > kb
}

fn pattern_key(p: &Predicate) -> (usize, std::cmp::Reverse<String>) {
    let s = p.constant().as_str().unwrap_or_default();
    (s.len(), std::cmp::Reverse(s.to_owned()))
}

/// Whether `child`, currently attached beneath some group, must be re-parented
/// beneath a newly created sibling group `new_group` to preserve C2.
///
/// This holds when `new_group` lies on `child`'s designated path: the new group is
/// a strictly better (deeper) predecessor than the current parent.
pub fn must_reparent(new_group: &Predicate, child: &Predicate) -> bool {
    on_designated_path(new_group, child)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Predicate {
        s.parse().unwrap()
    }

    #[test]
    fn home_chains() {
        assert_eq!(home_chain(Op::Eq), Chain::Gt);
        assert_eq!(home_chain(Op::Gt), Chain::Gt);
        assert_eq!(home_chain(Op::Lt), Chain::Lt);
        assert_eq!(home_chain(Op::StrEq), Chain::Prefix);
        assert_eq!(home_chain(Op::Prefix), Chain::Prefix);
        assert_eq!(home_chain(Op::Suffix), Chain::Suffix);
        assert_eq!(home_chain(Op::Contains), Chain::Contains);
    }

    #[test]
    fn equalities_are_leaves() {
        assert_eq!(interior_chain(Op::Eq), None);
        assert_eq!(interior_chain(Op::StrEq), None);
        assert!(interior_chain(Op::Gt).is_some());
    }

    #[test]
    fn figure2_placement_a_eq_3() {
        // Paper Figure 2: subscription a = 3 arrives; group a > 2 "is the smallest
        // possible predecessor of group a = 3" (a > 3 does not include a = 3).
        let target = p("a = 3");
        assert!(on_designated_path(&p("a > 2"), &target));
        assert!(!on_designated_path(&p("a > 3"), &target)); // 3 > 3 is false
        assert!(!on_designated_path(&p("a < 11"), &target)); // C1: equality follows Gt chain
        let children = [p("a > 2"), p("a < 4"), p("a < 20")];
        assert_eq!(choose_branch(children.iter(), &target), Some(0));
    }

    #[test]
    fn equality_descends_deepest_gt() {
        // a = 4 under the chain a>2 -> a>3: a>3 is the designated predecessor.
        let target = p("a = 4");
        assert_eq!(choose_branch([p("a > 2")].iter(), &target), Some(0));
        assert_eq!(choose_branch([p("a > 3")].iter(), &target), Some(0));
        assert_eq!(choose_branch([p("a > 4")].iter(), &target), None);
        // Sibling set with both: deeper one preferred.
        assert_eq!(
            choose_branch([p("a > 2"), p("a > 3")].iter(), &target),
            Some(1)
        );
    }

    #[test]
    fn string_equality_follows_prefix_chain() {
        let target = p("c = abc");
        assert!(on_designated_path(&p("c = ab*"), &target));
        assert!(!on_designated_path(&p("c = *bc"), &target));
        assert!(!on_designated_path(&p("c = *b*"), &target));
        let children = [p("c = *bc"), p("c = ab*")];
        assert_eq!(choose_branch(children.iter(), &target), Some(1));
    }

    #[test]
    fn substring_convention_longest_then_lex() {
        // Both *ab* and *bc* include *abc*; the longest-pattern rule needs a real
        // length difference to kick in, otherwise lexicographic order decides.
        let target = p("s = *abc*");
        let c1 = p("s = *ab*");
        let c2 = p("s = *bc*");
        assert!(on_designated_path(&c1, &target));
        assert!(on_designated_path(&c2, &target));
        // Same length: lexicographically smaller pattern wins.
        assert_eq!(
            choose_branch([c2.clone(), c1.clone()].iter(), &target),
            Some(1)
        );
        assert_eq!(choose_branch([c1, c2].iter(), &target), Some(0));
        // Longer pattern beats shorter regardless of lex order.
        let long = p("s = *zabc*");
        let target2 = p("s = *xzabc*");
        let short = p("s = *x*");
        assert_eq!(choose_branch([short, long].iter(), &target2), Some(1));
    }

    #[test]
    fn no_branch_means_create_here() {
        let target = p("a > 7");
        assert_eq!(
            choose_branch([p("a > 9"), p("a < 3")].iter(), &target),
            None
        );
        // a > 5 includes a > 7 so we descend.
        assert_eq!(choose_branch([p("a > 5")].iter(), &target), Some(0));
    }

    #[test]
    fn reparent_rule() {
        // Inserting a > 3 below a > 2 steals a > 5 and a = 4 but not a < 1 or a > 2's
        // equality a = 3.
        let new_group = p("a > 3");
        assert!(must_reparent(&new_group, &p("a > 5")));
        assert!(must_reparent(&new_group, &p("a = 4")));
        assert!(!must_reparent(&new_group, &p("a = 3")));
        assert!(!must_reparent(&new_group, &p("a < 1")));
        assert!(!must_reparent(&new_group, &p("a > 3")));
        // A new Lt group never steals equalities (C1).
        assert!(!must_reparent(&p("a < 11"), &p("a = 4")));
        assert!(must_reparent(&p("a < 11"), &p("a < 4")));
    }

    #[test]
    fn a_group_is_never_its_own_ancestor() {
        assert!(!on_designated_path(&p("a > 2"), &p("a > 2")));
    }
}
