//! Filters: conjunctions of predicates, i.e. the paper's subscriptions.

use std::collections::HashSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{AttrName, Event, Predicate};

/// A subscription filter `F = AF_1 ∧ … ∧ AF_j`.
///
/// An event matches the filter iff **every** predicate is satisfied by the event
/// (the event must carry each constrained attribute with a satisfying value).
/// Several predicates may constrain the same attribute — this is how ranges are
/// expressed (`a > 2 ∧ a < 20`).
///
/// ```
/// use dps_content::{Event, Filter, Predicate, Value};
///
/// let f = Filter::new([Predicate::gt("a", 2), Predicate::lt("a", 20)]);
/// assert!(f.matches(&Event::new([("a", Value::from(10))])));
/// assert!(!f.matches(&Event::new([("a", Value::from(25))])));
/// assert!(!f.matches(&Event::new([("b", Value::from(10))]))); // attribute absent
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Filter {
    predicates: Vec<Predicate>,
}

impl Filter {
    /// Builds a filter from its predicates. Duplicates are removed; order is kept
    /// otherwise (the first predicate is the "primary" one used by default when the
    /// overlay picks the attribute tree to join).
    pub fn new<I: IntoIterator<Item = Predicate>>(predicates: I) -> Self {
        let mut f = Filter::default();
        f.extend(predicates);
        f
    }

    /// The always-true filter (matches every event). Mostly useful in tests.
    pub fn all() -> Self {
        Filter::default()
    }

    /// The predicates of the conjunction.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// Whether the filter has no predicates (and thus matches everything).
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// Iterates over the distinct attribute names constrained by this filter, in
    /// first-appearance order.
    pub fn attributes(&self) -> Vec<&AttrName> {
        let mut seen: HashSet<&AttrName> = HashSet::with_capacity(self.predicates.len());
        self.predicates
            .iter()
            .map(|p| p.name())
            .filter(|n| seen.insert(*n))
            .collect()
    }

    /// The predicates constraining a given attribute.
    pub fn predicates_on<'a>(
        &'a self,
        name: &'a AttrName,
    ) -> impl Iterator<Item = &'a Predicate> + 'a {
        self.predicates.iter().filter(move |p| p.name() == name)
    }

    /// Tests whether `event` matches this filter: for all predicates, a
    /// corresponding matching value appears in the event (paper §2).
    pub fn matches(&self, event: &Event) -> bool {
        self.predicates
            .iter()
            .all(|p| event.get(p.name()).is_some_and(|v| p.matches_value(v)))
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for p in &self.predicates {
            if !first {
                f.write_str(" & ")?;
            }
            first = false;
            write!(f, "{p}")?;
        }
        if first {
            f.write_str("(match all)")?;
        }
        Ok(())
    }
}

impl FromIterator<Predicate> for Filter {
    fn from_iter<I: IntoIterator<Item = Predicate>>(iter: I) -> Self {
        Filter::new(iter)
    }
}

impl From<Predicate> for Filter {
    fn from(p: Predicate) -> Self {
        Filter::new([p])
    }
}

impl Extend<Predicate> for Filter {
    fn extend<I: IntoIterator<Item = Predicate>>(&mut self, iter: I) {
        // Set-backed dedup keeps construction O(n) instead of the quadratic
        // `Vec::contains` scan, while preserving first-appearance order.
        let mut seen: HashSet<Predicate> = self.predicates.iter().cloned().collect();
        for p in iter {
            if seen.insert(p.clone()) {
                self.predicates.push(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn ev(pairs: &[(&str, i64)]) -> Event {
        Event::new(pairs.iter().map(|(n, v)| (*n, Value::from(*v))))
    }

    #[test]
    fn conjunction_semantics() {
        let f = Filter::new([Predicate::gt("a", 2), Predicate::gt("b", 0)]);
        assert!(f.matches(&ev(&[("a", 3), ("b", 1)])));
        assert!(!f.matches(&ev(&[("a", 3), ("b", 0)])));
        assert!(!f.matches(&ev(&[("a", 3)]))); // b absent: predicate unsatisfied
                                               // Extra attributes in the event are fine.
        assert!(f.matches(&ev(&[("a", 3), ("b", 1), ("z", 9)])));
    }

    #[test]
    fn range_as_two_predicates() {
        let f = Filter::new([Predicate::gt("a", 2), Predicate::lt("a", 20)]);
        assert!(f.matches(&ev(&[("a", 10)])));
        assert!(!f.matches(&ev(&[("a", 2)])));
        assert!(!f.matches(&ev(&[("a", 20)])));
        assert_eq!(f.attributes().len(), 1);
        assert_eq!(f.predicates_on(&"a".into()).count(), 2);
    }

    #[test]
    fn empty_filter_matches_everything() {
        assert!(Filter::all().matches(&ev(&[("a", 1)])));
        assert!(Filter::all().matches(&Event::empty()));
        assert!(Filter::all().is_empty());
    }

    #[test]
    fn duplicates_removed() {
        let f = Filter::new([Predicate::gt("a", 2), Predicate::gt("a", 2)]);
        assert_eq!(f.len(), 1);
        let mut f2 = Filter::from(Predicate::gt("a", 2));
        f2.extend([Predicate::gt("a", 2), Predicate::lt("a", 9)]);
        assert_eq!(f2.len(), 2);
    }

    #[test]
    fn attributes_in_first_appearance_order() {
        let f = Filter::new([
            Predicate::gt("b", 3),
            Predicate::str_eq("c", "abc"),
            Predicate::lt("b", 7),
        ]);
        let names: Vec<_> = f
            .attributes()
            .iter()
            .map(|n| n.as_str().to_owned())
            .collect();
        assert_eq!(names, ["b", "c"]);
    }

    #[test]
    fn display() {
        let f = Filter::new([Predicate::gt("a", 2), Predicate::lt("a", 500)]);
        assert_eq!(f.to_string(), "a > 2 & a < 500");
        assert_eq!(Filter::all().to_string(), "(match all)");
    }
}
