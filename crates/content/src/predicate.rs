//! Predicates: the atomic constraints of content-based subscriptions.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{AttrName, AttrType, Value};

/// A predicate operator.
///
/// Numerical attributes support `{=, <, >}` (the paper, §2); string attributes
/// support equality plus prefix, suffix and substring wildcards. Range filters such
/// as `c1 < a < c2` are expressed as the conjunction of two predicates
/// (`a > c1 ∧ a < c2`) inside a [`Filter`](crate::Filter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Numeric equality `a = c`.
    Eq,
    /// Numeric strictly-less-than `a < c`.
    Lt,
    /// Numeric strictly-greater-than `a > c`.
    Gt,
    /// String equality `s = "abc"`.
    StrEq,
    /// String prefix wildcard `s = "ab*"`.
    Prefix,
    /// String suffix wildcard `s = "*bc"`.
    Suffix,
    /// String substring wildcard `s = "*b*"`.
    Contains,
}

impl Op {
    /// The attribute type this operator applies to.
    pub fn attr_type(self) -> AttrType {
        match self {
            Op::Eq | Op::Lt | Op::Gt => AttrType::Int,
            Op::StrEq | Op::Prefix | Op::Suffix | Op::Contains => AttrType::Str,
        }
    }

    /// Whether this operator is an equality (numeric or string).
    pub fn is_equality(self) -> bool {
        matches!(self, Op::Eq | Op::StrEq)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Eq | Op::StrEq => "=",
            Op::Lt => "<",
            Op::Gt => ">",
            Op::Prefix => "=^",
            Op::Suffix => "=$",
            Op::Contains => "=~",
        };
        f.write_str(s)
    }
}

/// A single attribute constraint `AF = (name, op, constant)`.
///
/// ```
/// use dps_content::{Predicate, Value};
///
/// let p = Predicate::gt("a", 2);
/// assert!(p.matches_value(&Value::from(3)));
/// assert!(!p.matches_value(&Value::from(2)));
/// assert!(p.includes(&Predicate::gt("a", 5)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Predicate {
    name: AttrName,
    op: Op,
    constant: Value,
}

impl Predicate {
    /// Creates a predicate, validating that the operator matches the constant's type.
    ///
    /// # Errors
    ///
    /// Returns [`TypeMismatchError`] when e.g. a numeric operator is paired with a
    /// string constant.
    pub fn new(
        name: impl Into<AttrName>,
        op: Op,
        constant: impl Into<Value>,
    ) -> Result<Self, TypeMismatchError> {
        let constant = constant.into();
        if op.attr_type() != constant.attr_type() {
            return Err(TypeMismatchError {
                op,
                value_type: constant.attr_type(),
            });
        }
        Ok(Predicate {
            name: name.into(),
            op,
            constant,
        })
    }

    /// Shorthand for the numeric equality predicate `name = c`.
    pub fn eq(name: impl Into<AttrName>, c: i64) -> Self {
        Predicate {
            name: name.into(),
            op: Op::Eq,
            constant: Value::Int(c),
        }
    }

    /// Shorthand for the numeric predicate `name < c`.
    pub fn lt(name: impl Into<AttrName>, c: i64) -> Self {
        Predicate {
            name: name.into(),
            op: Op::Lt,
            constant: Value::Int(c),
        }
    }

    /// Shorthand for the numeric predicate `name > c`.
    pub fn gt(name: impl Into<AttrName>, c: i64) -> Self {
        Predicate {
            name: name.into(),
            op: Op::Gt,
            constant: Value::Int(c),
        }
    }

    /// Shorthand for the string equality predicate `name = "s"`.
    pub fn str_eq(name: impl Into<AttrName>, s: &str) -> Self {
        Predicate {
            name: name.into(),
            op: Op::StrEq,
            constant: Value::from(s),
        }
    }

    /// Shorthand for the prefix predicate `name = "s*"`.
    pub fn prefix(name: impl Into<AttrName>, s: &str) -> Self {
        Predicate {
            name: name.into(),
            op: Op::Prefix,
            constant: Value::from(s),
        }
    }

    /// Shorthand for the suffix predicate `name = "*s"`.
    pub fn suffix(name: impl Into<AttrName>, s: &str) -> Self {
        Predicate {
            name: name.into(),
            op: Op::Suffix,
            constant: Value::from(s),
        }
    }

    /// Shorthand for the substring predicate `name = "*s*"`.
    pub fn contains(name: impl Into<AttrName>, s: &str) -> Self {
        Predicate {
            name: name.into(),
            op: Op::Contains,
            constant: Value::from(s),
        }
    }

    /// The attribute name this predicate constrains.
    pub fn name(&self) -> &AttrName {
        &self.name
    }

    /// The operator.
    pub fn op(&self) -> Op {
        self.op
    }

    /// The constant the attribute is compared against.
    pub fn constant(&self) -> &Value {
        &self.constant
    }

    /// Tests whether a concrete attribute value satisfies this predicate
    /// (the paper's `AV ∈ AF`, restricted to the value since names were already
    /// matched by the caller).
    ///
    /// A value of the wrong type never matches.
    pub fn matches_value(&self, v: &Value) -> bool {
        match (self.op, v, &self.constant) {
            (Op::Eq, Value::Int(v), Value::Int(c)) => v == c,
            (Op::Lt, Value::Int(v), Value::Int(c)) => v < c,
            (Op::Gt, Value::Int(v), Value::Int(c)) => v > c,
            (Op::StrEq, Value::Str(v), Value::Str(c)) => v == c,
            (Op::Prefix, Value::Str(v), Value::Str(c)) => v.starts_with(c.as_ref()),
            (Op::Suffix, Value::Str(v), Value::Str(c)) => v.ends_with(c.as_ref()),
            (Op::Contains, Value::Str(v), Value::Str(c)) => v.contains(c.as_ref()),
            _ => false,
        }
    }

    /// Predicate inclusion (Definition 3 of the paper): `other ⊂ self`, i.e. **every**
    /// value satisfying `other` also satisfies `self`.
    ///
    /// `includes` is reflexive and transitive; together with [`Predicate::matches_value`]
    /// it satisfies the soundness law (property-tested in this crate):
    /// `self.includes(other) && other.matches_value(v) ⇒ self.matches_value(v)`.
    ///
    /// Predicates on different attributes are never related.
    pub fn includes(&self, other: &Predicate) -> bool {
        if self.name != other.name {
            return false;
        }
        match (self.op, &self.constant, other.op, &other.constant) {
            // Numeric.
            (Op::Lt, Value::Int(c1), Op::Lt, Value::Int(c2)) => c2 <= c1,
            (Op::Gt, Value::Int(c1), Op::Gt, Value::Int(c2)) => c2 >= c1,
            (Op::Lt, Value::Int(c), Op::Eq, Value::Int(v)) => v < c,
            (Op::Gt, Value::Int(c), Op::Eq, Value::Int(v)) => v > c,
            (Op::Eq, Value::Int(c1), Op::Eq, Value::Int(c2)) => c1 == c2,
            // `a < c` never includes `a > c'` or vice versa: both sides are unbounded.
            (Op::Lt, _, Op::Gt, _) | (Op::Gt, _, Op::Lt, _) => false,
            // Numeric equality includes nothing but itself.
            (Op::Eq, _, Op::Lt | Op::Gt, _) => false,

            // Strings. A longer prefix is included in any of its own prefixes.
            (Op::Prefix, Value::Str(p1), Op::Prefix, Value::Str(p2)) => p2.starts_with(p1.as_ref()),
            (Op::Suffix, Value::Str(s1), Op::Suffix, Value::Str(s2)) => s2.ends_with(s1.as_ref()),
            (Op::Contains, Value::Str(c1), Op::Contains, Value::Str(c2)) => {
                c2.contains(c1.as_ref())
            }
            (Op::Prefix, Value::Str(p), Op::StrEq, Value::Str(v)) => v.starts_with(p.as_ref()),
            (Op::Suffix, Value::Str(s), Op::StrEq, Value::Str(v)) => v.ends_with(s.as_ref()),
            (Op::Contains, Value::Str(c), Op::StrEq, Value::Str(v)) => v.contains(c.as_ref()),
            (Op::StrEq, Value::Str(v1), Op::StrEq, Value::Str(v2)) => v1 == v2,
            // A substring pattern includes a prefix/suffix pattern only when every
            // string with that prefix/suffix is guaranteed to contain the pattern,
            // which holds exactly when the prefix/suffix itself contains it.
            (Op::Contains, Value::Str(c), Op::Prefix | Op::Suffix, Value::Str(p)) => {
                p.contains(c.as_ref())
            }
            // A prefix pattern can include a substring pattern only for the empty
            // prefix; we treat the empty pattern like any other, so this is covered by
            // the generic rule below (no inclusion).
            (Op::Prefix | Op::Suffix, _, Op::Contains, _) => false,
            (Op::Prefix, _, Op::Suffix, _) | (Op::Suffix, _, Op::Prefix, _) => false,
            (Op::StrEq, _, Op::Prefix | Op::Suffix | Op::Contains, _) => false,

            // Mixed numeric/string or malformed pairs.
            _ => false,
        }
    }

    /// `self` and `other` denote exactly the same set of values.
    pub fn equivalent(&self, other: &Predicate) -> bool {
        self.includes(other) && other.includes(self)
    }

    /// Strict inclusion: `other ⊂ self` but not the converse.
    pub fn strictly_includes(&self, other: &Predicate) -> bool {
        self.includes(other) && !other.includes(self)
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            Op::Prefix => write!(f, "{} = {}*", self.name, self.constant),
            Op::Suffix => write!(f, "{} = *{}", self.name, self.constant),
            Op::Contains => write!(f, "{} = *{}*", self.name, self.constant),
            Op::Eq | Op::StrEq => write!(f, "{} = {}", self.name, self.constant),
            Op::Lt => write!(f, "{} < {}", self.name, self.constant),
            Op::Gt => write!(f, "{} > {}", self.name, self.constant),
        }
    }
}

/// Error returned by [`Predicate::new`] when the operator and constant types disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeMismatchError {
    op: Op,
    value_type: AttrType,
}

impl fmt::Display for TypeMismatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "operator {:?} expects a {} constant, got {}",
            self.op,
            self.op.attr_type(),
            self.value_type
        )
    }
}

impl std::error::Error for TypeMismatchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates_types() {
        assert!(Predicate::new("a", Op::Lt, 3).is_ok());
        assert!(Predicate::new("a", Op::Lt, "x").is_err());
        assert!(Predicate::new("a", Op::Prefix, 3).is_err());
        let err = Predicate::new("a", Op::Prefix, 3).unwrap_err();
        assert!(err.to_string().contains("string"));
    }

    #[test]
    fn numeric_matching() {
        let lt = Predicate::lt("a", 10);
        assert!(lt.matches_value(&Value::from(9)));
        assert!(!lt.matches_value(&Value::from(10)));
        let gt = Predicate::gt("a", 10);
        assert!(gt.matches_value(&Value::from(11)));
        assert!(!gt.matches_value(&Value::from(10)));
        let eq = Predicate::eq("a", 10);
        assert!(eq.matches_value(&Value::from(10)));
        assert!(!eq.matches_value(&Value::from(11)));
        // Wrong type never matches.
        assert!(!lt.matches_value(&Value::from("9")));
    }

    #[test]
    fn string_matching() {
        assert!(Predicate::prefix("s", "ab").matches_value(&Value::from("abc")));
        assert!(!Predicate::prefix("s", "ab").matches_value(&Value::from("ba")));
        assert!(Predicate::suffix("s", "bc").matches_value(&Value::from("abc")));
        assert!(!Predicate::suffix("s", "bc").matches_value(&Value::from("bca")));
        assert!(Predicate::contains("s", "b").matches_value(&Value::from("abc")));
        assert!(!Predicate::contains("s", "z").matches_value(&Value::from("abc")));
        assert!(Predicate::str_eq("s", "abc").matches_value(&Value::from("abc")));
        assert!(!Predicate::str_eq("s", "abc").matches_value(&Value::from("ab")));
        assert!(!Predicate::str_eq("s", "abc").matches_value(&Value::from(1)));
    }

    #[test]
    fn numeric_inclusion() {
        // The paper's Figure 1 examples: a>5 ⊂ a>3 ⊂ a>2; a<11 ⊂ a<20.
        assert!(Predicate::gt("a", 2).includes(&Predicate::gt("a", 3)));
        assert!(Predicate::gt("a", 3).includes(&Predicate::gt("a", 5)));
        assert!(Predicate::gt("a", 2).includes(&Predicate::gt("a", 5)));
        assert!(!Predicate::gt("a", 5).includes(&Predicate::gt("a", 2)));
        assert!(Predicate::lt("a", 20).includes(&Predicate::lt("a", 11)));
        assert!(!Predicate::lt("a", 11).includes(&Predicate::lt("a", 20)));
        // a=4 ⊂ a>2, a>3, a<11, a<20 — the ambiguity C1 resolves.
        let eq4 = Predicate::eq("a", 4);
        assert!(Predicate::gt("a", 2).includes(&eq4));
        assert!(Predicate::gt("a", 3).includes(&eq4));
        assert!(Predicate::lt("a", 11).includes(&eq4));
        assert!(Predicate::lt("a", 20).includes(&eq4));
        assert!(!Predicate::gt("a", 4).includes(&eq4));
        assert!(!Predicate::lt("a", 4).includes(&eq4));
        // Opposite-direction predicates are never related.
        assert!(!Predicate::lt("a", 100).includes(&Predicate::gt("a", 99)));
        assert!(!Predicate::gt("a", 0).includes(&Predicate::lt("a", 1)));
        // Equality includes only itself.
        assert!(eq4.includes(&Predicate::eq("a", 4)));
        assert!(!eq4.includes(&Predicate::eq("a", 5)));
        assert!(!eq4.includes(&Predicate::gt("a", 4)));
    }

    #[test]
    fn inclusion_requires_same_attribute() {
        assert!(!Predicate::gt("a", 2).includes(&Predicate::gt("b", 5)));
    }

    #[test]
    fn string_inclusion() {
        // c=ab* includes c=abc (Figure 1: s5's c=abc sits below s7's c=ab*).
        assert!(Predicate::prefix("c", "ab").includes(&Predicate::str_eq("c", "abc")));
        assert!(Predicate::prefix("c", "ab").includes(&Predicate::prefix("c", "abc")));
        assert!(Predicate::prefix("c", "a").includes(&Predicate::prefix("c", "ab")));
        assert!(!Predicate::prefix("c", "ab").includes(&Predicate::prefix("c", "a")));
        assert!(Predicate::suffix("c", "c").includes(&Predicate::suffix("c", "bc")));
        assert!(Predicate::suffix("c", "bc").includes(&Predicate::str_eq("c", "abc")));
        assert!(Predicate::contains("c", "b").includes(&Predicate::contains("c", "abc")));
        assert!(Predicate::contains("c", "b").includes(&Predicate::str_eq("c", "abc")));
        // Contains includes a prefix pattern iff the prefix contains the pattern.
        assert!(Predicate::contains("c", "ab").includes(&Predicate::prefix("c", "xaby")));
        assert!(!Predicate::contains("c", "ab").includes(&Predicate::prefix("c", "b")));
        // Prefix never includes contains.
        assert!(!Predicate::prefix("c", "a").includes(&Predicate::contains("c", "a")));
        assert!(!Predicate::prefix("c", "a").includes(&Predicate::suffix("c", "a")));
    }

    #[test]
    fn strict_inclusion_and_equivalence() {
        let broad = Predicate::gt("a", 2);
        let narrow = Predicate::gt("a", 5);
        assert!(broad.strictly_includes(&narrow));
        assert!(!narrow.strictly_includes(&broad));
        assert!(!broad.strictly_includes(&broad));
        assert!(broad.equivalent(&Predicate::gt("a", 2)));
        assert!(!broad.equivalent(&narrow));
    }

    #[test]
    fn display_round_trips_visually() {
        assert_eq!(Predicate::gt("a", 2).to_string(), "a > 2");
        assert_eq!(Predicate::lt("a", 20).to_string(), "a < 20");
        assert_eq!(Predicate::eq("a", 4).to_string(), "a = 4");
        assert_eq!(Predicate::str_eq("c", "abc").to_string(), "c = abc");
        assert_eq!(Predicate::prefix("c", "ab").to_string(), "c = ab*");
        assert_eq!(Predicate::suffix("c", "bc").to_string(), "c = *bc");
        assert_eq!(Predicate::contains("c", "b").to_string(), "c = *b*");
    }
}
