//! A small textual syntax for predicates, filters and events, used pervasively by
//! the examples and tests (it mirrors the notation of the paper's Figure 1).
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! filter    := predicate ( '&' predicate )*
//! predicate := name '<' int | name '>' int | name '=' rhs
//! rhs       := int                 (numeric equality)
//!            | word                (string equality)
//!            | word '*'            (prefix)
//!            | '*' word            (suffix)
//!            | '*' word '*'        (substring)
//! event     := name '=' value ( '&' name '=' value )*
//! ```
//!
//! ```
//! use dps_content::{Filter, Predicate};
//!
//! # fn main() -> Result<(), dps_content::ParseError> {
//! let f: Filter = "a > 2 & a < 500".parse()?;
//! assert_eq!(f.len(), 2);
//! let p: Predicate = "c = ab*".parse()?;
//! assert_eq!(p.to_string(), "c = ab*");
//! # Ok(())
//! # }
//! ```

use std::fmt;
use std::str::FromStr;

use crate::{Event, Filter, Predicate, Value};

/// Error produced when parsing the textual predicate/filter/event syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    input: String,
    reason: &'static str,
}

impl ParseError {
    fn new(input: &str, reason: &'static str) -> Self {
        ParseError {
            input: input.to_owned(),
            reason,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid syntax in {:?}: {}", self.input, self.reason)
    }
}

impl std::error::Error for ParseError {}

fn parse_predicate(s: &str) -> Result<Predicate, ParseError> {
    let s = s.trim();
    for (i, ch) in s.char_indices() {
        match ch {
            '<' | '>' => {
                let name = s[..i].trim();
                let rhs = s[i + 1..].trim();
                if name.is_empty() {
                    return Err(ParseError::new(s, "missing attribute name"));
                }
                let c: i64 = rhs
                    .parse()
                    .map_err(|_| ParseError::new(s, "expected integer constant"))?;
                return Ok(if ch == '<' {
                    Predicate::lt(name, c)
                } else {
                    Predicate::gt(name, c)
                });
            }
            '=' => {
                let name = s[..i].trim();
                let rhs = s[i + 1..].trim();
                if name.is_empty() {
                    return Err(ParseError::new(s, "missing attribute name"));
                }
                if rhs.is_empty() {
                    return Err(ParseError::new(s, "missing right-hand side"));
                }
                if let Ok(c) = rhs.parse::<i64>() {
                    return Ok(Predicate::eq(name, c));
                }
                let starts = rhs.starts_with('*');
                let ends = rhs.ends_with('*') && rhs.len() > 1;
                let core = rhs.trim_matches('*');
                if core.is_empty() {
                    return Err(ParseError::new(s, "empty wildcard pattern"));
                }
                if core.contains('*') {
                    return Err(ParseError::new(s, "wildcard only allowed at the ends"));
                }
                return Ok(match (starts, ends) {
                    (true, true) => Predicate::contains(name, core),
                    (true, false) => Predicate::suffix(name, core),
                    (false, true) => Predicate::prefix(name, core),
                    (false, false) => Predicate::str_eq(name, core),
                });
            }
            _ => {}
        }
    }
    Err(ParseError::new(s, "expected one of <, >, ="))
}

impl FromStr for Predicate {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse_predicate(s)
    }
}

impl FromStr for Filter {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Ok(Filter::all());
        }
        s.split('&').map(parse_predicate).collect::<Result<_, _>>()
    }
}

impl FromStr for Event {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Ok(Event::empty());
        }
        let mut pairs = Vec::new();
        for part in s.split('&') {
            let part = part.trim();
            let eq = part
                .find('=')
                .ok_or_else(|| ParseError::new(part, "expected name = value"))?;
            let name = part[..eq].trim();
            let rhs = part[eq + 1..].trim();
            if name.is_empty() || rhs.is_empty() {
                return Err(ParseError::new(part, "expected name = value"));
            }
            let value = match rhs.parse::<i64>() {
                Ok(i) => Value::from(i),
                Err(_) => {
                    if rhs.contains('*') {
                        return Err(ParseError::new(part, "event values cannot be wildcards"));
                    }
                    Value::from(rhs)
                }
            };
            pairs.push((name, value));
        }
        Ok(Event::new(pairs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Op;

    #[test]
    fn parses_every_figure1_subscription() {
        // The twelve subscriptions s0..s11 from Figure 1 of the paper.
        let subs = [
            "a > 2 & b > 0",
            "a > 2 & a < 500",
            "a > 5 & b < 2",
            "b > 3 & c = abc",
            "a < 4 & b > 20",
            "a = 4 & c = abc",
            "a < 3 & b > 3 & b < 7",
            "b > 3 & c = ab*",
            "a > 2 & a < 20 & c = a*",
            "a < 11",
            "a > 50 & b < 5",
            "a > 3 & b < 50",
        ];
        for s in subs {
            let f: Filter = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert!(!f.is_empty(), "{s}");
        }
    }

    #[test]
    fn wildcard_forms() {
        assert_eq!("c = ab*".parse::<Predicate>().unwrap().op(), Op::Prefix);
        assert_eq!("c = *ab".parse::<Predicate>().unwrap().op(), Op::Suffix);
        assert_eq!("c = *ab*".parse::<Predicate>().unwrap().op(), Op::Contains);
        assert_eq!("c = ab".parse::<Predicate>().unwrap().op(), Op::StrEq);
        assert_eq!("c = 17".parse::<Predicate>().unwrap().op(), Op::Eq);
    }

    #[test]
    fn parse_event() {
        let e: Event = "a = 4 & c = abc".parse().unwrap();
        assert_eq!(e.get(&"a".into()), Some(&Value::from(4)));
        assert_eq!(e.get(&"c".into()), Some(&Value::from("abc")));
        assert!("".parse::<Event>().unwrap().is_empty());
    }

    #[test]
    fn errors() {
        assert!("a".parse::<Predicate>().is_err());
        assert!("< 3".parse::<Predicate>().is_err());
        assert!("a < x".parse::<Predicate>().is_err());
        assert!("a = *".parse::<Predicate>().is_err());
        assert!("a = x*y*".parse::<Predicate>().is_err());
        assert!("a".parse::<Event>().is_err());
        assert!("a = x*".parse::<Event>().is_err());
        let err = "a".parse::<Predicate>().unwrap_err();
        assert!(err.to_string().contains("expected"));
    }

    #[test]
    fn round_trip_display_parse() {
        for s in [
            "a > 2", "a < 20", "a = 4", "c = abc", "c = ab*", "c = *bc", "c = *b*",
        ] {
            let p: Predicate = s.parse().unwrap();
            let again: Predicate = p.to_string().parse().unwrap();
            assert_eq!(p, again, "{s}");
        }
    }
}
