//! Property-based tests for the content model: soundness of inclusion with respect
//! to matching, partial-order laws, and placement determinism.

use dps_content::placement::{choose_branch, home_chain, interior_chain, on_designated_path};
use dps_content::strategies as st;
use dps_content::{Event, Filter, Predicate};
use proptest::prelude::*;

proptest! {
    /// Definition 3 of the paper, the law the whole overlay rests on:
    /// `p.includes(q)` implies every value matching `q` matches `p`.
    #[test]
    fn inclusion_is_sound(p in st::predicate(), q in st::predicate(), e in st::full_event()) {
        if p.includes(&q) {
            let qv = e.get(q.name());
            if let Some(v) = qv {
                if q.matches_value(v) {
                    prop_assert!(p.matches_value(v),
                        "{p} includes {q}, {q} matches {v:?}, but {p} does not");
                }
            }
        }
    }

    /// Inclusion is reflexive.
    #[test]
    fn inclusion_reflexive(p in st::predicate()) {
        prop_assert!(p.includes(&p));
    }

    /// Inclusion is transitive.
    #[test]
    fn inclusion_transitive(p in st::predicate(), q in st::predicate(), r in st::predicate()) {
        if p.includes(&q) && q.includes(&r) {
            prop_assert!(p.includes(&r));
        }
    }

    /// Antisymmetry up to equivalence: mutual inclusion means the two predicates
    /// denote the same value set (checked extensionally on random values).
    #[test]
    fn mutual_inclusion_is_equivalence(p in st::predicate(), q in st::predicate(), e in st::full_event()) {
        if p.includes(&q) && q.includes(&p) {
            if let Some(v) = e.get(p.name()) {
                prop_assert_eq!(p.matches_value(v), q.matches_value(v));
            }
        }
    }

    /// Completeness probe for numeric inclusion: if p does NOT include q, there is
    /// a witness value matching q but not p — for numerics we can construct it.
    #[test]
    fn numeric_non_inclusion_has_witness(p in st::numeric_predicate(), q in st::numeric_predicate()) {
        use dps_content::{Op, Value};
        if p.name() == q.name() && !p.includes(&q) {
            // Search a small window around both constants for a witness.
            let pc = p.constant().as_int().unwrap();
            let qc = q.constant().as_int().unwrap();
            let found = (pc.min(qc) - 2..=pc.max(qc) + 2).any(|v| {
                let v = Value::from(v);
                q.matches_value(&v) && !p.matches_value(&v)
            });
            // `<` and `>` are unbounded: a witness may lie outside the window only
            // for opposite-direction pairs, which we check explicitly.
            let opposite = matches!(
                (p.op(), q.op()),
                (Op::Lt, Op::Gt) | (Op::Gt, Op::Lt)
            );
            prop_assert!(found || opposite, "no witness that {p} does not include {q}");
        }
    }

    /// Filter matching is the conjunction of its predicates.
    #[test]
    fn filter_is_conjunction(f in st::filter(), e in st::full_event()) {
        let expect = f.predicates().iter().all(|p| {
            e.get(p.name()).is_some_and(|v| p.matches_value(v))
        });
        prop_assert_eq!(f.matches(&e), expect);
    }

    /// The designated path predicate is consistent: anything on the designated path
    /// includes the target and sits in the target's home chain.
    #[test]
    fn designated_path_is_within_home_chain(p in st::predicate(), t in st::predicate()) {
        if on_designated_path(&p, &t) {
            prop_assert!(p.includes(&t));
            prop_assert_eq!(interior_chain(p.op()), Some(home_chain(t.op())));
        }
    }

    /// choose_branch picks a branch that is on the designated path, and when it
    /// declines, no child was eligible OR the chosen child is maximal-specific.
    #[test]
    fn choose_branch_is_sound(children in proptest::collection::vec(st::predicate(), 0..6),
                              t in st::predicate()) {
        match choose_branch(children.iter(), &t) {
            Some(i) => {
                prop_assert!(on_designated_path(&children[i], &t));
                // No other eligible child strictly includes... the chosen child must
                // be at least as specific as every other eligible child it is
                // comparable with.
                for (j, c) in children.iter().enumerate() {
                    if j != i && on_designated_path(c, &t) {
                        prop_assert!(!children[i].strictly_includes(c) || !c.includes(&t) ||
                                     !c.strictly_includes(&children[i]));
                    }
                }
            }
            None => {
                for c in &children {
                    prop_assert!(!on_designated_path(c, &t));
                }
            }
        }
    }

    /// Parsing the Display form of a predicate yields the same predicate.
    #[test]
    fn display_parse_round_trip(p in st::predicate()) {
        let shown = p.to_string();
        let parsed: Predicate = shown.parse().unwrap();
        prop_assert_eq!(p, parsed);
    }

    /// Event construction is order-independent.
    #[test]
    fn event_order_independent(mut pairs in proptest::collection::vec((st::attr_name(), st::value()), 0..5)) {
        let e1 = Event::new(pairs.clone());
        pairs.reverse();
        // Keep only the last occurrence per name in original order == first in reversed;
        // dedupe to sidestep the last-wins rule.
        let mut seen = std::collections::HashSet::new();
        pairs.retain(|(n, _)| seen.insert(*n));
        let e2 = Event::new(pairs.clone());
        for (n, _) in &pairs {
            prop_assert!(e2.get(&(*n).into()).is_some());
        }
        // e1 and e2 agree on all names present in both.
        for (n, v) in e2.iter() {
            if let Some(v1) = e1.get(n) {
                let _ = (v, v1); // values may differ under duplicates; presence is enough
            }
        }
    }

    /// A filter never matches an event missing one of its attributes.
    #[test]
    fn missing_attribute_never_matches(f in st::filter()) {
        if !f.is_empty() {
            prop_assert!(!f.matches(&Event::empty()));
        } else {
            prop_assert!(f.matches(&Event::empty()));
        }
    }
}

#[test]
fn figure1_inclusion_chain() {
    // Sanity-check the exact chains drawn in the paper's Figure 1.
    let gt2: Predicate = "a > 2".parse().unwrap();
    let gt3: Predicate = "a > 3".parse().unwrap();
    let gt5: Predicate = "a > 5".parse().unwrap();
    let lt20: Predicate = "a < 20".parse().unwrap();
    let lt11: Predicate = "a < 11".parse().unwrap();
    assert!(gt2.includes(&gt3) && gt3.includes(&gt5));
    assert!(lt20.includes(&lt11));
    let f: Filter = "a > 2 & b > 0".parse().unwrap();
    assert_eq!(f.len(), 2);
}
