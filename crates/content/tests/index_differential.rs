//! Differential tests: [`FilterIndex`] against the linear-scan oracle
//! (`Filter::matches`). The index is an optimisation, never a semantic
//! change — on any filter population and any event, `matching` must return
//! exactly the handles whose filters the scan accepts, sorted by handle,
//! through arbitrary insert/remove interleavings.

use dps_content::strategies as st;
use dps_content::{Event, Filter, FilterIndex, MatchScratch, Predicate};
use proptest::prelude::*;

/// The scan oracle over a `(handle, filter)` population: handles of matching
/// filters, sorted (multiset — duplicate handles appear once per entry).
fn oracle(population: &[(u32, Filter)], event: &Event) -> Vec<u32> {
    let mut out: Vec<u32> = population
        .iter()
        .filter(|(_, f)| f.matches(event))
        .map(|(h, _)| *h)
        .collect();
    out.sort_unstable();
    out
}

fn build(population: &[(u32, Filter)]) -> FilterIndex<u32> {
    let mut idx = FilterIndex::new();
    for (h, f) in population {
        idx.insert(*h, f.clone());
    }
    idx
}

/// A filter population with handles `0..n` (handles unique here; duplicate
/// handles are covered by the dedicated interleaving test below).
fn population() -> impl Strategy<Value = Vec<(u32, Filter)>> {
    proptest::collection::vec(st::filter(), 0..24).prop_map(|fs| {
        fs.into_iter()
            .enumerate()
            .map(|(i, f)| (i as u32, f))
            .collect()
    })
}

proptest! {
    /// Core differential law: index results == scan results, in handle order.
    #[test]
    fn index_equals_scan(pop in population(), e in st::event()) {
        let idx = build(&pop);
        prop_assert_eq!(idx.matching(&e), oracle(&pop, &e));
    }

    /// Same law on full events (every attribute present — high match rates).
    #[test]
    fn index_equals_scan_on_full_events(pop in population(), e in st::full_event()) {
        let idx = build(&pop);
        prop_assert_eq!(idx.matching(&e), oracle(&pop, &e));
    }

    /// `any_match` agrees with "some filter matches".
    #[test]
    fn any_match_equals_scan_any(pop in population(), e in st::event()) {
        let idx = build(&pop);
        let mut scratch = MatchScratch::new();
        prop_assert_eq!(idx.any_match(&e, &mut scratch), !oracle(&pop, &e).is_empty());
    }

    /// Scratch reuse across a sequence of events never leaks state between
    /// queries (the epoch-stamping must isolate them).
    #[test]
    fn scratch_reuse_is_stateless(pop in population(),
                                  events in proptest::collection::vec(st::event(), 1..8)) {
        let idx = build(&pop);
        let mut scratch = MatchScratch::new();
        let mut out = Vec::new();
        for e in &events {
            idx.matching_into(e, &mut scratch, &mut out);
            prop_assert_eq!(&out, &oracle(&pop, e));
        }
    }

    /// Insert/remove interleavings, including duplicate handles: at every
    /// point the index equals the scan over the live population.
    #[test]
    fn interleaved_insert_remove(ops in proptest::collection::vec(
                                     (0u32..6, st::filter(), 0u8..3), 1..32),
                                 e in st::event()) {
        let mut idx: FilterIndex<u32> = FilterIndex::new();
        let mut live: Vec<(u32, Filter)> = Vec::new();
        for (h, f, action) in ops {
            if action == 0 {
                let dropped = idx.remove(h);
                let before = live.len();
                live.retain(|(lh, _)| *lh != h);
                prop_assert_eq!(dropped, before - live.len());
            } else {
                idx.insert(h, f.clone());
                live.push((h, f));
            }
            prop_assert_eq!(idx.len(), live.len());
            prop_assert_eq!(idx.matching(&e), oracle(&live, &e));
        }
    }

    /// Duplicate-attribute range filters (`a > c1 & a < c2`, possibly empty
    /// ranges) — the counting must require BOTH bounds, never double-count.
    #[test]
    fn range_filters_differential(bounds in proptest::collection::vec(
                                      (st::int_constant(), st::int_constant()), 1..12),
                                  v in st::int_constant()) {
        let pop: Vec<(u32, Filter)> = bounds
            .iter()
            .enumerate()
            .map(|(i, (lo, hi))| {
                (i as u32, Filter::new([Predicate::gt("a", *lo), Predicate::lt("a", *hi)]))
            })
            .collect();
        let idx = build(&pop);
        let e = Event::new([("a", dps_content::Value::from(v))]);
        prop_assert_eq!(idx.matching(&e), oracle(&pop, &e));
    }

    /// Populations past the pending-overlay bound (64 entries) force real
    /// [`StabTree`] builds plus rebuild/quarantine/gc on removal — the small
    /// populations above never reach that machinery. Tight spans (0..8,
    /// odd ones included) and negative bounds are the regression surface for
    /// the truncated-midpoint non-termination in `StabTree::build_node`.
    #[test]
    fn tree_rebuilds_equal_scan(bounds in proptest::collection::vec(
                                    (-64i64..64, 0i64..8).prop_map(|(lo, d)| (lo, lo + d)),
                                    100..140),
                                vs in proptest::collection::vec(-70i64..70, 1..6),
                                drop_stride in 2usize..5) {
        let pop: Vec<(u32, Filter)> = bounds
            .iter()
            .enumerate()
            .map(|(i, (lo, hi))| {
                (i as u32, Filter::new([Predicate::gt("a", *lo), Predicate::lt("a", *hi)]))
            })
            .collect();
        let mut idx = build(&pop);
        for v in &vs {
            let e = Event::new([("a", dps_content::Value::from(*v))]);
            prop_assert_eq!(idx.matching(&e), oracle(&pop, &e));
        }
        // Remove a slice of the population: enough interval-bearing
        // removals to trip the quarantine gc sweep and tree rebuilds.
        let live: Vec<(u32, Filter)> = pop
            .iter()
            .filter(|(h, _)| !(*h as usize).is_multiple_of(drop_stride))
            .cloned()
            .collect();
        for (h, _) in pop.iter().filter(|(h, _)| (*h as usize).is_multiple_of(drop_stride)) {
            idx.remove(*h);
        }
        for v in &vs {
            let e = Event::new([("a", dps_content::Value::from(*v))]);
            prop_assert_eq!(idx.matching(&e), oracle(&live, &e));
        }
    }

    /// Empty filters always match, whatever else is in the index.
    #[test]
    fn empty_filters_always_match(pop in population(), e in st::event()) {
        let mut idx = build(&pop);
        let h = pop.len() as u32;
        idx.insert(h, Filter::all());
        prop_assert!(idx.matching(&e).contains(&h));
    }

    /// `entries()` enumerates the live population in handle order — the
    /// `DPS_MATCH=scan` path sees exactly what the index path indexes.
    #[test]
    fn entries_reflect_population(pop in population()) {
        let idx = build(&pop);
        let listed: Vec<(u32, Filter)> =
            idx.entries().map(|(h, f)| (h, f.clone())).collect();
        prop_assert_eq!(listed, pop); // population handles are already 0..n
    }
}
