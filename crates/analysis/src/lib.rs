//! Analytical models from §5.1 of the DPS paper.
//!
//! * [`complexity`] — the worst-case **message complexity** closed forms for the
//!   four scheme combinations, in terms of the tree depth `h`, the maximal group
//!   size `S`, the epidemic fanout `k` and the inter-level fanout `k'`:
//!
//!   | scheme            | messages                              |
//!   |-------------------|---------------------------------------|
//!   | leader, root      | `h(S + 1) − 2`                        |
//!   | leader, generic   | `2h(S + 1) − 4`                       |
//!   | epidemic, root    | `kS(1 + k'(h − 1)) + k'(h − 2)`       |
//!   | epidemic, generic | `2(kS(1 + k'(h − 1)) + k'(h − 2))`    |
//!
//! * [`reliability`] — the probability `p = Σ_{i<j<k} p_i p_j s_k` that a
//!   subscription concurrent with a publication *misses* it under the generic
//!   traversal (both pick contact points at levels `i`/`j`; the subscription's
//!   group lies at level `k`). Among `f` concurrent matching events, `f(1 − p)`
//!   are received; root-based traversal makes `p = 0` (both start at the root
//!   and subscriptions have priority), which is why the paper calls it the more
//!   reliable scheme.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Message-complexity closed forms (§5.1, *Message complexity*).
pub mod complexity {
    /// Leader-based communication, root-based traversal: traversing one branch
    /// costs `Σ_{i=0}^{h−1} S_i + (h − 2)`; with a uniform bound `S` per group
    /// this is `h(S + 1) − 2`.
    pub fn leader_root(h: u64, s: u64) -> u64 {
        (h * (s + 1)).saturating_sub(2)
    }

    /// Leader-based, generic traversal: the event may climb the current branch to
    /// the root and descend the other subtree — twice the root-based cost:
    /// `2h(S + 1) − 4`.
    pub fn leader_generic(h: u64, s: u64) -> u64 {
        (2 * h * (s + 1)).saturating_sub(4)
    }

    /// Epidemic, root-based: `kS(1 + k'(h − 1)) + k'(h − 2)` — gossip floods each
    /// group (`kS`) at every level reached through `k'` inter-level copies.
    pub fn epidemic_root(h: u64, s: u64, k: u64, k_prime: u64) -> u64 {
        k * s * (1 + k_prime * h.saturating_sub(1)) + k_prime * h.saturating_sub(2)
    }

    /// Epidemic, generic: twice the root-based cost (up and down).
    pub fn epidemic_generic(h: u64, s: u64, k: u64, k_prime: u64) -> u64 {
        2 * epidemic_root(h, s, k, k_prime)
    }
}

/// The reliability model (§5.1, *Reliability*).
pub mod reliability {
    /// Probability that a generic-traversal subscription concurrent with a
    /// matching publication misses it: `p = Σ_{i<j<k} p_i p_j s_k`, where `p_l`
    /// is the probability of picking a contact point at level `l` and `s_l` the
    /// probability that the subscription's group sits at level `l`.
    ///
    /// # Panics
    ///
    /// Panics if the two distributions have different lengths.
    pub fn miss_probability(contact_levels: &[f64], group_levels: &[f64]) -> f64 {
        assert_eq!(
            contact_levels.len(),
            group_levels.len(),
            "level distributions must cover the same depth"
        );
        let n = contact_levels.len();
        let mut p = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                for s_k in &group_levels[j + 1..] {
                    p += contact_levels[i] * contact_levels[j] * s_k;
                }
            }
        }
        p
    }

    /// Expected number of events received out of `f` concurrently published
    /// matching events: `f(1 − p)`.
    pub fn expected_received(f: u64, miss_p: f64) -> f64 {
        f as f64 * (1.0 - miss_p)
    }

    /// Uniform level distribution over a tree of depth `h` (levels `0..=h`).
    pub fn uniform_levels(h: usize) -> Vec<f64> {
        vec![1.0 / (h + 1) as f64; h + 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leader_formulas_match_the_paper_examples() {
        // h = 1 (root + nothing below), S = 1: a single exchange.
        assert_eq!(complexity::leader_root(1, 1), 0);
        // The generic cost is exactly twice the root cost (minus the shared
        // constant): 2(h(S+1) - 2) = 2h(S+1) - 4.
        for h in 1..10 {
            for s in 1..10 {
                assert_eq!(
                    complexity::leader_generic(h, s),
                    2 * complexity::leader_root(h, s),
                );
            }
        }
    }

    #[test]
    fn epidemic_costs_exceed_leader_costs() {
        // With k = k' = 1 the epidemic flood of each group already costs about as
        // much as the leader fan-out; any k > 1 strictly dominates.
        for h in 2..8 {
            for s in 2..8 {
                assert!(
                    complexity::epidemic_root(h, s, 2, 2) > complexity::leader_root(h, s),
                    "h={h} s={s}"
                );
                assert_eq!(
                    complexity::epidemic_generic(h, s, 2, 2),
                    2 * complexity::epidemic_root(h, s, 2, 2)
                );
            }
        }
    }

    #[test]
    fn miss_probability_is_zero_for_shallow_trees() {
        // With fewer than three levels no i < j < k exists: nothing can be missed.
        let l = reliability::uniform_levels(1);
        assert_eq!(reliability::miss_probability(&l, &l), 0.0);
    }

    #[test]
    fn miss_probability_grows_with_depth() {
        let mut last = 0.0;
        for h in 2..10 {
            let l = reliability::uniform_levels(h);
            let p = reliability::miss_probability(&l, &l);
            assert!(p > last, "depth {h}");
            assert!(p < 1.0);
            last = p;
        }
    }

    #[test]
    fn expected_received_is_f_when_p_zero() {
        assert_eq!(reliability::expected_received(10, 0.0), 10.0);
        assert!(reliability::expected_received(10, 0.3) - 7.0 < 1e-9);
    }

    #[test]
    #[should_panic(expected = "same depth")]
    fn mismatched_levels_panic() {
        reliability::miss_probability(&[0.5, 0.5], &[1.0]);
    }
}
