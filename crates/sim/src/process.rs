//! The node-side interface of the simulator: identities, messages, and the
//! [`Process`] state-machine trait.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Discrete simulation time, in steps (the paper's "cycles").
pub type Step = u64;

/// The deterministic RNG behind every per-node stream (and the driver RNG).
///
/// Each node owns a private `SimRng` whose seed is derived from `(sim seed,
/// node index)` at [`Sim::add_node`](crate::Sim::add_node) time. Because a
/// node's draws depend only on its own seed and its own event sequence —
/// never on a stream shared with other nodes — a run replays byte-identically
/// however the nodes are partitioned across shards. (With the vendored RNG
/// stand-ins the per-node derivation is a seed mix, not ChaCha's
/// stream-counter facility; see `node_rng` in the engine.)
pub type SimRng = rand_chacha::ChaCha8Rng;

/// Identity of a simulated node.
///
/// Ids are dense indices assigned by [`Sim::add_node`](crate::Sim::add_node) in
/// join order, which keeps per-node bookkeeping in flat vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u64);

impl NodeId {
    /// Builds a `NodeId` from a dense index. Mostly useful in tests; real ids come
    /// from [`Sim::add_node`](crate::Sim::add_node).
    pub fn from_index(i: usize) -> Self {
        NodeId(i as u64)
    }

    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Traffic class of a message, used by [`Metrics`](crate::Metrics) to reproduce the
/// paper's per-class message accounting ("Messages include the ones due to
/// publication, subscription, and management of the overlay", §5.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MsgClass {
    /// Event dissemination traffic.
    Publication,
    /// Subscription routing and group joining traffic.
    Subscription,
    /// Overlay management: views, heartbeats, merges, bootstrap.
    Management,
}

impl MsgClass {
    /// All classes, in a fixed order (used for array indexing).
    pub const ALL: [MsgClass; 3] = [
        MsgClass::Publication,
        MsgClass::Subscription,
        MsgClass::Management,
    ];

    /// Dense index of the class.
    pub fn index(self) -> usize {
        match self {
            MsgClass::Publication => 0,
            MsgClass::Subscription => 1,
            MsgClass::Management => 2,
        }
    }
}

/// A simulatable message. The only requirements beyond `Clone + Debug` are a
/// traffic [`class`](Message::class) so the engine can account it, and
/// `Send + 'static` so messages can cross shard boundaries when the engine
/// runs sharded (the shard workers are persistent threads, so everything they
/// own must be free of borrowed data).
pub trait Message: Clone + fmt::Debug + Send + 'static {
    /// The traffic class of this message.
    fn class(&self) -> MsgClass;
}

/// A protocol state machine: one instance per simulated node.
///
/// Handlers receive a [`Context`] to send messages and access the node's
/// private RNG stream; all effects are deferred to the next step, making each
/// step atomic. Processes must be `Send + 'static` (with no hidden shared
/// mutable state and no borrowed data): the sharded engine hands disjoint
/// node sets to persistent worker threads by ownership transfer.
pub trait Process: Send + 'static {
    /// Message type exchanged by this protocol.
    type Msg: Message;

    /// Called once when the node joins the system.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called for each message delivered to this node.
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Context<'_, Self::Msg>);

    /// Called once per step (after deliveries) for periodic work such as gossip
    /// rounds and heartbeat probing.
    fn on_tick(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let _ = ctx;
    }
}

/// Handler-side capability object: lets a node know who and when it is, send
/// messages, and draw randomness — all deterministically.
///
/// The outbox is a scratch buffer owned by the engine and reused across handler
/// invocations, so sending allocates only when a step's fan-out exceeds any
/// previous one. The RNG is the node's own counter-seeded stream, not a
/// simulation-wide generator: two nodes' draws never interleave, which is what
/// lets shards advance nodes in parallel without changing any outcome.
pub struct Context<'a, M> {
    pub(crate) me: NodeId,
    pub(crate) now: Step,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) out: &'a mut Vec<(NodeId, M)>,
}

impl<'a, M: Message> Context<'a, M> {
    /// The identity of the node running the handler.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Current simulation step.
    pub fn now(&self) -> Step {
        self.now
    }

    /// Sends `msg` to `to`; it will be delivered after the link's sampled
    /// latency — the next step under the default unit model (if `to` is then
    /// alive). Sending to self is allowed and takes the same latency.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.out.push((to, msg));
    }

    /// This node's private deterministic RNG stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trip() {
        let id = NodeId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "n7");
    }

    #[test]
    fn class_indices_are_dense() {
        for (i, c) in MsgClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
