//! The persistent shard worker pool behind [`Sim::step`](crate::Sim::step).
//!
//! Before the pool, every sharded step spawned `S` scoped threads and joined
//! them at the barrier — ~100–300 µs of spawn/join overhead per step that made
//! sharding a net loss at small populations (see `BENCH_micro.json`,
//! `shard_scaling`). The pool spawns the `S` workers **once** (in
//! [`Sim::new_sharded`](crate::Sim::new_sharded)) and parks them on their job
//! channels between steps; a steady-state step spawns zero threads.
//!
//! # Ownership hand-off, not shared state
//!
//! `dps-sim` forbids `unsafe`, so the pool cannot lend `&mut Shard` across
//! threads the way `thread::scope` did. Instead each step **moves** every
//! [`Shard`] through a channel to its worker, which advances it and sends it
//! back — plain ownership transfer, no locks, no aliasing. The shard vector's
//! capacity is retained across the round trip, so the hand-off allocates
//! nothing in steady state; the per-step cost is `2·S` channel operations.
//!
//! Workers receive the step's [`FaultPlan`] behind an [`Arc`] (the engine
//! mutates it between steps via `Arc::make_mut`, cloning only when a worker
//! still holds a reference — which never happens between steps, because the
//! barrier returns every shard, and with it every plan handle, before
//! [`Sim::step`] returns).
//!
//! # Shutdown
//!
//! Dropping the pool (when the [`Sim`](crate::Sim) is dropped) closes the job
//! channels; every worker falls out of its `recv` loop and is joined. No
//! thread outlives the simulation — `tests/pool_lifecycle.rs` pins this by
//! counting OS threads across repeated construction/drop cycles.

use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::fault::FaultPlan;
use crate::process::{Process, Step};
use crate::shard::Shard;

/// One step's work order for a single worker: the shard it owns for the
/// duration of the step plus everything `step_local` needs.
struct Job<P: Process> {
    shard: Shard<P>,
    now: Step,
    fault: Arc<FaultPlan>,
    partition_active: bool,
    loss_active: bool,
}

/// A fixed set of persistent worker threads, one per shard. Workers are
/// parked on their job channel between steps; the pool is the only thing
/// that spawns threads in the whole engine, and it does so exactly once.
pub(crate) struct WorkerPool<P: Process> {
    /// Job senders, indexed by shard. Cleared on drop to release the workers.
    txs: Vec<Sender<Job<P>>>,
    /// Result receivers, indexed by shard: each yields the shard back after
    /// `step_local` ran on it.
    rxs: Vec<Receiver<Shard<P>>>,
    handles: Vec<JoinHandle<()>>,
}

impl<P: Process> WorkerPool<P> {
    /// Spawns `n` workers (one per shard), each parked waiting for jobs.
    pub(crate) fn spawn(n: usize) -> Self {
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for i in 0..n {
            let (job_tx, job_rx) = std::sync::mpsc::channel::<Job<P>>();
            let (res_tx, res_rx) = std::sync::mpsc::channel::<Shard<P>>();
            let handle = std::thread::Builder::new()
                .name(format!("dps-shard-{i}"))
                .spawn(move || {
                    // Park on `recv` until the engine sends the next step's
                    // shard; exit when the engine drops the sender.
                    while let Ok(mut job) = job_rx.recv() {
                        job.shard.step_local(
                            job.now,
                            &job.fault,
                            job.partition_active,
                            job.loss_active,
                        );
                        if res_tx.send(job.shard).is_err() {
                            break; // engine gone mid-step (it is being dropped)
                        }
                    }
                })
                .expect("failed to spawn a shard worker thread");
            txs.push(job_tx);
            rxs.push(res_rx);
            handles.push(handle);
        }
        WorkerPool { txs, rxs, handles }
    }

    /// Runs one parallel step: hands each shard to its worker, then collects
    /// them back in shard order (the order is bookkeeping only — the merge at
    /// the barrier is what fixes the canonical message order). Blocks until
    /// every shard returned; `shards` is drained and refilled in place, so
    /// its capacity — and the zero-allocation steady state — is preserved.
    pub(crate) fn step(
        &self,
        shards: &mut Vec<Shard<P>>,
        now: Step,
        fault: &Arc<FaultPlan>,
        partition_active: bool,
        loss_active: bool,
    ) {
        debug_assert_eq!(shards.len(), self.txs.len(), "shard/worker count drift");
        for (tx, shard) in self.txs.iter().zip(shards.drain(..)) {
            let job = Job {
                shard,
                now,
                fault: Arc::clone(fault),
                partition_active,
                loss_active,
            };
            tx.send(job).expect("a shard worker exited before shutdown");
        }
        for rx in &self.rxs {
            shards.push(rx.recv().expect("a shard worker died mid-step"));
        }
    }
}

impl<P: Process> Drop for WorkerPool<P> {
    fn drop(&mut self) {
        // Closing the job channels releases every worker from `recv`...
        self.txs.clear();
        // ...so the joins below always terminate.
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}
