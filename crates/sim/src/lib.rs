//! A deterministic discrete-event simulator with timestamped delivery.
//!
//! This is the evaluation substrate of the DPS reproduction. The paper (§5.2)
//! evaluates DPS "using an event-based simulator we developed"; the properties it
//! states are: the simulation is *cycle based*, messages travel between neighbors
//! with (implicitly) unit latency, nodes join, leave and crash, and heartbeat-based
//! failure detection runs between neighbors with detection intervals drawn uniformly
//! from 10 to 25 steps. This crate implements that machine as the latency ≡ 1
//! special case of a timestamped event queue:
//!
//! * [`Sim`] advances in discrete steps; a message sent at step *t* is enqueued
//!   with delivery time *t + latency(link)*, the latency sampled per the
//!   installed [`LatencyModel`] ([`Sim::set_latency`]) from the destination's
//!   dedicated RNG stream. The default [`LatencyModel::Unit`] delivers at
//!   *t + 1* without drawing anything — the paper's cycle model, byte for
//!   byte. Within a step, deliveries and ticks happen in deterministic order
//!   (by destination node id, then send order), so a run is a pure function
//!   of its RNG seed. Ticks are the period-1 timer events of the timeline.
//! * One run can use **several cores**: [`Sim::new_sharded`] partitions the
//!   nodes across `S` shards that advance in parallel each step on a
//!   persistent worker pool (spawned once, parked between steps, joined on
//!   drop), exchanging cross-shard sends at the step barrier. Every node
//!   draws from a private counter-seeded RNG stream ([`SimRng`]), so the
//!   trace is *byte-identical* whatever `S` is — sharding is purely a
//!   wall-clock knob.
//! * Protocol logic is supplied via the [`Process`] trait: a node is a state
//!   machine reacting to `on_start`, `on_message` and `on_tick`.
//! * [`ChurnPlan`] reproduces the paper's failure scenarios (a crash every `1/p`
//!   steps; the three-phase "storm" of Fig. 3(b); steady growth of Fig. 3(c)).
//! * [`FaultPlan`] adds the link-level fault classes — network partitions
//!   (named sides over a step interval) and lossy links — enforced in the
//!   delivery loop and accounted per [`DropReason`] in the metrics.
//! * [`Metrics`] counts sent/received messages per node per class
//!   ([`MsgClass::Publication`], [`Subscription`](MsgClass::Subscription),
//!   [`Management`](MsgClass::Management)) in fixed-size step windows, and computes
//!   the median/max summaries plotted in the paper's Figures 3(c)–3(g).
//!
//! # Example
//!
//! ```
//! use dps_sim::{Context, Message, MsgClass, NodeId, Process, Sim};
//!
//! #[derive(Clone, Debug)]
//! struct Ping(u32);
//! impl Message for Ping {
//!     fn class(&self) -> MsgClass { MsgClass::Management }
//! }
//!
//! /// Relays a token `hops` times around the ring of all nodes.
//! struct Relay { hops: u32 }
//! impl Process for Relay {
//!     type Msg = Ping;
//!     fn on_message(&mut self, _from: NodeId, msg: Ping, ctx: &mut Context<'_, Ping>) {
//!         self.hops += 1;
//!         if msg.0 > 0 {
//!             let next = NodeId::from_index((ctx.me().index() + 1) % 3);
//!             ctx.send(next, Ping(msg.0 - 1));
//!         }
//!     }
//! }
//!
//! let mut sim = Sim::new(42);
//! for _ in 0..3 { sim.add_node(Relay { hops: 0 }); }
//! let first = sim.node_ids()[0];
//! sim.post(first, Ping(5)); // external stimulus
//! sim.run(10);
//! let total: u32 = sim.node_ids().iter().map(|id| sim.node(*id).unwrap().hops).sum();
//! assert_eq!(total, 6); // the injected message plus five relays
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod churn;
mod engine;
mod fault;
mod latency;
mod metrics;
mod pool;
mod process;
mod shard;

pub use churn::{ChurnEvent, ChurnPlan};
pub use engine::{Sim, SimSnapshot};
pub use fault::{CutDir, FaultPlan, PartitionWindow};
pub use latency::{LatencyModel, MAX_LATENCY};
pub use metrics::{
    ClassCounts, Dir, DropReason, LatencyHistogram, LatencySummary, Metrics, Stat, WindowStat,
};
pub use process::{Context, Message, MsgClass, NodeId, Process, SimRng, Step};
