//! The simulation engine: step loop, message queues, node lifecycle.
//!
//! The step loop is the hot path of every experiment, so it is written to be
//! allocation-free in steady state: messages live in per-destination buckets
//! that are double-buffered across steps (no global sort), and handler output
//! goes through one reusable scratch buffer instead of a fresh `Vec` per call.
//!
//! # Sharded execution
//!
//! The engine partitions nodes across `S` [`Shard`]s (round-robin by id;
//! `S = 1` by default, reproducing the classic single-threaded behavior).
//! Each [`step`](Sim::step), shards advance their nodes **in parallel** on a
//! persistent pool of worker threads (spawned once in
//! [`Sim::new_sharded`], parked between steps, joined on drop — a
//! steady-state step spawns zero threads): deliveries, handler invocations,
//! ticks and loss sampling all happen shard-locally (every node owns a
//! private RNG stream, so no draw ever crosses a shard). Sends land in
//! per-destination-shard staging outboxes that the engine exchanges at the
//! step barrier, merging them into the destination buckets in a canonical
//! order — deliver-phase sends before tick-phase sends, each sorted by sender
//! id, which is exactly the order a single shard produces naturally. Every
//! handler therefore sees the same messages in the same order with the same
//! RNG state whatever `S` is: **a run is byte-identical for `S = 1` and
//! `S = N`.**

use std::sync::Arc;

use rand::SeedableRng;

use crate::fault::FaultPlan;
use crate::latency::LatencyModel;
use crate::metrics::Metrics;
use crate::pool::WorkerPool;
use crate::process::{Context, Message, NodeId, Process, SimRng, Step};
use crate::shard::{Phase, Shard, Staged};

/// Derives node `index`'s private RNG stream from the simulation seed by
/// mixing the index into the seed (golden-ratio multiply, then the
/// `seed_from_u64` SplitMix64 expansion). What matters for the engine is
/// that the stream is a pure function of `(seed, index)` — independent of
/// every other node and of the shard layout. Note: the vendored
/// `rand_chacha` stand-in has no `set_stream`, so this is a seed-mix
/// derivation, not the ChaCha stream-counter construction; switch to
/// `set_stream(index)` if the real crate ever lands.
pub(crate) fn node_rng(seed: u64, index: usize) -> SimRng {
    SimRng::seed_from_u64(seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Salt separating a node's **latency** stream from its protocol stream.
/// Latency draws happen at enqueue (once per message into the node) while
/// protocol and loss draws happen inside the node's handlers; giving the two
/// different streams means neither sequence can perturb the other — which is
/// what lets a latency model be swapped in without reshuffling a single
/// protocol draw, and the unit model (no draws at all) replay the
/// pre-event-queue engine byte-for-byte.
const LATENCY_STREAM_SALT: u64 = 0x6C61_7465_6E63_795F;

/// Derives node `index`'s dedicated latency stream: `node_rng` over a salted
/// seed. A pure function of `(seed, index)`, so shards can derive streams
/// lazily (on the first sampled message into a node) and the result is
/// independent of the shard layout and of when the node joined.
pub(crate) fn latency_rng(seed: u64, index: usize) -> SimRng {
    node_rng(seed ^ LATENCY_STREAM_SALT, index)
}

/// A deterministic discrete-event simulator over a protocol `P`.
///
/// Messages are timestamped events: each is enqueued with a delivery time
/// `now + latency(link)` into a per-shard timing wheel, with the latency
/// sampled from the destination's dedicated stream per the installed
/// [`LatencyModel`] ([`set_latency`](Sim::set_latency)). The default unit
/// model makes every latency exactly 1 without drawing — the classic
/// cycle-based engine is the latency ≡ 1 special case, byte for byte.
///
/// See the [crate docs](crate) for the execution model. The engine is generic: the
/// DPS overlay, the broadcast baseline and the test protocols all run on it
/// unchanged.
pub struct Sim<P: Process> {
    /// The execution shards; node with global index `i` lives in
    /// `shards[i % S]` at local slot `i / S`. Always at least one.
    shards: Vec<Shard<P>>,
    /// Persistent shard workers, spawned once for `S > 1` (never for the
    /// serial layout) and joined when the simulation is dropped. `step`
    /// hands each shard to its worker by ownership transfer and collects
    /// them back at the barrier — no thread is spawned after construction.
    pool: Option<WorkerPool<P>>,
    /// Nodes ever added (dense global ids `0..total_nodes`).
    total_nodes: usize,
    now: Step,
    /// Link-fault schedule (partitions, lossy links), enforced at delivery.
    /// Behind an `Arc` so each step can hand the workers a reference-counted
    /// handle instead of cloning the plan; driver mutations between steps go
    /// through `Arc::make_mut` (which never actually clones there, because
    /// the barrier has already collected every worker's handle).
    fault: Arc<FaultPlan>,
    /// Driver-level RNG: scenario choices made *between* steps (picking a
    /// crash victim, a publisher). Protocol handlers use per-node streams.
    rng: SimRng,
    /// Seed the per-node streams are derived from.
    seed: u64,
    /// Metrics window length, applied to every shard partial.
    metrics_window: Step,
    /// The link-latency model (shards hold clones of the same `Arc`).
    /// Default [`LatencyModel::Unit`]: the classic cycle engine.
    latency: Arc<LatencyModel>,
}

/// A cheap copyable summary of the state of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimSnapshot {
    /// Current step.
    pub now: Step,
    /// Nodes ever added.
    pub total_nodes: usize,
    /// Nodes currently alive.
    pub alive_nodes: usize,
    /// Deliverable messages waiting in the timing wheel, across all future
    /// delivery times (messages queued to nodes that have since crashed are
    /// purged and not counted).
    pub in_flight: usize,
}

impl<P: Process> Sim<P> {
    /// Creates an empty simulation with the given RNG seed and a single shard
    /// (classic serial execution). Two runs with the same seed and the same
    /// sequence of calls produce identical traces.
    pub fn new(seed: u64) -> Self {
        Sim::new_sharded(seed, 1)
    }

    /// Creates an empty simulation executing on `shards` parallel shards
    /// (clamped to at least 1). The trace, metrics and every observable
    /// outcome are **byte-identical** to `Sim::new(seed)` — sharding only
    /// changes how many cores a step uses. Nodes are assigned round-robin:
    /// global id `i` lives in shard `i % shards`.
    ///
    /// For `shards > 1` this spawns the persistent worker pool (one thread
    /// per shard, parked between steps); the workers live exactly as long as
    /// the `Sim` and are joined when it drops. `shards = 1` spawns nothing
    /// and steps inline, exactly like [`Sim::new`].
    ///
    /// ```
    /// use dps_sim::{Context, Message, MsgClass, NodeId, Process, Sim};
    ///
    /// #[derive(Clone, Debug)]
    /// struct Hop(u32);
    /// impl Message for Hop {
    ///     fn class(&self) -> MsgClass { MsgClass::Management }
    /// }
    /// struct Counter(u32);
    /// impl Process for Counter {
    ///     type Msg = Hop;
    ///     fn on_message(&mut self, _from: NodeId, msg: Hop, ctx: &mut Context<'_, Hop>) {
    ///         self.0 += 1;
    ///         if msg.0 > 0 {
    ///             let next = NodeId::from_index((ctx.me().index() + 1) % 8);
    ///             ctx.send(next, Hop(msg.0 - 1));
    ///         }
    ///     }
    /// }
    ///
    /// // The same run on one shard and on four: identical observables.
    /// let run = |shards: usize| {
    ///     let mut sim = Sim::new_sharded(99, shards);
    ///     for _ in 0..8 { sim.add_node(Counter(0)); }
    ///     sim.post(NodeId::from_index(0), Hop(25));
    ///     sim.run(40); // workers (if any) persist across all 40 steps
    ///     let hops: Vec<u32> = sim.node_ids().iter().map(|n| sim.node(*n).unwrap().0).collect();
    ///     (hops, sim.snapshot())
    /// };
    /// assert_eq!(run(1), run(4));
    /// // Dropping `sim` joined the 4 workers; nothing outlives the run.
    /// ```
    pub fn new_sharded(seed: u64, shards: usize) -> Self {
        let n = shards.max(1);
        let metrics_window = 100;
        Sim {
            shards: (0..n)
                .map(|i| Shard::new(i, n, metrics_window, seed))
                .collect(),
            pool: (n > 1).then(|| WorkerPool::spawn(n)),
            total_nodes: 0,
            now: 0,
            fault: Arc::new(FaultPlan::none()),
            rng: SimRng::seed_from_u64(seed),
            seed,
            metrics_window,
            latency: Arc::new(LatencyModel::Unit),
        }
    }

    /// Installs the link-latency model for this run. Must be called **before
    /// anything is queued** — on a fresh simulation, prior to `add_node`
    /// (whose `on_start` sends would otherwise be enqueued under the old
    /// model) — and panics otherwise, or if the model's ranges are invalid.
    ///
    /// The default is [`LatencyModel::Unit`]: every link takes exactly one
    /// step and **no latency stream is ever derived or drawn from**, which
    /// keeps unit-latency runs byte-identical to the classic cycle-based
    /// engine. Any other model sizes each shard's timing wheel to
    /// `max_latency + 1` slots and samples per message from the destination
    /// node's dedicated latency stream.
    pub fn set_latency(&mut self, model: LatencyModel) {
        if let Err(e) = model.validate() {
            panic!("invalid latency model: {e}");
        }
        assert_eq!(
            self.now, 0,
            "set_latency must be called before the first step"
        );
        assert_eq!(
            self.snapshot().in_flight,
            0,
            "set_latency must be called before any message is enqueued"
        );
        let wheel_len = (model.max_latency() + 1).max(2) as usize;
        let model = Arc::new(model);
        for sh in &mut self.shards {
            sh.latency = Arc::clone(&model);
            sh.wheel.clear();
            sh.wheel.resize_with(wheel_len, Vec::new);
        }
        self.latency = model;
    }

    /// The link-latency model in force.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// Number of execution shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard index and local slot of global node index `i`.
    fn locate(&self, i: usize) -> (usize, usize) {
        (i % self.n_shards(), i / self.n_shards())
    }

    /// The link-fault schedule in force (default: no faults).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault
    }

    /// Mutable access to the fault schedule: scenario drivers start
    /// partitions, heal them and set loss rates through this. Driver calls
    /// run between steps, when no worker holds a plan handle, so the
    /// copy-on-write below is a plain in-place mutation in practice.
    pub fn fault_plan_mut(&mut self) -> &mut FaultPlan {
        Arc::make_mut(&mut self.fault)
    }

    /// Replaces the fault schedule wholesale.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Arc::new(plan);
    }

    /// Sets the metrics window length in steps (default 100, the sampling period
    /// used throughout the paper's §5.2.1). Resets collected metrics.
    pub fn set_metrics_window(&mut self, steps: Step) {
        self.metrics_window = steps;
        for sh in &mut self.shards {
            sh.metrics = Metrics::new(steps);
            // Align the fresh collector with the current step: rolling is
            // otherwise only done once per step(), so traffic recorded before
            // the next step would be stamped into the window starting at 0.
            sh.metrics.roll_to(self.now);
        }
    }

    /// Adds a node running `proc`; `on_start` fires immediately (its sends are
    /// delivered at the next step). Returns the new node's id.
    pub fn add_node(&mut self, proc: P) -> NodeId {
        let idx = self.total_nodes;
        let id = NodeId::from_index(idx);
        let (s, l) = self.locate(idx);
        self.total_nodes += 1;
        let shard = &mut self.shards[s];
        debug_assert_eq!(shard.procs.len(), l, "round-robin assignment broken");
        shard.procs.push(proc);
        shard.alive.push(true);
        shard.rngs.push(node_rng(self.seed, idx));
        shard.alive_count += 1;
        // Note: the node's dedicated latency stream is NOT derived here —
        // `lat_rngs` grows lazily at the first sampled enqueue, and may
        // already cover this slot (messages can be addressed to a node
        // before it joins; the partially consumed stream must survive).
        let mut ctx = Context {
            me: id,
            now: self.now,
            rng: &mut shard.rngs[l],
            out: &mut shard.scratch_out,
        };
        shard.procs[l].on_start(&mut ctx);
        self.flush_outgoing(id);
        id
    }

    /// Crashes a node: it stops processing and all messages addressed to it are
    /// dropped. Idempotent. Crashing is silent — neighbors only find out through
    /// their own failure-detection traffic, as in the paper.
    ///
    /// Messages already queued to the victim are purged immediately (accounted
    /// as [`DropReason`](crate::DropReason)`::Crashed`), so
    /// [`SimSnapshot::in_flight`] keeps counting deliverable messages only.
    pub fn crash(&mut self, id: NodeId) {
        if id.index() >= self.total_nodes {
            return;
        }
        let (s, l) = self.locate(id.index());
        let shard = &mut self.shards[s];
        if let Some(alive) = shard.alive.get_mut(l) {
            if *alive {
                *alive = false;
                shard.alive_count -= 1;
                shard.purge_queued(l);
            }
        }
    }

    /// Whether `id` is currently alive.
    pub fn is_alive(&self, id: NodeId) -> bool {
        if id.index() >= self.total_nodes {
            return false;
        }
        let (s, l) = self.locate(id.index());
        self.shards[s].alive.get(l).is_some_and(|a| *a)
    }

    /// Immutable access to a node's protocol state (alive or crashed).
    pub fn node(&self, id: NodeId) -> Option<&P> {
        if id.index() >= self.total_nodes {
            return None;
        }
        let (s, l) = self.locate(id.index());
        self.shards[s].procs.get(l)
    }

    /// Mutable access to a node's protocol state. Intended for scenario drivers
    /// (e.g. installing a new subscription before the next step), not for
    /// bypassing the message-passing discipline mid-step.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut P> {
        if id.index() >= self.total_nodes {
            return None;
        }
        let (s, l) = self.locate(id.index());
        self.shards[s].procs.get_mut(l)
    }

    /// Ids of all nodes ever added, in join order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.total_nodes).map(NodeId::from_index).collect()
    }

    /// Iterates over the currently alive node ids, ascending — global id
    /// order, independent of the shard layout. Allocation-free; prefer this
    /// (or [`alive_count`](Sim::alive_count)/[`nth_alive`](Sim::nth_alive))
    /// over [`alive_ids`](Sim::alive_ids) in per-step loops.
    pub fn alive(&self) -> impl DoubleEndedIterator<Item = NodeId> + '_ {
        let n = self.n_shards();
        (0..self.total_nodes)
            .filter(move |i| self.shards[i % n].alive[i / n])
            .map(NodeId::from_index)
    }

    /// Number of currently alive nodes. O(shards): summed over the per-shard
    /// incremental counts.
    pub fn alive_count(&self) -> usize {
        self.shards.iter().map(|s| s.alive_count).sum()
    }

    /// The `k`-th alive node in ascending **global id** order, if
    /// `k < alive_count()`. Combined with a random `k` this picks a uniform
    /// alive node without materializing the population; the global ordering
    /// makes the pick independent of the shard count, which keeps sharded
    /// scenario runs byte-identical.
    pub fn nth_alive(&self, k: usize) -> Option<NodeId> {
        self.alive().nth(k)
    }

    /// Ids of the currently alive nodes, ascending.
    pub fn alive_ids(&self) -> Vec<NodeId> {
        self.alive().collect()
    }

    /// Injects an external message to `to`, delivered after the link's
    /// sampled latency (the next step under the default unit model),
    /// attributed to the recipient itself (external stimuli such as a user's
    /// Publish call).
    pub fn post(&mut self, to: NodeId, msg: P::Msg) {
        let now = self.now;
        let d = to.index() % self.n_shards();
        self.shards[d].metrics.on_send(to, msg.class());
        self.shards[d].enqueue(to, to, msg, now);
    }

    /// Runs the protocol handler `f` on node `id` as if it were executing within
    /// the current step (e.g. the application invoking `Subscribe` or `Publish` on
    /// its local DPS instance). Outgoing messages are queued for the next step.
    pub fn invoke<F>(&mut self, id: NodeId, f: F)
    where
        F: FnOnce(&mut P, &mut Context<'_, P::Msg>),
    {
        if !self.is_alive(id) {
            return;
        }
        let (s, l) = self.locate(id.index());
        let shard = &mut self.shards[s];
        let mut ctx = Context {
            me: id,
            now: self.now,
            rng: &mut shard.rngs[l],
            out: &mut shard.scratch_out,
        };
        f(&mut shard.procs[l], &mut ctx);
        self.flush_outgoing(id);
    }

    /// Current step number (the number of completed [`step`](Sim::step) calls).
    pub fn now(&self) -> Step {
        self.now
    }

    /// Collected traffic metrics, merged across the shard partials. With a
    /// single shard this is a plain clone; the merge is identical whatever
    /// the shard count (counters are sums, windows roll in lockstep).
    pub fn metrics(&self) -> Metrics {
        let mut merged = self.shards[0].metrics.clone();
        for sh in &self.shards[1..] {
            merged.absorb(&sh.metrics);
        }
        merged
    }

    /// A summary snapshot of the run.
    pub fn snapshot(&self) -> SimSnapshot {
        SimSnapshot {
            now: self.now,
            total_nodes: self.total_nodes,
            alive_nodes: self.alive_count(),
            in_flight: self.shards.iter().map(|s| s.in_flight).sum(),
        }
    }

    /// The driver-level deterministic RNG, for scenario choices made between
    /// steps (e.g. picking a victim node to crash). Distinct from the
    /// per-node streams protocol handlers draw from, so driver draws are
    /// unaffected by anything that happens inside a step.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Advances one step: delivers the messages whose sampled delivery time
    /// is due (in destination-id order, then deliver-phase/tick-phase send
    /// order), then ticks every alive node (in id order). With more than one shard the per-shard work runs on the
    /// persistent worker pool — each shard is handed to its (already running)
    /// worker and collected back at the barrier, so no thread is ever spawned
    /// here; the staging outboxes are then merged (see the crate docs on
    /// sharded execution).
    pub fn step(&mut self) {
        self.now += 1;
        // The only metrics roll of the step: every send/receive below happens
        // at this `now`, so per-message rolling would be a no-op. Rolling all
        // partials together keeps them mergeable.
        for sh in &mut self.shards {
            sh.metrics.roll_to(self.now);
        }

        // Fault fast path: both checks hoisted out of the per-message loops so
        // fault-free runs replay byte-identically (no stray RNG draws).
        let partition_active = self.fault.active_partitions(self.now).next().is_some();
        let loss_active = self.fault.has_loss_at(self.now);
        let now = self.now;

        match &self.pool {
            // Serial fast path: the classic single-shard layout has no pool
            // and steps inline on the caller's thread.
            None => {
                self.shards[0].step_local(now, &self.fault, partition_active, loss_active);
            }
            Some(pool) => {
                pool.step(
                    &mut self.shards,
                    now,
                    &self.fault,
                    partition_active,
                    loss_active,
                );
            }
        }

        self.merge_staging();
    }

    /// Runs `n` steps.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// The step barrier: drains every shard's staging outboxes into the
    /// destination shards' next-step buckets in the canonical order —
    /// deliver-phase sends first, then tick-phase sends, each k-way-merged by
    /// ascending sender id (each source is already sorted: shards process
    /// their nodes in ascending order). Dead-destination drops are applied
    /// here, which is equivalent to dropping at send time because liveness
    /// cannot change during the parallel phase.
    fn merge_staging(&mut self) {
        let now = self.now;
        let n = self.shards.len();
        if n == 1 {
            // Single shard: sends were enqueued directly (the production
            // order is the canonical order), nothing was staged.
            debug_assert!(
                self.shards[0].staging[0].deliver.is_empty()
                    && self.shards[0].staging[0].tick.is_empty()
            );
            return;
        }
        for d in 0..n {
            for phase in [Phase::Deliver, Phase::Tick] {
                // Move the S source buffers out (Vec headers only) so the
                // destination shard can be borrowed mutably alongside them.
                let mut sources: Vec<Vec<Staged<P::Msg>>> = (0..n)
                    .map(|s| {
                        let outbox = &mut self.shards[s].staging[d];
                        match phase {
                            Phase::Deliver => std::mem::take(&mut outbox.deliver),
                            Phase::Tick => std::mem::take(&mut outbox.tick),
                        }
                    })
                    .collect();
                {
                    let dest = &mut self.shards[d];
                    let mut its: Vec<_> =
                        sources.iter_mut().map(|v| v.drain(..).peekable()).collect();
                    loop {
                        let mut best: Option<usize> = None;
                        let mut best_from = usize::MAX;
                        for (s, it) in its.iter_mut().enumerate() {
                            if let Some(st) = it.peek() {
                                if best.is_none() || st.from.index() < best_from {
                                    best_from = st.from.index();
                                    best = Some(s);
                                }
                            }
                        }
                        let Some(s) = best else { break };
                        let Staged { from, to, msg } = its[s].next().expect("peeked");
                        dest.enqueue(from, to, msg, now);
                    }
                }
                // Hand the (drained, capacity-retaining) buffers back.
                for (s, v) in sources.into_iter().enumerate() {
                    let outbox = &mut self.shards[s].staging[d];
                    match phase {
                        Phase::Deliver => outbox.deliver = v,
                        Phase::Tick => outbox.tick = v,
                    }
                }
            }
        }
    }

    /// Drains the scratch outbox of `from`'s shard into the next-step buckets
    /// (driver-side path: `add_node`/`invoke` run between steps, so their
    /// sends bypass staging and enqueue directly, in call order — exactly the
    /// classic behavior). Sends to already-crashed nodes are dropped at
    /// enqueue (a send to a node id not yet added is kept: the node may join
    /// before the next step).
    fn flush_outgoing(&mut self, from: NodeId) {
        let now = self.now;
        let s = from.index() % self.n_shards();
        let mut out = std::mem::take(&mut self.shards[s].scratch_out);
        for (to, msg) in out.drain(..) {
            self.shards[s].metrics.on_send(from, msg.class());
            let d = to.index() % self.n_shards();
            self.shards[d].enqueue(from, to, msg, now);
        }
        self.shards[s].scratch_out = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::DropReason;
    use crate::process::MsgClass;
    use crate::Message;
    use rand::Rng;

    #[derive(Clone, Debug)]
    enum TestMsg {
        Token(u64),
    }

    impl Message for TestMsg {
        fn class(&self) -> MsgClass {
            MsgClass::Publication
        }
    }

    /// Forwards any token to a random other node, recording the trace.
    struct Forwarder {
        n: usize,
        seen: Vec<(Step, u64)>,
    }

    impl Process for Forwarder {
        type Msg = TestMsg;

        fn on_message(&mut self, _from: NodeId, msg: TestMsg, ctx: &mut Context<'_, TestMsg>) {
            let TestMsg::Token(t) = msg;
            self.seen.push((ctx.now(), t));
            if t > 0 {
                let next = NodeId::from_index(ctx.rng().random_range(0..self.n));
                ctx.send(next, TestMsg::Token(t - 1));
            }
        }
    }

    fn run_trace_sharded(seed: u64, shards: usize) -> Vec<Vec<(Step, u64)>> {
        let mut sim = Sim::new_sharded(seed, shards);
        for _ in 0..5 {
            sim.add_node(Forwarder { n: 5, seen: vec![] });
        }
        sim.post(NodeId::from_index(0), TestMsg::Token(20));
        sim.run(30);
        sim.node_ids()
            .into_iter()
            .map(|id| sim.node(id).unwrap().seen.clone())
            .collect()
    }

    fn run_trace(seed: u64) -> Vec<Vec<(Step, u64)>> {
        run_trace_sharded(seed, 1)
    }

    #[test]
    fn deterministic_replay() {
        assert_eq!(run_trace(7), run_trace(7));
        // Different seeds virtually always give different traces.
        assert_ne!(run_trace(7), run_trace(8));
    }

    #[test]
    fn sharded_replay_is_byte_identical() {
        // The tentpole property: the same run on 1, 2, 3 and 4 shards yields
        // the same trace, snapshot and metrics — delivery order included.
        let serial = run_trace_sharded(7, 1);
        for s in 2..=4 {
            assert_eq!(serial, run_trace_sharded(7, s), "diverged at {s} shards");
        }
    }

    #[test]
    fn sharded_replay_matches_under_faults_and_churn() {
        // Same property with loss sampling, a partition window and crashes in
        // the mix: loss draws come from destination-node streams and crash
        // purges are per-shard, so nothing may depend on the layout.
        let run = |shards: usize| {
            let mut sim: Sim<Forwarder> = Sim::new_sharded(11, shards);
            for _ in 0..7 {
                sim.add_node(Forwarder { n: 7, seen: vec![] });
            }
            sim.fault_plan_mut().set_default_loss(0.3);
            sim.fault_plan_mut().add_split(10, 14, 3);
            for i in 0..4 {
                sim.post(NodeId::from_index(i), TestMsg::Token(30));
            }
            sim.run(8);
            sim.crash(NodeId::from_index(2));
            sim.run(22);
            let traces: Vec<_> = sim
                .node_ids()
                .into_iter()
                .map(|id| sim.node(id).unwrap().seen.clone())
                .collect();
            let m = sim.metrics();
            (
                traces,
                sim.snapshot(),
                m.total_sent(MsgClass::Publication),
                m.total_received(MsgClass::Publication),
                m.dropped_for(DropReason::Loss),
                m.dropped_for(DropReason::Partitioned),
                m.dropped_for(DropReason::Crashed),
            )
        };
        let serial = run(1);
        for s in [2, 3, 5] {
            assert_eq!(serial, run(s), "diverged at {s} shards");
        }
    }

    #[test]
    fn unit_latency() {
        let mut sim: Sim<Forwarder> = Sim::new(0);
        let a = sim.add_node(Forwarder { n: 1, seen: vec![] });
        sim.post(a, TestMsg::Token(0));
        assert!(sim.node(a).unwrap().seen.is_empty());
        sim.step();
        assert_eq!(sim.node(a).unwrap().seen, vec![(1, 0)]);
    }

    #[test]
    fn crashed_nodes_receive_nothing() {
        let mut sim: Sim<Forwarder> = Sim::new(0);
        let a = sim.add_node(Forwarder { n: 2, seen: vec![] });
        let b = sim.add_node(Forwarder { n: 2, seen: vec![] });
        sim.crash(b);
        assert!(!sim.is_alive(b));
        assert!(sim.is_alive(a));
        sim.post(b, TestMsg::Token(9));
        sim.run(3);
        assert!(sim.node(b).unwrap().seen.is_empty());
        assert_eq!(sim.snapshot().alive_nodes, 1);
    }

    #[test]
    fn token_is_conserved() {
        // Token starts at 20 and decrements each hop: exactly 21 deliveries total
        // (no loss without crashes, no duplication).
        let traces = run_trace(3);
        let total: usize = traces.iter().map(Vec::len).sum();
        assert_eq!(total, 21);
    }

    #[test]
    fn metrics_count_sends_and_receives() {
        let mut sim: Sim<Forwarder> = Sim::new(0);
        let a = sim.add_node(Forwarder { n: 1, seen: vec![] });
        sim.post(a, TestMsg::Token(3)); // a sends to itself 3 more times
        sim.run(10);
        let m = sim.metrics();
        assert_eq!(m.total_sent(MsgClass::Publication), 4);
        assert_eq!(m.total_received(MsgClass::Publication), 4);
    }

    #[test]
    fn invoke_runs_in_current_step() {
        let mut sim: Sim<Forwarder> = Sim::new(0);
        let a = sim.add_node(Forwarder { n: 1, seen: vec![] });
        sim.invoke(a, |_proc, ctx| {
            let me = ctx.me();
            ctx.send(me, TestMsg::Token(0));
        });
        sim.step();
        assert_eq!(sim.node(a).unwrap().seen.len(), 1);
        // Invoking a crashed node is a no-op.
        sim.crash(a);
        sim.invoke(a, |_proc, ctx| {
            let me = ctx.me();
            ctx.send(me, TestMsg::Token(0));
        });
        sim.step();
        assert_eq!(sim.node(a).unwrap().seen.len(), 1);
    }

    #[test]
    fn alive_accessors_track_crashes() {
        let mut sim: Sim<Forwarder> = Sim::new_sharded(0, 2);
        let ids: Vec<NodeId> = (0..5)
            .map(|_| sim.add_node(Forwarder { n: 5, seen: vec![] }))
            .collect();
        assert_eq!(sim.alive_count(), 5);
        sim.crash(ids[1]);
        sim.crash(ids[1]); // idempotent
        sim.crash(ids[3]);
        assert_eq!(sim.alive_count(), 3);
        assert_eq!(sim.alive_ids(), vec![ids[0], ids[2], ids[4]]);
        assert_eq!(sim.nth_alive(0), Some(ids[0]));
        assert_eq!(sim.nth_alive(1), Some(ids[2]));
        assert_eq!(sim.nth_alive(2), Some(ids[4]));
        assert_eq!(sim.nth_alive(3), None);
    }

    #[test]
    fn metrics_reset_mid_run_stamps_current_window() {
        let mut sim: Sim<Forwarder> = Sim::new(0);
        let a = sim.add_node(Forwarder { n: 1, seen: vec![] });
        sim.run(25);
        sim.set_metrics_window(10);
        // Traffic recorded between the reset and the next step must land in
        // the window containing `now`, not in a window stamped 0.
        sim.post(a, TestMsg::Token(0));
        sim.run(10);
        let metrics = sim.metrics();
        let windows = metrics.windows();
        let traffic: Vec<_> = windows
            .iter()
            .filter(|(_, per_node)| per_node.iter().any(|c| c.sent != [0; 3]))
            .collect();
        assert_eq!(traffic.len(), 1);
        assert_eq!(traffic[0].0, 20); // the window [20, 30) contains now = 25
    }

    #[test]
    fn crash_purges_queued_messages_and_in_flight() {
        // `in_flight` must count deliverable messages only, so drain loops
        // that poll `in_flight == 0` terminate.
        let mut sim: Sim<Forwarder> = Sim::new(0);
        let a = sim.add_node(Forwarder { n: 2, seen: vec![] });
        let b = sim.add_node(Forwarder { n: 2, seen: vec![] });
        sim.post(b, TestMsg::Token(0));
        sim.post(b, TestMsg::Token(0));
        assert_eq!(sim.snapshot().in_flight, 2);
        sim.crash(b);
        assert_eq!(sim.snapshot().in_flight, 0);
        assert_eq!(
            sim.metrics()
                .dropped(DropReason::Crashed, MsgClass::Publication),
            2
        );
        // Sends addressed to an already-crashed node never enter the queue.
        sim.invoke(a, |_proc, ctx| ctx.send(b, TestMsg::Token(0)));
        assert_eq!(sim.snapshot().in_flight, 0);
        assert_eq!(
            sim.metrics()
                .dropped(DropReason::Crashed, MsgClass::Publication),
            3
        );
        sim.run(3);
        assert!(sim.node(b).unwrap().seen.is_empty());
    }

    #[test]
    fn partition_severs_cross_side_links_until_heal() {
        let mut sim: Sim<Forwarder> = Sim::new(0);
        let a = sim.add_node(Forwarder { n: 2, seen: vec![] });
        let b = sim.add_node(Forwarder { n: 2, seen: vec![] });
        sim.fault_plan_mut().add_split(0, u64::MAX, 1); // a | b
        sim.invoke(a, |_proc, ctx| ctx.send(b, TestMsg::Token(0)));
        sim.invoke(b, |_proc, ctx| ctx.send(a, TestMsg::Token(0)));
        sim.invoke(a, |_proc, ctx| {
            let me = ctx.me();
            ctx.send(me, TestMsg::Token(0)); // same side: delivered
        });
        sim.run(2);
        assert!(sim.node(b).unwrap().seen.is_empty());
        assert_eq!(sim.node(a).unwrap().seen.len(), 1);
        assert_eq!(sim.metrics().dropped_for(DropReason::Partitioned), 2);
        // Heal: cross-side traffic flows again.
        let now = sim.now();
        sim.fault_plan_mut().heal_at(now);
        sim.invoke(a, |_proc, ctx| ctx.send(b, TestMsg::Token(0)));
        sim.run(2);
        assert_eq!(sim.node(b).unwrap().seen.len(), 1);
        assert_eq!(sim.metrics().dropped_for(DropReason::Partitioned), 2);
    }

    #[test]
    fn oneway_split_severs_one_direction_only() {
        // The asymmetric cut: low -> high drops, high -> low still delivers.
        let mut sim: Sim<Forwarder> = Sim::new(0);
        let a = sim.add_node(Forwarder { n: 2, seen: vec![] });
        let b = sim.add_node(Forwarder { n: 2, seen: vec![] });
        sim.fault_plan_mut().add_split_oneway(0, u64::MAX, 1, true);
        sim.invoke(a, |_proc, ctx| ctx.send(b, TestMsg::Token(0))); // low -> high: cut
        sim.invoke(b, |_proc, ctx| ctx.send(a, TestMsg::Token(0))); // high -> low: open
        sim.run(2);
        assert!(
            sim.node(b).unwrap().seen.is_empty(),
            "low->high crossed a one-way cut"
        );
        assert_eq!(
            sim.node(a).unwrap().seen.len(),
            1,
            "high->low must stay open"
        );
        assert_eq!(sim.metrics().dropped_for(DropReason::Partitioned), 1);
        // Heal, then cut the other direction.
        let now = sim.now();
        sim.fault_plan_mut().heal_at(now);
        sim.fault_plan_mut()
            .add_split_oneway(now, u64::MAX, 1, false);
        sim.invoke(a, |_proc, ctx| ctx.send(b, TestMsg::Token(0)));
        sim.invoke(b, |_proc, ctx| ctx.send(a, TestMsg::Token(0)));
        sim.run(2);
        assert_eq!(sim.node(b).unwrap().seen.len(), 1);
        assert_eq!(sim.node(a).unwrap().seen.len(), 1);
    }

    #[test]
    fn total_loss_drops_everything_deterministically() {
        let run = |rate: f64| {
            let mut sim: Sim<Forwarder> = Sim::new(5);
            let a = sim.add_node(Forwarder { n: 2, seen: vec![] });
            let b = sim.add_node(Forwarder { n: 2, seen: vec![] });
            sim.fault_plan_mut().set_default_loss(rate);
            for _ in 0..20 {
                sim.invoke(a, |_proc, ctx| ctx.send(b, TestMsg::Token(0)));
                sim.step();
            }
            (
                sim.node(b).unwrap().seen.len(),
                sim.metrics().dropped_for(DropReason::Loss),
            )
        };
        assert_eq!(run(1.0), (0, 20));
        assert_eq!(run(0.0), (20, 0));
        let (got, lost) = run(0.5);
        assert_eq!(got as u64 + lost, 20);
        assert!(lost > 0 && got > 0, "0.5 loss should drop some, not all");
        // Same seed, same faults: byte-identical outcome.
        assert_eq!(run(0.5), run(0.5));
    }

    #[test]
    fn fault_free_replay_is_untouched_by_trivial_plans() {
        // A plan with only zero-rate loss rules must not perturb any RNG
        // stream: the trace equals the plain run's.
        let with_plan = |trivial: bool| {
            let mut sim = Sim::new(7);
            for _ in 0..5 {
                sim.add_node(Forwarder { n: 5, seen: vec![] });
            }
            if trivial {
                sim.fault_plan_mut().set_default_loss(0.0);
            }
            sim.post(NodeId::from_index(0), TestMsg::Token(20));
            sim.run(30);
            sim.node_ids()
                .into_iter()
                .map(|id| sim.node(id).unwrap().seen.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(with_plan(true), with_plan(false));
    }

    /// Records every delivery as `(step, sender, tag)` — the probe for the
    /// event-queue ordering and latency tests below.
    struct Recorder {
        peers: Vec<NodeId>,
        log: Vec<(Step, usize, u64)>,
    }

    impl Message for (u64,) {
        fn class(&self) -> MsgClass {
            MsgClass::Management
        }
    }

    impl Process for Recorder {
        type Msg = (u64,);

        fn on_message(&mut self, from: NodeId, msg: (u64,), ctx: &mut Context<'_, (u64,)>) {
            self.log.push((ctx.now(), from.index(), msg.0));
            // A trigger message (tag < 100) makes this node fan its tag out
            // to every peer from the deliver phase.
            if msg.0 < 100 {
                for p in self.peers.clone() {
                    ctx.send(p, (100 + msg.0,));
                }
            }
        }

        fn on_tick(&mut self, ctx: &mut Context<'_, (u64,)>) {
            // Every node also sends a tick-tagged message to every peer at
            // step 1, so deliver-phase and tick-phase sends share timestamps.
            if ctx.now() == 1 {
                for p in self.peers.clone() {
                    ctx.send(p, (200,));
                }
            }
        }
    }

    #[test]
    fn same_timestamp_orders_deliver_before_tick_then_sender_then_send_order() {
        // Nodes 0 and 1 each receive a trigger at step 1; both then send to
        // node 2 from the deliver phase, and all three nodes send to node 2
        // from the tick phase of the same step. Everything lands at step 2
        // with unit latency, so node 2's log pins the tie-break order:
        // deliver-phase sends first (ascending sender), then tick-phase
        // sends (ascending sender). The order must not depend on the layout.
        let run = |shards: usize| {
            let mut sim: Sim<Recorder> = Sim::new_sharded(3, shards);
            let mk = |peers: Vec<NodeId>| Recorder { peers, log: vec![] };
            let sink = NodeId::from_index(2);
            sim.add_node(mk(vec![sink]));
            sim.add_node(mk(vec![sink]));
            sim.add_node(mk(vec![]));
            sim.post(NodeId::from_index(0), (0,));
            sim.post(NodeId::from_index(1), (1,));
            sim.run(3);
            sim.node(sink).unwrap().log.clone()
        };
        let serial = run(1);
        assert_eq!(
            serial,
            vec![
                (2, 0, 100), // deliver-phase, sender 0
                (2, 1, 101), // deliver-phase, sender 1
                (2, 0, 200), // tick-phase, sender 0
                (2, 1, 200), // tick-phase, sender 1
            ]
        );
        for s in [2, 3] {
            assert_eq!(serial, run(s), "tie-break order diverged at {s} shards");
        }
    }

    #[test]
    fn sampled_latency_defers_delivery_to_the_drawn_step() {
        // A point-range model: always draws, always 3. A message posted at
        // step 0 is delivered at step 3, not step 1.
        let mut sim: Sim<Recorder> = Sim::new(0);
        sim.set_latency(LatencyModel::Uniform { min: 3, max: 3 });
        let a = sim.add_node(Recorder {
            peers: vec![],
            log: vec![],
        });
        sim.post(a, (100,));
        sim.run(2);
        assert!(sim.node(a).unwrap().log.is_empty());
        assert_eq!(sim.snapshot().in_flight, 1);
        sim.step();
        assert_eq!(sim.node(a).unwrap().log, vec![(3, 0, 100)]);
        assert_eq!(sim.snapshot().in_flight, 0);
    }

    #[test]
    fn unit_and_point_uniform_runs_are_byte_identical() {
        // Uniform{1,1} exercises the real sampling + wheel machinery but
        // every draw yields 1 — the run must be observationally identical to
        // the draw-free unit model (protocol streams are untouched by the
        // dedicated latency streams).
        let run = |model: Option<LatencyModel>, shards: usize| {
            let mut sim = Sim::new_sharded(7, shards);
            if let Some(m) = model {
                sim.set_latency(m);
            }
            for _ in 0..5 {
                sim.add_node(Forwarder { n: 5, seen: vec![] });
            }
            sim.post(NodeId::from_index(0), TestMsg::Token(20));
            sim.run(30);
            let traces: Vec<_> = sim
                .node_ids()
                .into_iter()
                .map(|id| sim.node(id).unwrap().seen.clone())
                .collect();
            (traces, sim.snapshot())
        };
        for shards in [1, 2, 4] {
            assert_eq!(
                run(None, shards),
                run(Some(LatencyModel::Uniform { min: 1, max: 1 }), shards),
                "unit vs point-uniform diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn nonunit_latency_replays_byte_identically_across_shards() {
        // The tentpole determinism property under real latency spread: the
        // per-destination latency streams are consumed in the canonical
        // enqueue order, so the sharded run equals the serial one.
        let run = |shards: usize| {
            let mut sim: Sim<Forwarder> = Sim::new_sharded(13, shards);
            sim.set_latency(LatencyModel::Bimodal {
                fast: (1, 2),
                slow: (5, 9),
                slow_weight: 0.25,
            });
            for _ in 0..7 {
                sim.add_node(Forwarder { n: 7, seen: vec![] });
            }
            sim.fault_plan_mut().set_default_loss(0.2);
            for i in 0..4 {
                sim.post(NodeId::from_index(i), TestMsg::Token(30));
            }
            sim.run(10);
            sim.crash(NodeId::from_index(3));
            sim.run(60);
            let traces: Vec<_> = sim
                .node_ids()
                .into_iter()
                .map(|id| sim.node(id).unwrap().seen.clone())
                .collect();
            (traces, sim.snapshot(), sim.metrics().total_dropped())
        };
        let serial = run(1);
        for s in [2, 3, 4] {
            assert_eq!(serial, run(s), "diverged at {s} shards");
        }
    }

    #[test]
    fn classed_latency_respects_destination_classes() {
        // Class 0 (even ids): latency 1. Class 1 (odd ids): exactly 4.
        let mut sim: Sim<Recorder> = Sim::new(0);
        sim.set_latency(LatencyModel::Classed {
            classes: vec![(1, 1), (4, 4)],
        });
        let mk = || Recorder {
            peers: vec![],
            log: vec![],
        };
        let even = sim.add_node(mk());
        let odd = sim.add_node(mk());
        sim.post(even, (100,));
        sim.post(odd, (100,));
        sim.run(6);
        assert_eq!(sim.node(even).unwrap().log, vec![(1, 0, 100)]);
        assert_eq!(sim.node(odd).unwrap().log, vec![(4, 1, 100)]);
    }

    #[test]
    fn crash_purges_messages_across_all_wheel_slots() {
        let mut sim: Sim<Recorder> = Sim::new(0);
        sim.set_latency(LatencyModel::Uniform { min: 2, max: 6 });
        let a = sim.add_node(Recorder {
            peers: vec![],
            log: vec![],
        });
        let b = sim.add_node(Recorder {
            peers: vec![],
            log: vec![],
        });
        let _ = a;
        for _ in 0..8 {
            sim.post(b, (100,));
        }
        assert_eq!(sim.snapshot().in_flight, 8);
        sim.crash(b);
        assert_eq!(sim.snapshot().in_flight, 0);
        sim.run(8);
        assert!(sim.node(b).unwrap().log.is_empty());
    }

    #[test]
    #[should_panic(expected = "set_latency must be called before the first step")]
    fn set_latency_after_a_step_panics() {
        let mut sim: Sim<Recorder> = Sim::new(0);
        sim.step();
        sim.set_latency(LatencyModel::Uniform { min: 1, max: 2 });
    }

    #[test]
    #[should_panic(expected = "invalid latency model")]
    fn set_latency_rejects_bad_models() {
        let mut sim: Sim<Recorder> = Sim::new(0);
        sim.set_latency(LatencyModel::Uniform { min: 0, max: 2 });
    }

    #[test]
    fn messages_to_future_nodes_reach_them_once_added() {
        // A message can be addressed to a node that joins before the next
        // step; the bucket queue must deliver it whatever shard the joiner
        // lands on.
        for shards in [1, 2] {
            let mut sim: Sim<Forwarder> = Sim::new_sharded(0, shards);
            let a = sim.add_node(Forwarder { n: 1, seen: vec![] });
            let _ = a;
            let future = NodeId::from_index(1);
            sim.post(future, TestMsg::Token(0));
            let b = sim.add_node(Forwarder { n: 2, seen: vec![] });
            assert_eq!(b, future);
            sim.step();
            assert_eq!(sim.node(b).unwrap().seen, vec![(1, 0)]);
        }
    }
}
