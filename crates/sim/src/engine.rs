//! The simulation engine: step loop, message queues, node lifecycle.
//!
//! The step loop is the hot path of every experiment, so it is written to be
//! allocation-free in steady state: messages live in per-destination buckets
//! that are double-buffered across steps (no global sort), and handler output
//! goes through one reusable scratch buffer instead of a fresh `Vec` per call.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fault::FaultPlan;
use crate::metrics::{DropReason, Metrics};
use crate::process::{Context, Message, NodeId, Process, Step};

struct Slot<P> {
    proc: P,
    alive: bool,
}

/// A queued message: the sender and the payload. The destination is implicit in
/// the bucket the message sits in.
struct Inflight<M> {
    from: NodeId,
    msg: M,
}

/// A deterministic cycle-based simulator over a protocol `P`.
///
/// See the [crate docs](crate) for the execution model. The engine is generic: the
/// DPS overlay, the broadcast baseline and the test protocols all run on it
/// unchanged.
pub struct Sim<P: Process> {
    nodes: Vec<Slot<P>>,
    alive_count: usize,
    now: Step,
    /// Messages to deliver at step `now + 1`, bucketed by destination index.
    /// Delivering bucket-by-bucket in index order reproduces exactly the order
    /// of the former global `sort_by_key(|e| e.to)` (stable: send order within
    /// a destination is preserved), without sorting.
    next_inboxes: Vec<Vec<Inflight<P::Msg>>>,
    /// Last step's buckets, drained and kept to be swapped back in next step
    /// (the other half of the double buffer; retains per-bucket capacity).
    spare_inboxes: Vec<Vec<Inflight<P::Msg>>>,
    /// Messages currently queued in `next_inboxes`. Counts deliverable
    /// messages only: sends to already-crashed nodes are dropped at enqueue
    /// time and a crash purges the victim's queued bucket, so drain loops can
    /// poll `in_flight == 0` without overrunning.
    in_flight: usize,
    /// Reusable buffer behind [`Context::send`]; drained after every handler.
    scratch_out: Vec<(NodeId, P::Msg)>,
    /// Link-fault schedule (partitions, lossy links), enforced at delivery.
    fault: FaultPlan,
    rng: StdRng,
    metrics: Metrics,
}

/// A cheap copyable summary of the state of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimSnapshot {
    /// Current step.
    pub now: Step,
    /// Nodes ever added.
    pub total_nodes: usize,
    /// Nodes currently alive.
    pub alive_nodes: usize,
    /// Deliverable messages waiting for the next step (messages queued to
    /// nodes that have since crashed are purged and not counted).
    pub in_flight: usize,
}

impl<P: Process> Sim<P> {
    /// Creates an empty simulation with the given RNG seed. Two runs with the same
    /// seed and the same sequence of calls produce identical traces.
    pub fn new(seed: u64) -> Self {
        Sim {
            nodes: Vec::new(),
            alive_count: 0,
            now: 0,
            next_inboxes: Vec::new(),
            spare_inboxes: Vec::new(),
            in_flight: 0,
            scratch_out: Vec::new(),
            fault: FaultPlan::none(),
            rng: StdRng::seed_from_u64(seed),
            metrics: Metrics::new(100),
        }
    }

    /// The link-fault schedule in force (default: no faults).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault
    }

    /// Mutable access to the fault schedule: scenario drivers start
    /// partitions, heal them and set loss rates through this.
    pub fn fault_plan_mut(&mut self) -> &mut FaultPlan {
        &mut self.fault
    }

    /// Replaces the fault schedule wholesale.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = plan;
    }

    /// Sets the metrics window length in steps (default 100, the sampling period
    /// used throughout the paper's §5.2.1). Resets collected metrics.
    pub fn set_metrics_window(&mut self, steps: Step) {
        self.metrics = Metrics::new(steps);
        // Align the fresh collector with the current step: rolling is otherwise
        // only done once per step(), so traffic recorded before the next step
        // would be stamped into the window starting at 0.
        self.metrics.roll_to(self.now);
    }

    /// Adds a node running `proc`; `on_start` fires immediately (its sends are
    /// delivered at the next step). Returns the new node's id.
    pub fn add_node(&mut self, proc: P) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Slot { proc, alive: true });
        self.alive_count += 1;
        if self.next_inboxes.len() < self.nodes.len() {
            self.next_inboxes.resize_with(self.nodes.len(), Vec::new);
        }
        let mut ctx = Context {
            me: id,
            now: self.now,
            rng: &mut self.rng,
            out: &mut self.scratch_out,
        };
        self.nodes[id.index()].proc.on_start(&mut ctx);
        self.flush_outgoing(id);
        id
    }

    /// Crashes a node: it stops processing and all messages addressed to it are
    /// dropped. Idempotent. Crashing is silent — neighbors only find out through
    /// their own failure-detection traffic, as in the paper.
    ///
    /// Messages already queued to the victim are purged immediately (accounted
    /// as [`DropReason::Crashed`]), so [`SimSnapshot::in_flight`] keeps
    /// counting deliverable messages only.
    pub fn crash(&mut self, id: NodeId) {
        if let Some(slot) = self.nodes.get_mut(id.index()) {
            if slot.alive {
                slot.alive = false;
                self.alive_count -= 1;
                if let Some(bucket) = self.next_inboxes.get_mut(id.index()) {
                    for env in bucket.drain(..) {
                        self.metrics.on_drop(DropReason::Crashed, env.msg.class());
                        self.in_flight -= 1;
                    }
                }
            }
        }
    }

    /// Whether `id` is currently alive.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.nodes.get(id.index()).is_some_and(|s| s.alive)
    }

    /// Immutable access to a node's protocol state (alive or crashed).
    pub fn node(&self, id: NodeId) -> Option<&P> {
        self.nodes.get(id.index()).map(|s| &s.proc)
    }

    /// Mutable access to a node's protocol state. Intended for scenario drivers
    /// (e.g. installing a new subscription before the next step), not for
    /// bypassing the message-passing discipline mid-step.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut P> {
        self.nodes.get_mut(id.index()).map(|s| &mut s.proc)
    }

    /// Ids of all nodes ever added, in join order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len()).map(NodeId::from_index).collect()
    }

    /// Iterates over the currently alive node ids, ascending. Allocation-free;
    /// prefer this (or [`alive_count`](Sim::alive_count)/[`nth_alive`](Sim::nth_alive))
    /// over [`alive_ids`](Sim::alive_ids) in per-step loops.
    pub fn alive(&self) -> impl DoubleEndedIterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .map(|(i, _)| NodeId::from_index(i))
    }

    /// Number of currently alive nodes. O(1): maintained incrementally.
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// The `k`-th alive node in ascending id order, if `k < alive_count()`.
    /// Combined with a random `k` this picks a uniform alive node without
    /// materializing the population.
    pub fn nth_alive(&self, k: usize) -> Option<NodeId> {
        self.alive().nth(k)
    }

    /// Ids of the currently alive nodes, ascending.
    pub fn alive_ids(&self) -> Vec<NodeId> {
        self.alive().collect()
    }

    /// Injects an external message to `to`, delivered at the next step, attributed
    /// to the recipient itself (external stimuli such as a user's Publish call).
    pub fn post(&mut self, to: NodeId, msg: P::Msg) {
        self.metrics.on_send(to, msg.class());
        self.push_inflight(to, Inflight { from: to, msg });
    }

    /// Runs the protocol handler `f` on node `id` as if it were executing within
    /// the current step (e.g. the application invoking `Subscribe` or `Publish` on
    /// its local DPS instance). Outgoing messages are queued for the next step.
    pub fn invoke<F>(&mut self, id: NodeId, f: F)
    where
        F: FnOnce(&mut P, &mut Context<'_, P::Msg>),
    {
        if !self.is_alive(id) {
            return;
        }
        let mut ctx = Context {
            me: id,
            now: self.now,
            rng: &mut self.rng,
            out: &mut self.scratch_out,
        };
        f(&mut self.nodes[id.index()].proc, &mut ctx);
        self.flush_outgoing(id);
    }

    /// Current step number (the number of completed [`step`](Sim::step) calls).
    pub fn now(&self) -> Step {
        self.now
    }

    /// Collected traffic metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// A summary snapshot of the run.
    pub fn snapshot(&self) -> SimSnapshot {
        SimSnapshot {
            now: self.now,
            total_nodes: self.nodes.len(),
            alive_nodes: self.alive_count,
            in_flight: self.in_flight,
        }
    }

    /// The simulation-wide RNG (for scenario drivers needing reproducible random
    /// choices, e.g. picking a victim node to crash).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Advances one step: delivers all in-flight messages (in destination-id order,
    /// then send order), then ticks every alive node (in id order).
    pub fn step(&mut self) {
        self.now += 1;
        // The only metrics roll of the step: every send/receive below happens
        // at this `now`, so per-message rolling would be a no-op.
        self.metrics.roll_to(self.now);

        // Swap in the spare buckets to collect this step's sends; deliver from
        // the buckets filled last step. Both buffers keep their per-bucket
        // capacity, so steady-state stepping does not allocate.
        let mut cur = std::mem::take(&mut self.next_inboxes);
        std::mem::swap(&mut self.next_inboxes, &mut self.spare_inboxes);
        if self.next_inboxes.len() < self.nodes.len() {
            self.next_inboxes.resize_with(self.nodes.len(), Vec::new);
        }
        self.in_flight = 0;

        // Fault fast path: both checks hoisted out of the per-message loop so
        // fault-free runs replay byte-identically (no stray RNG draws).
        let partition_active = self.fault.active_partitions(self.now).next().is_some();
        let loss_active = self.fault.has_loss();

        // Deliver.
        for (idx, slot) in cur.iter_mut().enumerate() {
            if slot.is_empty() {
                continue;
            }
            let alive = self.nodes.get(idx).is_some_and(|s| s.alive);
            let to = NodeId::from_index(idx);
            let mut bucket = std::mem::take(slot);
            for Inflight { from, msg } in bucket.drain(..) {
                if !alive {
                    // Crashed nodes receive nothing (the enqueue guard makes
                    // this rare: only a crash() between deliveries within the
                    // same step can still race a queued message here).
                    self.metrics.on_drop(DropReason::Crashed, msg.class());
                    continue;
                }
                if partition_active && self.fault.severed(from, to, self.now) {
                    self.metrics.on_drop(DropReason::Partitioned, msg.class());
                    continue;
                }
                if loss_active {
                    let rate = self.fault.loss_rate(from, to);
                    if rate > 0.0 && self.rng.random::<f64>() < rate {
                        self.metrics.on_drop(DropReason::Loss, msg.class());
                        continue;
                    }
                }
                self.metrics.on_recv(to, msg.class());
                let mut ctx = Context {
                    me: to,
                    now: self.now,
                    rng: &mut self.rng,
                    out: &mut self.scratch_out,
                };
                self.nodes[idx].proc.on_message(from, msg, &mut ctx);
                self.flush_outgoing(to);
            }
            *slot = bucket;
        }
        self.spare_inboxes = cur;

        // Tick.
        for i in 0..self.nodes.len() {
            if !self.nodes[i].alive {
                continue;
            }
            let id = NodeId::from_index(i);
            let mut ctx = Context {
                me: id,
                now: self.now,
                rng: &mut self.rng,
                out: &mut self.scratch_out,
            };
            self.nodes[i].proc.on_tick(&mut ctx);
            self.flush_outgoing(id);
        }
    }

    /// Runs `n` steps.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Drains the scratch outbox into the next-step buckets, accounting sends.
    /// Sends to already-crashed nodes are dropped here instead of queued, so
    /// `in_flight` counts deliverable messages only (a send to a node id not
    /// yet added is kept: the node may join before the next step).
    fn flush_outgoing(&mut self, from: NodeId) {
        // Split borrows: the scratch buffer, metrics and buckets are disjoint.
        let Sim {
            scratch_out,
            metrics,
            next_inboxes,
            in_flight,
            nodes,
            ..
        } = self;
        for (to, msg) in scratch_out.drain(..) {
            metrics.on_send(from, msg.class());
            let idx = to.index();
            if nodes.get(idx).is_some_and(|s| !s.alive) {
                metrics.on_drop(DropReason::Crashed, msg.class());
                continue;
            }
            if idx >= next_inboxes.len() {
                next_inboxes.resize_with(idx + 1, Vec::new);
            }
            next_inboxes[idx].push(Inflight { from, msg });
            *in_flight += 1;
        }
    }

    fn push_inflight(&mut self, to: NodeId, env: Inflight<P::Msg>) {
        let idx = to.index();
        if self.nodes.get(idx).is_some_and(|s| !s.alive) {
            self.metrics.on_drop(DropReason::Crashed, env.msg.class());
            return;
        }
        if idx >= self.next_inboxes.len() {
            self.next_inboxes.resize_with(idx + 1, Vec::new);
        }
        self.next_inboxes[idx].push(env);
        self.in_flight += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::MsgClass;
    use crate::Message;
    use rand::Rng;

    #[derive(Clone, Debug)]
    enum TestMsg {
        Token(u64),
    }

    impl Message for TestMsg {
        fn class(&self) -> MsgClass {
            MsgClass::Publication
        }
    }

    /// Forwards any token to a random other node, recording the trace.
    struct Forwarder {
        n: usize,
        seen: Vec<(Step, u64)>,
    }

    impl Process for Forwarder {
        type Msg = TestMsg;

        fn on_message(&mut self, _from: NodeId, msg: TestMsg, ctx: &mut Context<'_, TestMsg>) {
            let TestMsg::Token(t) = msg;
            self.seen.push((ctx.now(), t));
            if t > 0 {
                let next = NodeId::from_index(ctx.rng().random_range(0..self.n));
                ctx.send(next, TestMsg::Token(t - 1));
            }
        }
    }

    fn run_trace(seed: u64) -> Vec<Vec<(Step, u64)>> {
        let mut sim = Sim::new(seed);
        for _ in 0..5 {
            sim.add_node(Forwarder { n: 5, seen: vec![] });
        }
        sim.post(NodeId::from_index(0), TestMsg::Token(20));
        sim.run(30);
        sim.node_ids()
            .into_iter()
            .map(|id| sim.node(id).unwrap().seen.clone())
            .collect()
    }

    #[test]
    fn deterministic_replay() {
        assert_eq!(run_trace(7), run_trace(7));
        // Different seeds virtually always give different traces.
        assert_ne!(run_trace(7), run_trace(8));
    }

    #[test]
    fn unit_latency() {
        let mut sim: Sim<Forwarder> = Sim::new(0);
        let a = sim.add_node(Forwarder { n: 1, seen: vec![] });
        sim.post(a, TestMsg::Token(0));
        assert!(sim.node(a).unwrap().seen.is_empty());
        sim.step();
        assert_eq!(sim.node(a).unwrap().seen, vec![(1, 0)]);
    }

    #[test]
    fn crashed_nodes_receive_nothing() {
        let mut sim: Sim<Forwarder> = Sim::new(0);
        let a = sim.add_node(Forwarder { n: 2, seen: vec![] });
        let b = sim.add_node(Forwarder { n: 2, seen: vec![] });
        sim.crash(b);
        assert!(!sim.is_alive(b));
        assert!(sim.is_alive(a));
        sim.post(b, TestMsg::Token(9));
        sim.run(3);
        assert!(sim.node(b).unwrap().seen.is_empty());
        assert_eq!(sim.snapshot().alive_nodes, 1);
    }

    #[test]
    fn token_is_conserved() {
        // Token starts at 20 and decrements each hop: exactly 21 deliveries total
        // (no loss without crashes, no duplication).
        let traces = run_trace(3);
        let total: usize = traces.iter().map(Vec::len).sum();
        assert_eq!(total, 21);
    }

    #[test]
    fn metrics_count_sends_and_receives() {
        let mut sim: Sim<Forwarder> = Sim::new(0);
        let a = sim.add_node(Forwarder { n: 1, seen: vec![] });
        sim.post(a, TestMsg::Token(3)); // a sends to itself 3 more times
        sim.run(10);
        let m = sim.metrics();
        assert_eq!(m.total_sent(MsgClass::Publication), 4);
        assert_eq!(m.total_received(MsgClass::Publication), 4);
    }

    #[test]
    fn invoke_runs_in_current_step() {
        let mut sim: Sim<Forwarder> = Sim::new(0);
        let a = sim.add_node(Forwarder { n: 1, seen: vec![] });
        sim.invoke(a, |_proc, ctx| {
            let me = ctx.me();
            ctx.send(me, TestMsg::Token(0));
        });
        sim.step();
        assert_eq!(sim.node(a).unwrap().seen.len(), 1);
        // Invoking a crashed node is a no-op.
        sim.crash(a);
        sim.invoke(a, |_proc, ctx| {
            let me = ctx.me();
            ctx.send(me, TestMsg::Token(0));
        });
        sim.step();
        assert_eq!(sim.node(a).unwrap().seen.len(), 1);
    }

    #[test]
    fn alive_accessors_track_crashes() {
        let mut sim: Sim<Forwarder> = Sim::new(0);
        let ids: Vec<NodeId> = (0..5)
            .map(|_| sim.add_node(Forwarder { n: 5, seen: vec![] }))
            .collect();
        assert_eq!(sim.alive_count(), 5);
        sim.crash(ids[1]);
        sim.crash(ids[1]); // idempotent
        sim.crash(ids[3]);
        assert_eq!(sim.alive_count(), 3);
        assert_eq!(sim.alive_ids(), vec![ids[0], ids[2], ids[4]]);
        assert_eq!(sim.nth_alive(0), Some(ids[0]));
        assert_eq!(sim.nth_alive(1), Some(ids[2]));
        assert_eq!(sim.nth_alive(2), Some(ids[4]));
        assert_eq!(sim.nth_alive(3), None);
    }

    #[test]
    fn metrics_reset_mid_run_stamps_current_window() {
        let mut sim: Sim<Forwarder> = Sim::new(0);
        let a = sim.add_node(Forwarder { n: 1, seen: vec![] });
        sim.run(25);
        sim.set_metrics_window(10);
        // Traffic recorded between the reset and the next step must land in
        // the window containing `now`, not in a window stamped 0.
        sim.post(a, TestMsg::Token(0));
        sim.run(10);
        let windows = sim.metrics().windows();
        let traffic: Vec<_> = windows
            .iter()
            .filter(|(_, per_node)| per_node.iter().any(|c| c.sent != [0; 3]))
            .collect();
        assert_eq!(traffic.len(), 1);
        assert_eq!(traffic[0].0, 20); // the window [20, 30) contains now = 25
    }

    #[test]
    fn crash_purges_queued_messages_and_in_flight() {
        // The satellite fix: `in_flight` must count deliverable messages only,
        // so drain loops that poll `in_flight == 0` terminate.
        let mut sim: Sim<Forwarder> = Sim::new(0);
        let a = sim.add_node(Forwarder { n: 2, seen: vec![] });
        let b = sim.add_node(Forwarder { n: 2, seen: vec![] });
        sim.post(b, TestMsg::Token(0));
        sim.post(b, TestMsg::Token(0));
        assert_eq!(sim.snapshot().in_flight, 2);
        sim.crash(b);
        assert_eq!(sim.snapshot().in_flight, 0);
        assert_eq!(
            sim.metrics()
                .dropped(DropReason::Crashed, MsgClass::Publication),
            2
        );
        // Sends addressed to an already-crashed node never enter the queue.
        sim.invoke(a, |_proc, ctx| ctx.send(b, TestMsg::Token(0)));
        assert_eq!(sim.snapshot().in_flight, 0);
        assert_eq!(
            sim.metrics()
                .dropped(DropReason::Crashed, MsgClass::Publication),
            3
        );
        sim.run(3);
        assert!(sim.node(b).unwrap().seen.is_empty());
    }

    #[test]
    fn partition_severs_cross_side_links_until_heal() {
        let mut sim: Sim<Forwarder> = Sim::new(0);
        let a = sim.add_node(Forwarder { n: 2, seen: vec![] });
        let b = sim.add_node(Forwarder { n: 2, seen: vec![] });
        sim.fault_plan_mut().add_split(0, u64::MAX, 1); // a | b
        sim.invoke(a, |_proc, ctx| ctx.send(b, TestMsg::Token(0)));
        sim.invoke(b, |_proc, ctx| ctx.send(a, TestMsg::Token(0)));
        sim.invoke(a, |_proc, ctx| {
            let me = ctx.me();
            ctx.send(me, TestMsg::Token(0)); // same side: delivered
        });
        sim.run(2);
        assert!(sim.node(b).unwrap().seen.is_empty());
        assert_eq!(sim.node(a).unwrap().seen.len(), 1);
        assert_eq!(sim.metrics().dropped_for(DropReason::Partitioned), 2);
        // Heal: cross-side traffic flows again.
        let now = sim.now();
        sim.fault_plan_mut().heal_at(now);
        sim.invoke(a, |_proc, ctx| ctx.send(b, TestMsg::Token(0)));
        sim.run(2);
        assert_eq!(sim.node(b).unwrap().seen.len(), 1);
        assert_eq!(sim.metrics().dropped_for(DropReason::Partitioned), 2);
    }

    #[test]
    fn total_loss_drops_everything_deterministically() {
        let run = |rate: f64| {
            let mut sim: Sim<Forwarder> = Sim::new(5);
            let a = sim.add_node(Forwarder { n: 2, seen: vec![] });
            let b = sim.add_node(Forwarder { n: 2, seen: vec![] });
            sim.fault_plan_mut().set_default_loss(rate);
            for _ in 0..20 {
                sim.invoke(a, |_proc, ctx| ctx.send(b, TestMsg::Token(0)));
                sim.step();
            }
            (
                sim.node(b).unwrap().seen.len(),
                sim.metrics().dropped_for(DropReason::Loss),
            )
        };
        assert_eq!(run(1.0), (0, 20));
        assert_eq!(run(0.0), (20, 0));
        let (got, lost) = run(0.5);
        assert_eq!(got as u64 + lost, 20);
        assert!(lost > 0 && got > 0, "0.5 loss should drop some, not all");
        // Same seed, same faults: byte-identical outcome.
        assert_eq!(run(0.5), run(0.5));
    }

    #[test]
    fn fault_free_replay_is_untouched_by_trivial_plans() {
        // A plan with only zero-rate loss rules must not perturb the RNG
        // stream: the trace equals the plain run's.
        let with_plan = |trivial: bool| {
            let mut sim = Sim::new(7);
            for _ in 0..5 {
                sim.add_node(Forwarder { n: 5, seen: vec![] });
            }
            if trivial {
                sim.fault_plan_mut().set_default_loss(0.0);
            }
            sim.post(NodeId::from_index(0), TestMsg::Token(20));
            sim.run(30);
            sim.node_ids()
                .into_iter()
                .map(|id| sim.node(id).unwrap().seen.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(with_plan(true), with_plan(false));
    }

    #[test]
    fn messages_to_future_nodes_reach_them_once_added() {
        // A message can be addressed to a node that joins before the next step;
        // the bucket queue must deliver it exactly like the old global queue.
        let mut sim: Sim<Forwarder> = Sim::new(0);
        let a = sim.add_node(Forwarder { n: 1, seen: vec![] });
        let _ = a;
        let future = NodeId::from_index(1);
        sim.post(future, TestMsg::Token(0));
        let b = sim.add_node(Forwarder { n: 2, seen: vec![] });
        assert_eq!(b, future);
        sim.step();
        assert_eq!(sim.node(b).unwrap().seen, vec![(1, 0)]);
    }
}
