//! The simulation engine: step loop, message queues, node lifecycle.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::metrics::Metrics;
use crate::process::{Context, Message, NodeId, Process, Step};

struct Slot<P> {
    proc: P,
    alive: bool,
}

struct Envelope<M> {
    from: NodeId,
    to: NodeId,
    msg: M,
}

/// A deterministic cycle-based simulator over a protocol `P`.
///
/// See the [crate docs](crate) for the execution model. The engine is generic: the
/// DPS overlay, the broadcast baseline and the test protocols all run on it
/// unchanged.
pub struct Sim<P: Process> {
    nodes: Vec<Slot<P>>,
    now: Step,
    /// Messages to deliver at step `now + 1`.
    next_inbox: Vec<Envelope<P::Msg>>,
    rng: StdRng,
    metrics: Metrics,
}

/// A cheap copyable summary of the state of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimSnapshot {
    /// Current step.
    pub now: Step,
    /// Nodes ever added.
    pub total_nodes: usize,
    /// Nodes currently alive.
    pub alive_nodes: usize,
    /// Messages waiting for the next step.
    pub in_flight: usize,
}

impl<P: Process> Sim<P> {
    /// Creates an empty simulation with the given RNG seed. Two runs with the same
    /// seed and the same sequence of calls produce identical traces.
    pub fn new(seed: u64) -> Self {
        Sim {
            nodes: Vec::new(),
            now: 0,
            next_inbox: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            metrics: Metrics::new(100),
        }
    }

    /// Sets the metrics window length in steps (default 100, the sampling period
    /// used throughout the paper's §5.2.1). Resets collected metrics.
    pub fn set_metrics_window(&mut self, steps: Step) {
        self.metrics = Metrics::new(steps);
    }

    /// Adds a node running `proc`; `on_start` fires immediately (its sends are
    /// delivered at the next step). Returns the new node's id.
    pub fn add_node(&mut self, proc: P) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Slot { proc, alive: true });
        let mut ctx = Context {
            me: id,
            now: self.now,
            rng: &mut self.rng,
            out: Vec::new(),
        };
        self.nodes[id.index()].proc.on_start(&mut ctx);
        let out = ctx.out;
        self.queue_outgoing(id, out);
        id
    }

    /// Crashes a node: it stops processing and all messages addressed to it are
    /// dropped. Idempotent. Crashing is silent — neighbors only find out through
    /// their own failure-detection traffic, as in the paper.
    pub fn crash(&mut self, id: NodeId) {
        if let Some(slot) = self.nodes.get_mut(id.index()) {
            slot.alive = false;
        }
    }

    /// Whether `id` is currently alive.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.nodes.get(id.index()).is_some_and(|s| s.alive)
    }

    /// Immutable access to a node's protocol state (alive or crashed).
    pub fn node(&self, id: NodeId) -> Option<&P> {
        self.nodes.get(id.index()).map(|s| &s.proc)
    }

    /// Mutable access to a node's protocol state. Intended for scenario drivers
    /// (e.g. installing a new subscription before the next step), not for
    /// bypassing the message-passing discipline mid-step.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut P> {
        self.nodes.get_mut(id.index()).map(|s| &mut s.proc)
    }

    /// Ids of all nodes ever added, in join order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len()).map(NodeId::from_index).collect()
    }

    /// Ids of the currently alive nodes, ascending.
    pub fn alive_ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|i| self.nodes[*i].alive)
            .map(NodeId::from_index)
            .collect()
    }

    /// Injects an external message to `to`, delivered at the next step, attributed
    /// to the recipient itself (external stimuli such as a user's Publish call).
    pub fn post(&mut self, to: NodeId, msg: P::Msg) {
        self.metrics.on_send(self.now, to, msg.class());
        self.next_inbox.push(Envelope { from: to, to, msg });
    }

    /// Runs the protocol handler `f` on node `id` as if it were executing within
    /// the current step (e.g. the application invoking `Subscribe` or `Publish` on
    /// its local DPS instance). Outgoing messages are queued for the next step.
    pub fn invoke<F>(&mut self, id: NodeId, f: F)
    where
        F: FnOnce(&mut P, &mut Context<'_, P::Msg>),
    {
        if !self.is_alive(id) {
            return;
        }
        let mut ctx = Context {
            me: id,
            now: self.now,
            rng: &mut self.rng,
            out: Vec::new(),
        };
        f(&mut self.nodes[id.index()].proc, &mut ctx);
        let out = ctx.out;
        self.queue_outgoing(id, out);
    }

    /// Current step number (the number of completed [`step`](Sim::step) calls).
    pub fn now(&self) -> Step {
        self.now
    }

    /// Collected traffic metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// A summary snapshot of the run.
    pub fn snapshot(&self) -> SimSnapshot {
        SimSnapshot {
            now: self.now,
            total_nodes: self.nodes.len(),
            alive_nodes: self.nodes.iter().filter(|s| s.alive).count(),
            in_flight: self.next_inbox.len(),
        }
    }

    /// The simulation-wide RNG (for scenario drivers needing reproducible random
    /// choices, e.g. picking a victim node to crash).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Advances one step: delivers all in-flight messages (in destination-id order,
    /// then send order), then ticks every alive node (in id order).
    pub fn step(&mut self) {
        self.now += 1;
        self.metrics.roll_to(self.now);

        // Deliver. Stable sort keeps send order among messages to one node.
        let mut inbox = std::mem::take(&mut self.next_inbox);
        inbox.sort_by_key(|e| e.to);
        for env in inbox {
            let Envelope { from, to, msg } = env;
            let Some(slot) = self.nodes.get_mut(to.index()) else {
                continue;
            };
            if !slot.alive {
                continue; // dropped: crashed nodes receive nothing
            }
            self.metrics.on_recv(self.now, to, msg.class());
            let mut ctx = Context {
                me: to,
                now: self.now,
                rng: &mut self.rng,
                out: Vec::new(),
            };
            slot.proc.on_message(from, msg, &mut ctx);
            let out = ctx.out;
            self.queue_outgoing(to, out);
        }

        // Tick.
        for i in 0..self.nodes.len() {
            if !self.nodes[i].alive {
                continue;
            }
            let id = NodeId::from_index(i);
            let mut ctx = Context {
                me: id,
                now: self.now,
                rng: &mut self.rng,
                out: Vec::new(),
            };
            self.nodes[i].proc.on_tick(&mut ctx);
            let out = ctx.out;
            self.queue_outgoing(id, out);
        }
    }

    /// Runs `n` steps.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    fn queue_outgoing(&mut self, from: NodeId, out: Vec<(NodeId, P::Msg)>) {
        for (to, msg) in out {
            self.metrics.on_send(self.now, from, msg.class());
            self.next_inbox.push(Envelope { from, to, msg });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::MsgClass;
    use crate::Message;
    use rand::Rng;

    #[derive(Clone, Debug)]
    enum TestMsg {
        Token(u64),
    }

    impl Message for TestMsg {
        fn class(&self) -> MsgClass {
            MsgClass::Publication
        }
    }

    /// Forwards any token to a random other node, recording the trace.
    struct Forwarder {
        n: usize,
        seen: Vec<(Step, u64)>,
    }

    impl Process for Forwarder {
        type Msg = TestMsg;

        fn on_message(&mut self, _from: NodeId, msg: TestMsg, ctx: &mut Context<'_, TestMsg>) {
            let TestMsg::Token(t) = msg;
            self.seen.push((ctx.now(), t));
            if t > 0 {
                let next = NodeId::from_index(ctx.rng().random_range(0..self.n));
                ctx.send(next, TestMsg::Token(t - 1));
            }
        }
    }

    fn run_trace(seed: u64) -> Vec<Vec<(Step, u64)>> {
        let mut sim = Sim::new(seed);
        for _ in 0..5 {
            sim.add_node(Forwarder { n: 5, seen: vec![] });
        }
        sim.post(NodeId::from_index(0), TestMsg::Token(20));
        sim.run(30);
        sim.node_ids()
            .into_iter()
            .map(|id| sim.node(id).unwrap().seen.clone())
            .collect()
    }

    #[test]
    fn deterministic_replay() {
        assert_eq!(run_trace(7), run_trace(7));
        // Different seeds virtually always give different traces.
        assert_ne!(run_trace(7), run_trace(8));
    }

    #[test]
    fn unit_latency() {
        let mut sim: Sim<Forwarder> = Sim::new(0);
        let a = sim.add_node(Forwarder { n: 1, seen: vec![] });
        sim.post(a, TestMsg::Token(0));
        assert!(sim.node(a).unwrap().seen.is_empty());
        sim.step();
        assert_eq!(sim.node(a).unwrap().seen, vec![(1, 0)]);
    }

    #[test]
    fn crashed_nodes_receive_nothing() {
        let mut sim: Sim<Forwarder> = Sim::new(0);
        let a = sim.add_node(Forwarder { n: 2, seen: vec![] });
        let b = sim.add_node(Forwarder { n: 2, seen: vec![] });
        sim.crash(b);
        assert!(!sim.is_alive(b));
        assert!(sim.is_alive(a));
        sim.post(b, TestMsg::Token(9));
        sim.run(3);
        assert!(sim.node(b).unwrap().seen.is_empty());
        assert_eq!(sim.snapshot().alive_nodes, 1);
    }

    #[test]
    fn token_is_conserved() {
        // Token starts at 20 and decrements each hop: exactly 21 deliveries total
        // (no loss without crashes, no duplication).
        let traces = run_trace(3);
        let total: usize = traces.iter().map(Vec::len).sum();
        assert_eq!(total, 21);
    }

    #[test]
    fn metrics_count_sends_and_receives() {
        let mut sim: Sim<Forwarder> = Sim::new(0);
        let a = sim.add_node(Forwarder { n: 1, seen: vec![] });
        sim.post(a, TestMsg::Token(3)); // a sends to itself 3 more times
        sim.run(10);
        let m = sim.metrics();
        assert_eq!(m.total_sent(MsgClass::Publication), 4);
        assert_eq!(m.total_received(MsgClass::Publication), 4);
    }

    #[test]
    fn invoke_runs_in_current_step() {
        let mut sim: Sim<Forwarder> = Sim::new(0);
        let a = sim.add_node(Forwarder { n: 1, seen: vec![] });
        sim.invoke(a, |_proc, ctx| {
            let me = ctx.me();
            ctx.send(me, TestMsg::Token(0));
        });
        sim.step();
        assert_eq!(sim.node(a).unwrap().seen.len(), 1);
        // Invoking a crashed node is a no-op.
        sim.crash(a);
        sim.invoke(a, |_proc, ctx| {
            let me = ctx.me();
            ctx.send(me, TestMsg::Token(0));
        });
        sim.step();
        assert_eq!(sim.node(a).unwrap().seen.len(), 1);
    }
}
