//! Per-node, per-class, per-window traffic accounting.
//!
//! The paper's Figures 3(c)–3(g) all plot statistics of the form "number of
//! messages sent/received by the median (or most loaded) node, sampled during a
//! period of 100 steps". [`Metrics`] keeps exactly that: counters per `(node,
//! class, direction)` for the current window, snapshotting them when the window
//! rolls over, and offers median/max/mean summaries over any subset of classes.
//!
//! Counters are dense `Vec<ClassCounts>` indexed by [`NodeId::index`] (node ids
//! are dense join-order indices), so the per-message hot path is two array
//! increments — no hashing. Window rolling is hoisted out of the per-message
//! path: the engine calls [`Metrics::roll_to`] once per step.

use serde::Serialize;

use crate::process::{MsgClass, NodeId, Step};

/// Sent/received counters for the three message classes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ClassCounts {
    /// Messages sent, indexed by [`MsgClass::index`].
    pub sent: [u64; 3],
    /// Messages received, indexed by [`MsgClass::index`].
    pub recv: [u64; 3],
}

impl ClassCounts {
    /// Total sent over the given classes.
    pub fn sent_in(&self, classes: &[MsgClass]) -> u64 {
        classes.iter().map(|c| self.sent[c.index()]).sum()
    }

    /// Total received over the given classes.
    pub fn recv_in(&self, classes: &[MsgClass]) -> u64 {
        classes.iter().map(|c| self.recv[c.index()]).sum()
    }

    fn is_zero(&self) -> bool {
        self.sent == [0; 3] && self.recv == [0; 3]
    }
}

/// Why the engine dropped a message instead of delivering it. Drops are a
/// counter class of their own in [`Metrics`]: faults are first-class,
/// observable events, not silent message loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum DropReason {
    /// The destination node was crashed.
    Crashed,
    /// An active partition severed the link (see
    /// [`FaultPlan`](crate::FaultPlan)).
    Partitioned,
    /// The link's loss rate sampled a drop.
    Loss,
}

impl DropReason {
    /// All reasons, in a fixed order (used for array indexing).
    pub const ALL: [DropReason; 3] = [
        DropReason::Crashed,
        DropReason::Partitioned,
        DropReason::Loss,
    ];

    /// Dense index of the reason.
    pub fn index(self) -> usize {
        match self {
            DropReason::Crashed => 0,
            DropReason::Partitioned => 1,
            DropReason::Loss => 2,
        }
    }
}

/// An accumulator of publish→deliver latency samples (in steps), summarized
/// into the percentiles production asks of a pub/sub system.
///
/// Samples are recorded by the measurement layer (e.g. the `dps` facade,
/// which computes `first-notify step − publish step` per `(publication,
/// subscriber)` pair) and summarized with the **nearest-rank** method — a
/// percentile is always an observed sample, never an interpolation, which
/// keeps summaries byte-stable across platforms.
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    samples: Vec<u64>,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one latency sample (steps from publish to first delivery).
    pub fn record(&mut self, latency: u64) {
        self.samples.push(latency);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Folds another histogram's samples into this one.
    pub fn absorb(&mut self, other: &LatencyHistogram) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Summarizes the samples into nearest-rank percentiles. An empty
    /// histogram summarizes to all zeros with `samples == 0` — callers that
    /// must distinguish "no traffic" from "instant" check the count.
    pub fn summary(&self) -> LatencySummary {
        if self.samples.is_empty() {
            return LatencySummary::default();
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let nearest = |q_num: usize, q_den: usize| -> u64 {
            // Nearest-rank in integer arithmetic: rank = ceil(q * n), 1-based.
            let n = sorted.len();
            let rank = (q_num * n).div_ceil(q_den).max(1);
            sorted[rank - 1]
        };
        LatencySummary {
            samples: sorted.len() as u64,
            p50: nearest(1, 2) as f64,
            p99: nearest(99, 100) as f64,
            p999: nearest(999, 1000) as f64,
            max: *sorted.last().unwrap() as f64,
            mean: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64,
        }
    }
}

/// Nearest-rank percentile summary of a [`LatencyHistogram`], in steps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct LatencySummary {
    /// Number of samples behind the summary (0 means every field is 0 and
    /// means nothing).
    pub samples: u64,
    /// Median publish→deliver latency.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
    /// Worst observed sample.
    pub max: f64,
    /// Mean over all samples.
    pub mean: f64,
}

/// Median / max / mean summary of a per-node quantity within one window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct Stat {
    /// Value at the median node (the node with less than half and more than half —
    /// the paper's definition).
    pub median: f64,
    /// Value at the most loaded node.
    pub max: f64,
    /// Mean over nodes.
    pub mean: f64,
}

/// A summary for one completed window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct WindowStat {
    /// First step of the window.
    pub start: Step,
    /// Summary over the nodes active in the window.
    pub stat: Stat,
}

/// Traffic metrics collector. See the module docs.
///
/// Under the sharded engine each shard keeps a `Metrics` partial covering its
/// own nodes; [`Sim::metrics`](crate::Sim::metrics) merges the partials with
/// `absorb` at snapshot time. Since every counter is a sum
/// and all partials roll their windows in lockstep, the merged view is
/// identical whatever the shard count.
#[derive(Debug, Clone)]
pub struct Metrics {
    window: Step,
    /// Start step of the current window.
    cur_start: Step,
    /// Current-window counters, indexed by node index; all-zero means the node
    /// was not active in the window.
    cur: Vec<ClassCounts>,
    history: Vec<(Step, Vec<ClassCounts>)>,
    totals: ClassCounts,
    /// Messages dropped by the engine, indexed `[DropReason][MsgClass]`.
    drops: [[u64; 3]; 3],
}

/// Direction selector for summaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Outgoing messages.
    Sent,
    /// Incoming messages.
    Recv,
}

impl Metrics {
    /// New collector with the given window length (steps).
    pub fn new(window: Step) -> Self {
        Metrics {
            window: window.max(1),
            cur_start: 0,
            cur: Vec::new(),
            history: Vec::new(),
            totals: ClassCounts::default(),
            drops: [[0; 3]; 3],
        }
    }

    fn slot(&mut self, node: NodeId) -> &mut ClassCounts {
        let idx = node.index();
        if idx >= self.cur.len() {
            self.cur.resize(idx + 1, ClassCounts::default());
        }
        &mut self.cur[idx]
    }

    /// Counts one sent message. The caller guarantees the window was rolled to
    /// the current step (the engine rolls once per step).
    pub(crate) fn on_send(&mut self, node: NodeId, class: MsgClass) {
        self.slot(node).sent[class.index()] += 1;
        self.totals.sent[class.index()] += 1;
    }

    /// Counts one received message. Same rolling contract as `on_send`.
    pub(crate) fn on_recv(&mut self, node: NodeId, class: MsgClass) {
        self.slot(node).recv[class.index()] += 1;
        self.totals.recv[class.index()] += 1;
    }

    pub(crate) fn roll_to(&mut self, now: Step) {
        while now >= self.cur_start + self.window {
            let done = std::mem::take(&mut self.cur);
            self.history.push((self.cur_start, done));
            self.cur_start += self.window;
        }
    }

    /// Counts one dropped message.
    pub(crate) fn on_drop(&mut self, reason: DropReason, class: MsgClass) {
        self.drops[reason.index()][class.index()] += 1;
    }

    /// Adds every counter of `other` into `self` (shard-partial merge). Both
    /// collectors must share the window length and have been rolled to the
    /// same step — which the engine guarantees by rolling all shard partials
    /// together at the top of every step.
    pub(crate) fn absorb(&mut self, other: &Metrics) {
        debug_assert_eq!(self.window, other.window, "mismatched metrics windows");
        debug_assert_eq!(self.cur_start, other.cur_start, "partials out of step");
        add_counts(&mut self.cur, &other.cur);
        for (i, (start, per_node)) in other.history.iter().enumerate() {
            match self.history.get_mut(i) {
                Some((s, mine)) => {
                    debug_assert_eq!(s, start, "window history out of step");
                    add_counts(mine, per_node);
                }
                None => self.history.push((*start, per_node.clone())),
            }
        }
        for c in 0..3 {
            self.totals.sent[c] += other.totals.sent[c];
            self.totals.recv[c] += other.totals.recv[c];
        }
        for (mine, theirs) in self.drops.iter_mut().zip(other.drops.iter()) {
            for (m, t) in mine.iter_mut().zip(theirs.iter()) {
                *m += *t;
            }
        }
    }

    /// Messages dropped for `reason` in `class`.
    pub fn dropped(&self, reason: DropReason, class: MsgClass) -> u64 {
        self.drops[reason.index()][class.index()]
    }

    /// Messages dropped for `reason`, over all classes.
    pub fn dropped_for(&self, reason: DropReason) -> u64 {
        self.drops[reason.index()].iter().sum()
    }

    /// All messages ever dropped by the engine.
    pub fn total_dropped(&self) -> u64 {
        self.drops.iter().flatten().sum()
    }

    /// Total messages ever sent in `class`.
    pub fn total_sent(&self, class: MsgClass) -> u64 {
        self.totals.sent[class.index()]
    }

    /// Total messages ever received in `class`.
    pub fn total_received(&self, class: MsgClass) -> u64 {
        self.totals.recv[class.index()]
    }

    /// Completed windows: `(start_step, per-node counters indexed by node index)`.
    /// An all-zero entry (or an index past the end) means the node was inactive
    /// in that window.
    pub fn windows(&self) -> &[(Step, Vec<ClassCounts>)] {
        &self.history
    }

    /// Median/max/mean of per-node **sent** traffic for the given classes, one
    /// entry per completed window.
    pub fn sent_series(&self, classes: &[MsgClass]) -> Vec<WindowStat> {
        self.series(Dir::Sent, classes, None)
    }

    /// Median/max/mean of per-node **received** traffic for the given classes.
    pub fn recv_series(&self, classes: &[MsgClass]) -> Vec<WindowStat> {
        self.series(Dir::Recv, classes, None)
    }

    /// Like [`sent_series`](Metrics::sent_series)/[`recv_series`](Metrics::recv_series)
    /// but with an explicit population: nodes in `population` that sent/received
    /// nothing in a window count as zero (the paper's median is over all nodes, and
    /// e.g. leader-based medians are famously zero because most nodes never send).
    /// Without a population, only nodes active in the window (any class, either
    /// direction) are counted.
    pub fn series(
        &self,
        dir: Dir,
        classes: &[MsgClass],
        population: Option<&[NodeId]>,
    ) -> Vec<WindowStat> {
        let pick = |c: &ClassCounts| match dir {
            Dir::Sent => c.sent_in(classes),
            Dir::Recv => c.recv_in(classes),
        };
        self.history
            .iter()
            .map(|(start, per_node)| {
                let mut values: Vec<u64> = match population {
                    Some(pop) => pop
                        .iter()
                        .map(|id| per_node.get(id.index()).map(&pick).unwrap_or(0))
                        .collect(),
                    None => per_node
                        .iter()
                        .filter(|c| !c.is_zero())
                        .map(&pick)
                        .collect(),
                };
                values.sort_unstable();
                WindowStat {
                    start: *start,
                    stat: summarize(&values),
                }
            })
            .collect()
    }
}

/// Element-wise add of per-node counter vectors, extending `into` as needed.
fn add_counts(into: &mut Vec<ClassCounts>, from: &[ClassCounts]) {
    if into.len() < from.len() {
        into.resize(from.len(), ClassCounts::default());
    }
    for (mine, theirs) in into.iter_mut().zip(from.iter()) {
        for c in 0..3 {
            mine.sent[c] += theirs.sent[c];
            mine.recv[c] += theirs.recv[c];
        }
    }
}

fn summarize(sorted: &[u64]) -> Stat {
    if sorted.is_empty() {
        return Stat::default();
    }
    let median = sorted[sorted.len() / 2] as f64;
    let max = *sorted.last().unwrap() as f64;
    let mean = sorted.iter().sum::<u64>() as f64 / sorted.len() as f64;
    Stat { median, max, mean }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_roll_and_summarize() {
        let mut m = Metrics::new(10);
        let a = NodeId::from_index(0);
        let b = NodeId::from_index(1);
        for _ in 1..=9 {
            m.on_send(a, MsgClass::Publication);
        }
        m.on_send(b, MsgClass::Management);
        // Entering step 10 rolls the first window.
        m.roll_to(10);
        m.on_send(a, MsgClass::Publication);
        assert_eq!(m.windows().len(), 1);
        let series = m.sent_series(&[MsgClass::Publication]);
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].start, 0);
        assert_eq!(series[0].stat.max, 9.0);
        // Two nodes: values [0(b), 9(a)] -> median index 1 -> 9.
        assert_eq!(series[0].stat.median, 9.0);

        // With explicit population including a silent node, median drops.
        let c = NodeId::from_index(2);
        let pop = [a, b, c];
        let s = m.series(Dir::Sent, &[MsgClass::Publication], Some(&pop));
        assert_eq!(s[0].stat.median, 0.0);
        assert_eq!(s[0].stat.max, 9.0);
    }

    #[test]
    fn class_filtering() {
        let mut m = Metrics::new(10);
        let a = NodeId::from_index(0);
        m.on_send(a, MsgClass::Publication);
        m.on_send(a, MsgClass::Management);
        m.on_recv(a, MsgClass::Subscription);
        m.roll_to(10);
        assert_eq!(m.sent_series(&[MsgClass::Publication])[0].stat.max, 1.0);
        assert_eq!(m.sent_series(&MsgClass::ALL)[0].stat.max, 2.0);
        assert_eq!(m.recv_series(&MsgClass::ALL)[0].stat.max, 1.0);
        assert_eq!(m.total_sent(MsgClass::Publication), 1);
        assert_eq!(m.total_received(MsgClass::Subscription), 1);
    }

    #[test]
    fn drop_counters_index_by_reason_and_class() {
        let mut m = Metrics::new(10);
        m.on_drop(DropReason::Partitioned, MsgClass::Publication);
        m.on_drop(DropReason::Partitioned, MsgClass::Management);
        m.on_drop(DropReason::Loss, MsgClass::Publication);
        assert_eq!(m.dropped(DropReason::Partitioned, MsgClass::Publication), 1);
        assert_eq!(m.dropped(DropReason::Crashed, MsgClass::Publication), 0);
        assert_eq!(m.dropped_for(DropReason::Partitioned), 2);
        assert_eq!(m.total_dropped(), 3);
        // Drops are not receives: totals stay untouched.
        assert_eq!(m.total_received(MsgClass::Publication), 0);
        for (i, r) in DropReason::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn empty_window_is_all_zero() {
        let mut m = Metrics::new(5);
        m.roll_to(20);
        assert_eq!(m.windows().len(), 4);
        for w in m.sent_series(&MsgClass::ALL) {
            assert_eq!(w.stat.max, 0.0);
        }
    }

    #[test]
    fn latency_histogram_nearest_rank() {
        let mut h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.summary(), LatencySummary::default());
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.samples, 100);
        assert_eq!(s.p50, 50.0); // nearest-rank: ceil(0.5 * 100) = rank 50
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.p999, 100.0); // ceil(0.999 * 100) = rank 100
        assert_eq!(s.max, 100.0);
        assert_eq!(s.mean, 50.5);
        // Percentiles are observed samples, even for tiny populations.
        let mut tiny = LatencyHistogram::new();
        tiny.record(7);
        let t = tiny.summary();
        assert_eq!((t.p50, t.p99, t.p999, t.max), (7.0, 7.0, 7.0, 7.0));
        // Absorb folds sample sets.
        let mut other = LatencyHistogram::new();
        other.record(1000);
        h.absorb(&other);
        assert_eq!(h.len(), 101);
        assert_eq!(h.summary().max, 1000.0);
    }

    #[test]
    fn inactive_nodes_are_invisible_without_population() {
        // A node that only sent Management still contributes a zero to the
        // Publication series (it was active in the window), while a node that
        // did nothing at all does not appear.
        let mut m = Metrics::new(10);
        let a = NodeId::from_index(0);
        let b = NodeId::from_index(5); // leaves gaps 1..5 untouched
        m.on_send(a, MsgClass::Publication);
        m.on_send(b, MsgClass::Management);
        m.roll_to(10);
        let s = m.sent_series(&[MsgClass::Publication]);
        // Values are [0 (b), 1 (a)]: median over the two active nodes only.
        assert_eq!(s[0].stat.max, 1.0);
        assert_eq!(s[0].stat.mean, 0.5);
    }
}
