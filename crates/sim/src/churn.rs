//! Churn plans: the arrival/failure schedules of the paper's scenarios.
//!
//! * §5.2 *Dependability, first scenario*: "node failures are uniformly distributed
//!   in time, with a frequency of 1/p" — i.e. one crash every `1/p` steps
//!   ([`ChurnPlan::rate`]).
//! * §5.2 *Dependability, second scenario*: no failures until step 1000, one crash
//!   every 2 steps until step 2000, then none ([`ChurnPlan::storm`]).
//! * §5.2 *Scalability*: "a new node enters the system every two steps"
//!   ([`ChurnPlan::growth`]).
//!
//! A plan is a pure schedule: [`ChurnPlan::events_at`] says what should happen at a
//! given step; the scenario driver decides which concrete node to crash (uniformly
//! random among alive nodes) and how joining nodes bootstrap.

use serde::{Deserialize, Serialize};

use crate::process::Step;

/// What a churn plan demands at one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnEvent {
    /// Crash one uniformly random alive node.
    CrashRandom,
    /// One new node joins.
    Join,
}

/// A deterministic arrival/failure schedule.
///
/// ```
/// use dps_sim::{ChurnEvent, ChurnPlan};
///
/// // One crash every 4 steps (the paper's p = 0.25).
/// let plan = ChurnPlan::rate(0.25);
/// let crashes: usize = (1..=3000)
///     .flat_map(|s| plan.events_at(s))
///     .filter(|e| *e == ChurnEvent::CrashRandom)
///     .count();
/// assert_eq!(crashes, 750); // 25% of 1000 nodes survive a 3000-step run
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnPlan {
    crash_per_step: f64,
    crash_from: Step,
    crash_until: Step,
    join_per_step: f64,
    join_from: Step,
    join_until: Step,
}

impl ChurnPlan {
    /// No churn at all.
    pub fn none() -> Self {
        ChurnPlan {
            crash_per_step: 0.0,
            crash_from: 0,
            crash_until: Step::MAX,
            join_per_step: 0.0,
            join_from: 0,
            join_until: Step::MAX,
        }
    }

    /// The paper's first dependability scenario: one crash every `1/p` steps,
    /// uniformly spread over the whole run.
    ///
    /// # Panics
    ///
    /// Panics if `p` is negative or not finite.
    pub fn rate(p: f64) -> Self {
        assert!(
            p.is_finite() && p >= 0.0,
            "failure probability must be >= 0"
        );
        ChurnPlan {
            crash_per_step: p,
            ..ChurnPlan::none()
        }
    }

    /// The paper's second dependability scenario: one crash every `every`
    /// steps, but only within the window. Window bounds follow
    /// [`events_at`](Self::events_at): `from`-exclusive / `until`-inclusive,
    /// so a storm over `(1000, 2000]` at one crash per two steps yields
    /// exactly 500 crashes.
    pub fn storm(from: Step, until: Step, every: Step) -> Self {
        ChurnPlan::rate_during(from, until, 1.0 / every.max(1) as f64)
    }

    /// Crashes at per-step probability `p` within the `from`-exclusive /
    /// `until`-inclusive window only — the windowed sibling of
    /// [`rate`](Self::rate), for scenario phases that turn churn on and off
    /// mid-run.
    ///
    /// # Panics
    ///
    /// Panics if `p` is negative or not finite.
    pub fn rate_during(from: Step, until: Step, p: f64) -> Self {
        assert!(
            p.is_finite() && p >= 0.0,
            "failure probability must be >= 0"
        );
        ChurnPlan {
            crash_per_step: p,
            crash_from: from,
            crash_until: until,
            ..ChurnPlan::none()
        }
    }

    /// The paper's scalability scenario: one new node every `every` steps.
    pub fn growth(every: Step) -> Self {
        ChurnPlan::joins_during(0, Step::MAX, every)
    }

    /// One new node every `every` steps, within the `from`-exclusive /
    /// `until`-inclusive window only — the windowed sibling of
    /// [`growth`](Self::growth).
    pub fn joins_during(from: Step, until: Step, every: Step) -> Self {
        ChurnPlan {
            join_per_step: 1.0 / every.max(1) as f64,
            join_from: from,
            join_until: until,
            ..ChurnPlan::none()
        }
    }

    /// Adds a growth component to any plan.
    pub fn with_growth(mut self, every: Step) -> Self {
        self.join_per_step = 1.0 / every.max(1) as f64;
        self
    }

    /// The churn events scheduled for step `now`. Fractional rates accumulate: a
    /// rate of 0.25 fires at steps 4, 8, 12, … — deterministically, so runs are
    /// reproducible. Bounds are `from`-exclusive/`until`-inclusive so that e.g. a
    /// storm over `[1000, 2000]` at one crash per two steps yields exactly 500
    /// crashes, as in the paper.
    pub fn events_at(&self, now: Step) -> Vec<ChurnEvent> {
        fn fires(rate: f64, from: Step, until: Step, now: Step) -> u64 {
            if rate <= 0.0 || now <= from || now > until {
                return 0;
            }
            let f = |elapsed: Step| (elapsed as f64 * rate).floor() as u64;
            let elapsed = now - from;
            f(elapsed) - f(elapsed - 1)
        }
        let mut out = Vec::new();
        let crashes = fires(self.crash_per_step, self.crash_from, self.crash_until, now);
        out.extend(std::iter::repeat_n(
            ChurnEvent::CrashRandom,
            crashes as usize,
        ));
        let joins = fires(self.join_per_step, self.join_from, self.join_until, now);
        out.extend(std::iter::repeat_n(ChurnEvent::Join, joins as usize));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count(plan: &ChurnPlan, steps: Step, ev: ChurnEvent) -> usize {
        (1..=steps)
            .flat_map(|s| plan.events_at(s))
            .filter(|e| *e == ev)
            .count()
    }

    #[test]
    fn rate_matches_paper_survival_figures() {
        // p = 0.01 -> ~30 crashes over 3000 steps (97% of 1000 nodes survive).
        assert_eq!(
            count(&ChurnPlan::rate(0.01), 3000, ChurnEvent::CrashRandom),
            30
        );
        // p = 0.25 -> 750 crashes (25% survive).
        assert_eq!(
            count(&ChurnPlan::rate(0.25), 3000, ChurnEvent::CrashRandom),
            750
        );
    }

    #[test]
    fn storm_is_bounded_to_phase_two() {
        let plan = ChurnPlan::storm(1000, 2000, 2);
        assert_eq!(count(&plan, 999, ChurnEvent::CrashRandom), 0);
        assert_eq!(count(&plan, 3000, ChurnEvent::CrashRandom), 500);
        assert!(plan.events_at(500).is_empty());
        assert!(plan.events_at(2500).is_empty());
    }

    #[test]
    fn growth_every_two_steps() {
        let plan = ChurnPlan::growth(2);
        assert_eq!(count(&plan, 5000, ChurnEvent::Join), 2500);
        assert!(plan.events_at(1).is_empty());
        assert_eq!(plan.events_at(2), vec![ChurnEvent::Join]);
    }

    #[test]
    fn none_is_silent() {
        let plan = ChurnPlan::none();
        assert_eq!(count(&plan, 1000, ChurnEvent::CrashRandom), 0);
        assert_eq!(count(&plan, 1000, ChurnEvent::Join), 0);
    }

    #[test]
    fn windowed_builders_bound_their_events() {
        // rate_during == storm when p = 1/every.
        let a = ChurnPlan::rate_during(1000, 2000, 0.5);
        let b = ChurnPlan::storm(1000, 2000, 2);
        assert_eq!(a, b);
        // joins_during fires only inside its window.
        let j = ChurnPlan::joins_during(100, 200, 10);
        assert_eq!(count(&j, 100, ChurnEvent::Join), 0);
        assert_eq!(count(&j, 3000, ChurnEvent::Join), 10);
        assert_eq!(j.events_at(110), vec![ChurnEvent::Join]);
        assert!(j.events_at(205).is_empty());
    }

    #[test]
    fn combined_growth_and_rate() {
        let plan = ChurnPlan::rate(0.5).with_growth(2);
        let evs = plan.events_at(2);
        assert!(evs.contains(&ChurnEvent::CrashRandom));
        assert!(evs.contains(&ChurnEvent::Join));
    }

    #[test]
    #[should_panic(expected = "failure probability")]
    fn negative_rate_panics() {
        let _ = ChurnPlan::rate(-0.1);
    }
}
