//! The per-shard execution unit of the sharded engine.
//!
//! [`Sim`](crate::Sim) partitions nodes across `S` shards round-robin by id
//! (global index `i` lives in shard `i % S`, local slot `i / S`); each step
//! the shards advance their nodes in parallel and everything they send is
//! written into per-destination-shard **staging outboxes**. Nothing crosses a
//! shard boundary mid-step: the engine exchanges the staging outboxes at the
//! step barrier and merges them into the destination shards' inbox buckets in
//! a canonical order (deliver-phase sends before tick-phase sends, each sorted
//! by sender id — exactly the order a single shard produces naturally), so the
//! bucket contents, every handler invocation, and every metric are
//! byte-identical whatever `S` is.
//!
//! Each shard also owns the [`Metrics`] partial for its nodes and the alive
//! bookkeeping for its slots; the engine merges partials at snapshot time.

use std::sync::Arc;

use rand::Rng;

use crate::engine::latency_rng;
use crate::fault::FaultPlan;
use crate::latency::LatencyModel;
use crate::metrics::{DropReason, Metrics};
use crate::process::{Context, Message, NodeId, Process, SimRng, Step};

/// A queued message: the sender and the payload. The destination is implicit
/// in the bucket the message sits in.
pub(crate) struct Inflight<M> {
    pub(crate) from: NodeId,
    pub(crate) msg: M,
}

/// A send staged during the parallel phase. The destination is explicit
/// because one staging outbox covers every destination of one target shard.
pub(crate) struct Staged<M> {
    pub(crate) from: NodeId,
    pub(crate) to: NodeId,
    pub(crate) msg: M,
}

/// Which phase of the step produced a staged send. The canonical delivery
/// order within a bucket is all deliver-phase sends, then all tick-phase
/// sends — mirroring the serial engine, where the whole deliver loop runs
/// before the first tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    Deliver,
    Tick,
}

/// Staging outbox toward one destination shard, split by producing phase.
/// Both halves are sorted by sender id by construction: a shard processes its
/// local nodes in ascending global-id order within each phase.
pub(crate) struct StagingOutbox<M> {
    pub(crate) deliver: Vec<Staged<M>>,
    pub(crate) tick: Vec<Staged<M>>,
}

impl<M> StagingOutbox<M> {
    pub(crate) fn new() -> Self {
        StagingOutbox {
            deliver: Vec::new(),
            tick: Vec::new(),
        }
    }
}

/// One shard: a disjoint slice of the node population plus everything needed
/// to advance it for one step without touching any other shard.
///
/// Node state is laid out **struct-of-arrays**: protocol state machines,
/// liveness flags and RNG streams live in three parallel vectors indexed by
/// local slot. The hot scans touch only the array they need — the engine's
/// `alive()` iterator (behind every driver pick at scenario scale) walks a
/// dense `Vec<bool>` instead of striding over full node structs, and the
/// layout carries no per-slot padding, which is what lets six-figure
/// populations fit (a `DpsNode` is hundreds of bytes; a liveness flag is
/// one).
pub(crate) struct Shard<P: Process> {
    /// This shard's index within the engine (`0 <= index < staging.len()`).
    pub(crate) index: usize,
    /// Local protocol state machines; local slot `l` holds global id
    /// `l * S + index`.
    pub(crate) procs: Vec<P>,
    /// Liveness flags, parallel to `procs`.
    pub(crate) alive: Vec<bool>,
    /// Private per-node RNG streams, parallel to `procs`.
    pub(crate) rngs: Vec<SimRng>,
    /// Alive nodes among the local slots (maintained incrementally).
    pub(crate) alive_count: usize,
    /// The timing wheel: in-flight messages, bucketed first by wheel slot
    /// (`deliver_at % wheel.len()`), then by local destination. The wheel
    /// has `max_latency + 1` slots (always ≥ 2); latencies are in
    /// `[1, wheel.len() - 1]`, so every pending delivery time maps to a
    /// distinct slot and an enqueue can never target the slot currently
    /// being drained. The classic double-buffered inbox pair is exactly the
    /// 2-slot wheel the draw-free unit model sizes.
    pub(crate) wheel: Vec<Vec<Vec<Inflight<P::Msg>>>>,
    /// The link-latency model, shared with the engine and every sibling
    /// shard (installed before the first step, immutable afterwards).
    pub(crate) latency: Arc<LatencyModel>,
    /// Dedicated per-node **latency** streams, parallel to `procs` but grown
    /// lazily (only non-unit models ever derive one): slot `l`'s stream is a
    /// pure function of `(seed, global id)`, touched only when sampling the
    /// latency of a message *into* that node. Kept apart from `rngs` so a
    /// latency draw never perturbs protocol or loss draws — and because the
    /// enqueue-order of a destination's inbound messages is canonical across
    /// shard layouts, while the *interleaving* of enqueues across
    /// destinations is not.
    pub(crate) lat_rngs: Vec<SimRng>,
    /// Seed the lazy `lat_rngs` derivation uses.
    pub(crate) seed: u64,
    /// Reusable buffer behind [`Context::send`]; drained after every handler.
    pub(crate) scratch_out: Vec<(NodeId, P::Msg)>,
    /// Per-destination-shard staging outboxes (length = shard count), filled
    /// during the parallel phase, drained by the engine at the barrier.
    pub(crate) staging: Vec<StagingOutbox<P::Msg>>,
    /// Traffic partial for this shard's nodes (indexed by global node id;
    /// remote nodes' slots stay zero). Merged at snapshot time.
    pub(crate) metrics: Metrics,
    /// Deliverable messages queued in the wheel (all slots).
    pub(crate) in_flight: usize,
}

impl<P: Process> Shard<P> {
    pub(crate) fn new(index: usize, n_shards: usize, metrics_window: Step, seed: u64) -> Self {
        Shard {
            index,
            procs: Vec::new(),
            alive: Vec::new(),
            rngs: Vec::new(),
            alive_count: 0,
            wheel: (0..2).map(|_| Vec::new()).collect(),
            latency: Arc::new(LatencyModel::Unit),
            lat_rngs: Vec::new(),
            seed,
            scratch_out: Vec::new(),
            staging: (0..n_shards).map(|_| StagingOutbox::new()).collect(),
            metrics: Metrics::new(metrics_window),
            in_flight: 0,
        }
    }

    /// Number of shards in the engine this shard belongs to.
    fn n_shards(&self) -> usize {
        self.staging.len()
    }

    /// Global id of local slot `l`.
    fn global_id(&self, l: usize) -> NodeId {
        NodeId::from_index(l * self.n_shards() + self.index)
    }

    /// Enqueues a message into this shard's timing wheel at slot
    /// `(now + latency) % wheel.len()`, sampling the latency from the
    /// destination's dedicated stream (the draw-free unit model skips the
    /// stream entirely), and applying the engine's drop-at-enqueue rule:
    /// sends to already-crashed nodes drop (accounted, no latency draw),
    /// sends to not-yet-added nodes are kept (the node may join before the
    /// delivery step). Used both by the barrier merge and by the serial
    /// driver paths (`post`, `invoke`, `add_node` flushes) — one code path,
    /// so the crashed-check/draw order is identical whatever the layout.
    pub(crate) fn enqueue(&mut self, from: NodeId, to: NodeId, msg: P::Msg, now: Step) {
        let l = to.index() / self.n_shards();
        if self.alive.get(l).is_some_and(|a| !*a) {
            self.metrics.on_drop(DropReason::Crashed, msg.class());
            return;
        }
        let delay = self.sample_latency(to, l);
        let wheel_len = self.wheel.len() as Step;
        debug_assert!(
            delay >= 1 && delay < wheel_len,
            "latency {delay} outside the wheel's [1, {}] range",
            wheel_len - 1
        );
        let slot = ((now + delay) % wheel_len) as usize;
        let buckets = &mut self.wheel[slot];
        if l >= buckets.len() {
            buckets.resize_with(l + 1, Vec::new);
        }
        buckets[l].push(Inflight { from, msg });
        self.in_flight += 1;
    }

    /// Samples the link latency of one message into local slot `l` (global
    /// id `to`). `Unit` is the fast path: constant 1, no stream derived, no
    /// draw made. Every other model draws from the destination's dedicated
    /// latency stream, derived lazily on first use — a pure function of
    /// `(seed, global id)`, never reset, so partially consumed streams
    /// survive node joins.
    fn sample_latency(&mut self, to: NodeId, l: usize) -> Step {
        if self.latency.is_unit() {
            return 1;
        }
        let n = self.n_shards();
        while self.lat_rngs.len() <= l {
            let idx = self.lat_rngs.len() * n + self.index;
            self.lat_rngs.push(latency_rng(self.seed, idx));
        }
        self.latency.sample(to.index(), &mut self.lat_rngs[l])
    }

    /// Drops every message queued to local slot `l` (a crash purge) across
    /// **all** wheel slots, keeping `in_flight` counting deliverable
    /// messages only.
    pub(crate) fn purge_queued(&mut self, l: usize) {
        for slot in &mut self.wheel {
            if let Some(bucket) = slot.get_mut(l) {
                for env in bucket.drain(..) {
                    self.metrics.on_drop(DropReason::Crashed, env.msg.class());
                    self.in_flight -= 1;
                }
            }
        }
    }

    /// Advances this shard's nodes one step: delivers the wheel slot due at
    /// `now` (in ascending destination id, then arrival order), then ticks
    /// every alive local node (ascending id). All sends — even those to local
    /// destinations — go to the staging outboxes; the engine merges them at
    /// the barrier so bucket order is canonical whatever the shard count.
    ///
    /// Ticks are the period-1 timer events of the event timeline: every alive
    /// node holds a standing timer that fires each step, so the tick loop
    /// *is* the timer queue, kept implicit because materializing one event
    /// per node per step would buy nothing.
    ///
    /// Runs with no access to any other shard: loss sampling draws from the
    /// *destination* node's RNG stream, and the fault plan is consulted
    /// read-only (the shard-safe interface to `FaultPlan` — partitions and
    /// loss rates are pure lookups; the only sampling is local). Fault and
    /// loss windows are evaluated **at delivery time** (`now`), not at send
    /// time, so a message in flight across a partition onset is cut.
    pub(crate) fn step_local(
        &mut self,
        now: Step,
        fault: &FaultPlan,
        partition_active: bool,
        loss_active: bool,
    ) {
        // Detach the wheel slot due at `now`. Latencies are in
        // [1, wheel_len - 1], so nothing enqueued while delivering (the
        // single-shard fast path enqueues inline) can target this slot —
        // the empty placeholder left by `take` is never touched, and the
        // drained buckets are handed back below, capacity retained.
        let wheel_len = self.wheel.len() as Step;
        let slot = (now % wheel_len) as usize;
        let mut cur = std::mem::take(&mut self.wheel[slot]);
        self.in_flight -= cur.iter().map(Vec::len).sum::<usize>();

        // Deliver.
        for (l, inbox) in cur.iter_mut().enumerate() {
            if inbox.is_empty() {
                continue;
            }
            let to = self.global_id(l);
            let alive = self.alive.get(l).is_some_and(|a| *a);
            let mut bucket = std::mem::take(inbox);
            for Inflight { from, msg } in bucket.drain(..) {
                if !alive {
                    // Crashed nodes receive nothing (rare: the enqueue guard
                    // and crash purge catch almost everything earlier).
                    self.metrics.on_drop(DropReason::Crashed, msg.class());
                    continue;
                }
                if partition_active && fault.severed(from, to, now) {
                    self.metrics.on_drop(DropReason::Partitioned, msg.class());
                    continue;
                }
                if loss_active {
                    let rate = fault.loss_rate(from, to, now);
                    if rate > 0.0 && self.rngs[l].random::<f64>() < rate {
                        self.metrics.on_drop(DropReason::Loss, msg.class());
                        continue;
                    }
                }
                self.metrics.on_recv(to, msg.class());
                let mut ctx = Context {
                    me: to,
                    now,
                    rng: &mut self.rngs[l],
                    out: &mut self.scratch_out,
                };
                self.procs[l].on_message(from, msg, &mut ctx);
                self.stage_outgoing(to, Phase::Deliver, now);
            }
            *inbox = bucket;
        }
        self.wheel[slot] = cur;

        // Tick.
        for l in 0..self.procs.len() {
            if !self.alive[l] {
                continue;
            }
            let id = self.global_id(l);
            let mut ctx = Context {
                me: id,
                now,
                rng: &mut self.rngs[l],
                out: &mut self.scratch_out,
            };
            self.procs[l].on_tick(&mut ctx);
            self.stage_outgoing(id, Phase::Tick, now);
        }
    }

    /// Drains the scratch outbox into the staging outboxes, accounting sends.
    /// The dead-destination check is deferred to the barrier merge (remote
    /// liveness is not readable mid-step; liveness cannot change during the
    /// parallel phase, so checking at the barrier is equivalent).
    ///
    /// With a single shard every destination is local and the production
    /// order already *is* the canonical merged order, so sends enqueue
    /// directly — the default `DPS_SHARDS=1` configuration must not pay a
    /// staging round-trip per message for a merge with nothing to merge.
    fn stage_outgoing(&mut self, from: NodeId, phase: Phase, now: Step) {
        if self.staging.len() == 1 {
            let mut out = std::mem::take(&mut self.scratch_out);
            for (to, msg) in out.drain(..) {
                self.metrics.on_send(from, msg.class());
                self.enqueue(from, to, msg, now);
            }
            self.scratch_out = out;
            return;
        }
        let Shard {
            scratch_out,
            metrics,
            staging,
            ..
        } = self;
        let n_shards = staging.len();
        for (to, msg) in scratch_out.drain(..) {
            metrics.on_send(from, msg.class());
            let outbox = &mut staging[to.index() % n_shards];
            let buf = match phase {
                Phase::Deliver => &mut outbox.deliver,
                Phase::Tick => &mut outbox.tick,
            };
            buf.push(Staged { from, to, msg });
        }
    }
}
