//! The per-shard execution unit of the sharded engine.
//!
//! [`Sim`](crate::Sim) partitions nodes across `S` shards round-robin by id
//! (global index `i` lives in shard `i % S`, local slot `i / S`); each step
//! the shards advance their nodes in parallel and everything they send is
//! written into per-destination-shard **staging outboxes**. Nothing crosses a
//! shard boundary mid-step: the engine exchanges the staging outboxes at the
//! step barrier and merges them into the destination shards' inbox buckets in
//! a canonical order (deliver-phase sends before tick-phase sends, each sorted
//! by sender id — exactly the order a single shard produces naturally), so the
//! bucket contents, every handler invocation, and every metric are
//! byte-identical whatever `S` is.
//!
//! Each shard also owns the [`Metrics`] partial for its nodes and the alive
//! bookkeeping for its slots; the engine merges partials at snapshot time.

use rand::Rng;

use crate::fault::FaultPlan;
use crate::metrics::{DropReason, Metrics};
use crate::process::{Context, Message, NodeId, Process, SimRng, Step};

/// A queued message: the sender and the payload. The destination is implicit
/// in the bucket the message sits in.
pub(crate) struct Inflight<M> {
    pub(crate) from: NodeId,
    pub(crate) msg: M,
}

/// A send staged during the parallel phase. The destination is explicit
/// because one staging outbox covers every destination of one target shard.
pub(crate) struct Staged<M> {
    pub(crate) from: NodeId,
    pub(crate) to: NodeId,
    pub(crate) msg: M,
}

/// Which phase of the step produced a staged send. The canonical delivery
/// order within a bucket is all deliver-phase sends, then all tick-phase
/// sends — mirroring the serial engine, where the whole deliver loop runs
/// before the first tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    Deliver,
    Tick,
}

/// Staging outbox toward one destination shard, split by producing phase.
/// Both halves are sorted by sender id by construction: a shard processes its
/// local nodes in ascending global-id order within each phase.
pub(crate) struct StagingOutbox<M> {
    pub(crate) deliver: Vec<Staged<M>>,
    pub(crate) tick: Vec<Staged<M>>,
}

impl<M> StagingOutbox<M> {
    pub(crate) fn new() -> Self {
        StagingOutbox {
            deliver: Vec::new(),
            tick: Vec::new(),
        }
    }
}

/// One shard: a disjoint slice of the node population plus everything needed
/// to advance it for one step without touching any other shard.
///
/// Node state is laid out **struct-of-arrays**: protocol state machines,
/// liveness flags and RNG streams live in three parallel vectors indexed by
/// local slot. The hot scans touch only the array they need — the engine's
/// `alive()` iterator (behind every driver pick at scenario scale) walks a
/// dense `Vec<bool>` instead of striding over full node structs, and the
/// layout carries no per-slot padding, which is what lets six-figure
/// populations fit (a `DpsNode` is hundreds of bytes; a liveness flag is
/// one).
pub(crate) struct Shard<P: Process> {
    /// This shard's index within the engine (`0 <= index < staging.len()`).
    pub(crate) index: usize,
    /// Local protocol state machines; local slot `l` holds global id
    /// `l * S + index`.
    pub(crate) procs: Vec<P>,
    /// Liveness flags, parallel to `procs`.
    pub(crate) alive: Vec<bool>,
    /// Private per-node RNG streams, parallel to `procs`.
    pub(crate) rngs: Vec<SimRng>,
    /// Alive nodes among the local slots (maintained incrementally).
    pub(crate) alive_count: usize,
    /// Messages to deliver at the next step, bucketed by local destination.
    pub(crate) next_inboxes: Vec<Vec<Inflight<P::Msg>>>,
    /// Last step's buckets, kept to be swapped back in (double buffer).
    pub(crate) spare_inboxes: Vec<Vec<Inflight<P::Msg>>>,
    /// Reusable buffer behind [`Context::send`]; drained after every handler.
    pub(crate) scratch_out: Vec<(NodeId, P::Msg)>,
    /// Per-destination-shard staging outboxes (length = shard count), filled
    /// during the parallel phase, drained by the engine at the barrier.
    pub(crate) staging: Vec<StagingOutbox<P::Msg>>,
    /// Traffic partial for this shard's nodes (indexed by global node id;
    /// remote nodes' slots stay zero). Merged at snapshot time.
    pub(crate) metrics: Metrics,
    /// Deliverable messages queued in `next_inboxes`.
    pub(crate) in_flight: usize,
}

impl<P: Process> Shard<P> {
    pub(crate) fn new(index: usize, n_shards: usize, metrics_window: Step) -> Self {
        Shard {
            index,
            procs: Vec::new(),
            alive: Vec::new(),
            rngs: Vec::new(),
            alive_count: 0,
            next_inboxes: Vec::new(),
            spare_inboxes: Vec::new(),
            scratch_out: Vec::new(),
            staging: (0..n_shards).map(|_| StagingOutbox::new()).collect(),
            metrics: Metrics::new(metrics_window),
            in_flight: 0,
        }
    }

    /// Number of shards in the engine this shard belongs to.
    fn n_shards(&self) -> usize {
        self.staging.len()
    }

    /// Global id of local slot `l`.
    fn global_id(&self, l: usize) -> NodeId {
        NodeId::from_index(l * self.n_shards() + self.index)
    }

    /// Enqueues a message into this shard's next-step buckets, applying the
    /// engine's drop-at-enqueue rule: sends to already-crashed nodes drop
    /// (accounted), sends to not-yet-added nodes are kept (the node may join
    /// before the next step). Used both by the barrier merge and by the
    /// serial driver paths (`post`, `invoke`, `add_node` flushes).
    pub(crate) fn enqueue(&mut self, from: NodeId, to: NodeId, msg: P::Msg) {
        let l = to.index() / self.n_shards();
        if self.alive.get(l).is_some_and(|a| !*a) {
            self.metrics.on_drop(DropReason::Crashed, msg.class());
            return;
        }
        if l >= self.next_inboxes.len() {
            self.next_inboxes.resize_with(l + 1, Vec::new);
        }
        self.next_inboxes[l].push(Inflight { from, msg });
        self.in_flight += 1;
    }

    /// Drops every message queued to local slot `l` (a crash purge), keeping
    /// `in_flight` counting deliverable messages only.
    pub(crate) fn purge_queued(&mut self, l: usize) {
        if let Some(bucket) = self.next_inboxes.get_mut(l) {
            for env in bucket.drain(..) {
                self.metrics.on_drop(DropReason::Crashed, env.msg.class());
                self.in_flight -= 1;
            }
        }
    }

    /// Advances this shard's nodes one step: delivers the local buckets filled
    /// last step (in ascending destination id, then arrival order), then ticks
    /// every alive local node (ascending id). All sends — even those to local
    /// destinations — go to the staging outboxes; the engine merges them at
    /// the barrier so bucket order is canonical whatever the shard count.
    ///
    /// Runs with no access to any other shard: loss sampling draws from the
    /// *destination* node's RNG stream, and the fault plan is consulted
    /// read-only (the shard-safe interface to `FaultPlan` — partitions and
    /// loss rates are pure lookups; the only sampling is local).
    pub(crate) fn step_local(
        &mut self,
        now: Step,
        fault: &FaultPlan,
        partition_active: bool,
        loss_active: bool,
    ) {
        // Swap in the spare buckets to collect next step's merges; deliver
        // from the buckets filled last step. Capacity is retained end to end.
        let mut cur = std::mem::take(&mut self.next_inboxes);
        std::mem::swap(&mut self.next_inboxes, &mut self.spare_inboxes);
        if self.next_inboxes.len() < self.procs.len() {
            self.next_inboxes.resize_with(self.procs.len(), Vec::new);
        }
        self.in_flight = 0;

        // Deliver.
        for (l, inbox) in cur.iter_mut().enumerate() {
            if inbox.is_empty() {
                continue;
            }
            let to = self.global_id(l);
            let alive = self.alive.get(l).is_some_and(|a| *a);
            let mut bucket = std::mem::take(inbox);
            for Inflight { from, msg } in bucket.drain(..) {
                if !alive {
                    // Crashed nodes receive nothing (rare: the enqueue guard
                    // and crash purge catch almost everything earlier).
                    self.metrics.on_drop(DropReason::Crashed, msg.class());
                    continue;
                }
                if partition_active && fault.severed(from, to, now) {
                    self.metrics.on_drop(DropReason::Partitioned, msg.class());
                    continue;
                }
                if loss_active {
                    let rate = fault.loss_rate(from, to, now);
                    if rate > 0.0 && self.rngs[l].random::<f64>() < rate {
                        self.metrics.on_drop(DropReason::Loss, msg.class());
                        continue;
                    }
                }
                self.metrics.on_recv(to, msg.class());
                let mut ctx = Context {
                    me: to,
                    now,
                    rng: &mut self.rngs[l],
                    out: &mut self.scratch_out,
                };
                self.procs[l].on_message(from, msg, &mut ctx);
                self.stage_outgoing(to, Phase::Deliver);
            }
            *inbox = bucket;
        }
        self.spare_inboxes = cur;

        // Tick.
        for l in 0..self.procs.len() {
            if !self.alive[l] {
                continue;
            }
            let id = self.global_id(l);
            let mut ctx = Context {
                me: id,
                now,
                rng: &mut self.rngs[l],
                out: &mut self.scratch_out,
            };
            self.procs[l].on_tick(&mut ctx);
            self.stage_outgoing(id, Phase::Tick);
        }
    }

    /// Drains the scratch outbox into the staging outboxes, accounting sends.
    /// The dead-destination check is deferred to the barrier merge (remote
    /// liveness is not readable mid-step; liveness cannot change during the
    /// parallel phase, so checking at the barrier is equivalent).
    ///
    /// With a single shard every destination is local and the production
    /// order already *is* the canonical merged order, so sends enqueue
    /// directly — the default `DPS_SHARDS=1` configuration must not pay a
    /// staging round-trip per message for a merge with nothing to merge.
    fn stage_outgoing(&mut self, from: NodeId, phase: Phase) {
        if self.staging.len() == 1 {
            let mut out = std::mem::take(&mut self.scratch_out);
            for (to, msg) in out.drain(..) {
                self.metrics.on_send(from, msg.class());
                self.enqueue(from, to, msg);
            }
            self.scratch_out = out;
            return;
        }
        let Shard {
            scratch_out,
            metrics,
            staging,
            ..
        } = self;
        let n_shards = staging.len();
        for (to, msg) in scratch_out.drain(..) {
            metrics.on_send(from, msg.class());
            let outbox = &mut staging[to.index() % n_shards];
            let buf = match phase {
                Phase::Deliver => &mut outbox.deliver,
                Phase::Tick => &mut outbox.tick,
            };
            buf.push(Staged { from, to, msg });
        }
    }
}
