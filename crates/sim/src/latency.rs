//! Link-latency models for the event-queue engine.
//!
//! Every message is enqueued with a delivery time `now + latency(link)`,
//! where the latency is sampled at enqueue from the **destination node's**
//! dedicated latency stream (`docs/determinism.md` explains why the
//! destination side owns the draw). A model is installed once per run with
//! [`Sim::set_latency`](crate::Sim::set_latency); the default is
//! [`LatencyModel::Unit`], which draws nothing and reproduces the classic
//! cycle-based engine byte-for-byte.

use rand::Rng;

use crate::process::{SimRng, Step};

/// Hard cap on any model's maximum latency, in steps. The timing wheel
/// allocates `max_latency + 1` slots, so the cap bounds wheel memory; a
/// model past the cap is a spec mistake (a scenario wanting slower links
/// should stretch its phase lengths instead).
pub const MAX_LATENCY: Step = 1024;

/// How many steps a message spends on the wire, as a distribution over links.
///
/// Two invariants every variant upholds:
///
/// * **Latency is in `[1, max_latency()]`** — a message is never delivered
///   in the step that sent it, and never overshoots the timing wheel.
/// * **Sampling variants always draw**, even when the range is a single
///   point: `Uniform { min: 1, max: 1 }` is observationally equivalent to
///   [`Unit`](LatencyModel::Unit) but exercises the full sampling + wheel
///   machinery — the parity that `tests/latency_determinism.rs` pins.
///   Only `Unit` is draw-free, which is what keeps the default mode
///   byte-identical to the pre-event-queue engine.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum LatencyModel {
    /// Every link takes exactly one step: the classic cycle model. Draws
    /// nothing from any stream.
    #[default]
    Unit,
    /// Latency uniform in `[min, max]` steps on every link. One draw per
    /// message, even when `min == max`.
    Uniform {
        /// Minimum latency, inclusive (≥ 1).
        min: Step,
        /// Maximum latency, inclusive (≥ `min`, ≤ [`MAX_LATENCY`]).
        max: Step,
    },
    /// A jitter mixture: with probability `slow_weight` the latency is
    /// uniform in `slow`, otherwise uniform in `fast`. Exactly two draws
    /// per message (the branch, then the range), whatever the weight.
    Bimodal {
        /// `(min, max)` of the fast mode, inclusive.
        fast: (Step, Step),
        /// `(min, max)` of the slow mode, inclusive.
        slow: (Step, Step),
        /// Probability of the slow mode, in `[0, 1]`.
        slow_weight: f64,
    },
    /// Per-destination-class latency: node `i` belongs to class
    /// `i % classes.len()`, and every link **into** it is uniform in that
    /// class's `(min, max)` range. This models heterogeneous deployments —
    /// e.g. every 6th node behind a slow last-mile link.
    Classed {
        /// `(min, max)` per class, inclusive; non-empty.
        classes: Vec<(Step, Step)>,
    },
}

impl LatencyModel {
    /// Checks the model's ranges: every `min ≥ 1`, `min ≤ max`,
    /// `max ≤ `[`MAX_LATENCY`], weights in `[0, 1]`, class lists non-empty.
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let range = |what: &str, min: Step, max: Step| -> Result<(), String> {
            if min < 1 {
                return Err(format!("{what}: min latency must be >= 1, got {min}"));
            }
            if max < min {
                return Err(format!("{what}: max latency {max} < min latency {min}"));
            }
            if max > MAX_LATENCY {
                return Err(format!(
                    "{what}: max latency {max} exceeds the cap {MAX_LATENCY}"
                ));
            }
            Ok(())
        };
        match self {
            LatencyModel::Unit => Ok(()),
            LatencyModel::Uniform { min, max } => range("uniform", *min, *max),
            LatencyModel::Bimodal {
                fast,
                slow,
                slow_weight,
            } => {
                range("bimodal.fast", fast.0, fast.1)?;
                range("bimodal.slow", slow.0, slow.1)?;
                if !slow_weight.is_finite() || !(0.0..=1.0).contains(slow_weight) {
                    return Err(format!(
                        "bimodal.slow_weight must be in [0, 1], got {slow_weight}"
                    ));
                }
                Ok(())
            }
            LatencyModel::Classed { classes } => {
                if classes.is_empty() {
                    return Err("classed: at least one latency class is required".into());
                }
                for (i, (min, max)) in classes.iter().enumerate() {
                    range(&format!("classed.classes[{i}]"), *min, *max)?;
                }
                Ok(())
            }
        }
    }

    /// The largest latency this model can ever sample. Sizes the timing
    /// wheel (`max_latency() + 1` slots).
    pub fn max_latency(&self) -> Step {
        match self {
            LatencyModel::Unit => 1,
            LatencyModel::Uniform { max, .. } => *max,
            LatencyModel::Bimodal { fast, slow, .. } => fast.1.max(slow.1),
            LatencyModel::Classed { classes } => {
                classes.iter().map(|(_, max)| *max).max().unwrap_or(1)
            }
        }
    }

    /// Whether this is the draw-free unit model (the engine's fast path:
    /// no stream is derived, no draw is made, latency is the constant 1).
    pub fn is_unit(&self) -> bool {
        matches!(self, LatencyModel::Unit)
    }

    /// Samples the latency of one message into destination node index
    /// `dest`, drawing from that destination's dedicated latency stream.
    pub fn sample(&self, dest: usize, rng: &mut SimRng) -> Step {
        match self {
            LatencyModel::Unit => 1,
            LatencyModel::Uniform { min, max } => rng.random_range(*min..=*max),
            LatencyModel::Bimodal {
                fast,
                slow,
                slow_weight,
            } => {
                // Always both draws, in this order, so the draw sequence is
                // independent of the sampled values.
                let slow_pick = rng.random::<f64>() < *slow_weight;
                let (min, max) = if slow_pick { *slow } else { *fast };
                rng.random_range(min..=max)
            }
            LatencyModel::Classed { classes } => {
                let (min, max) = classes[dest % classes.len()];
                rng.random_range(min..=max)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn validate_catches_bad_ranges() {
        assert!(LatencyModel::Unit.validate().is_ok());
        assert!(LatencyModel::Uniform { min: 1, max: 4 }.validate().is_ok());
        assert!(LatencyModel::Uniform { min: 0, max: 4 }.validate().is_err());
        assert!(LatencyModel::Uniform { min: 5, max: 4 }.validate().is_err());
        assert!(LatencyModel::Uniform {
            min: 1,
            max: MAX_LATENCY + 1
        }
        .validate()
        .is_err());
        assert!(LatencyModel::Bimodal {
            fast: (1, 2),
            slow: (4, 8),
            slow_weight: 1.5
        }
        .validate()
        .is_err());
        assert!(LatencyModel::Classed { classes: vec![] }
            .validate()
            .is_err());
        assert!(LatencyModel::Classed {
            classes: vec![(1, 2), (6, 10)]
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn samples_stay_in_range() {
        let mut rng = SimRng::seed_from_u64(1);
        let uni = LatencyModel::Uniform { min: 2, max: 5 };
        let bi = LatencyModel::Bimodal {
            fast: (1, 2),
            slow: (6, 9),
            slow_weight: 0.3,
        };
        let classed = LatencyModel::Classed {
            classes: vec![(1, 1), (4, 7)],
        };
        for dest in 0..64 {
            let u = uni.sample(dest, &mut rng);
            assert!((2..=5).contains(&u));
            let b = bi.sample(dest, &mut rng);
            assert!((1..=2).contains(&b) || (6..=9).contains(&b));
            let c = classed.sample(dest, &mut rng);
            if dest % 2 == 0 {
                assert_eq!(c, 1);
            } else {
                assert!((4..=7).contains(&c));
            }
        }
    }

    #[test]
    fn max_latency_covers_every_variant() {
        assert_eq!(LatencyModel::Unit.max_latency(), 1);
        assert_eq!(LatencyModel::Uniform { min: 1, max: 7 }.max_latency(), 7);
        assert_eq!(
            LatencyModel::Bimodal {
                fast: (1, 2),
                slow: (4, 9),
                slow_weight: 0.1
            }
            .max_latency(),
            9
        );
        assert_eq!(
            LatencyModel::Classed {
                classes: vec![(1, 2), (6, 10), (1, 1)]
            }
            .max_latency(),
            10
        );
    }

    #[test]
    fn point_ranges_still_draw() {
        // Uniform{1,1} must consume exactly one draw per sample: the stream
        // position after k samples differs from an untouched stream.
        let mut a = SimRng::seed_from_u64(9);
        let mut b = SimRng::seed_from_u64(9);
        let m = LatencyModel::Uniform { min: 1, max: 1 };
        for _ in 0..5 {
            assert_eq!(m.sample(0, &mut a), 1);
        }
        use rand::Rng;
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }
}
