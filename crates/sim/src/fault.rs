//! Fault plans: link-level failure schedules — network partitions and lossy
//! links — the companion of [`ChurnPlan`](crate::ChurnPlan) for the fault
//! classes that kill *messages* instead of *nodes*.
//!
//! A [`FaultPlan`] is consulted by the engine once per message at delivery
//! time ([`Sim::step`](crate::Sim::step)):
//!
//! * **Partitions** split the id space into named *sides* for a step
//!   interval; a message whose endpoints sit on different sides is dropped.
//!   Nodes assigned to no side are unaffected (they can talk across the cut
//!   — useful for modeling a partial partition). A window may be
//!   **asymmetric** ([`CutDir::OneWay`]): only one cross-side direction is
//!   cut, the reverse keeps delivering — a half-broken link.
//! * **Loss rules** attach a drop probability to links: a wildcard default,
//!   per-endpoint rules, or a single directed link. The most specific
//!   matching rule wins; sampling uses the simulation RNG, so runs stay a
//!   pure function of the seed.
//!
//! Dropped messages are accounted per [`DropReason`](crate::DropReason) in
//! [`Metrics`](crate::Metrics), making faults first-class, observable events
//! rather than silent message loss.

use serde::{Deserialize, Serialize};

use crate::process::{NodeId, Step};

/// Sentinel for "not assigned to any partition side".
const NO_SIDE: u8 = u8::MAX;

/// How a partition window assigns nodes to sides.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum SideAssign {
    /// Nodes with index `< boundary` are side 0, all others (including nodes
    /// that join later) side 1.
    Split {
        /// First node index of the high side.
        boundary: usize,
    },
    /// Explicit per-node side indices ([`NO_SIDE`] = unaffected); nodes past
    /// the end of the map are unaffected.
    Explicit {
        /// Side index by node index.
        map: Vec<u8>,
    },
}

/// Which cross-side directions a partition window severs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CutDir {
    /// Messages drop in both directions (a classic partition).
    Both,
    /// Only messages from `from_side` toward `to_side` drop; every other
    /// cross-side direction still delivers (an asymmetric link cut — e.g. a
    /// half-broken uplink that receives but cannot send).
    OneWay {
        /// Side index messages must originate from to be cut.
        from_side: u8,
        /// Side index messages must be addressed into to be cut.
        to_side: u8,
    },
}

/// One scheduled partition: for steps in `[from, until)` the listed sides
/// cannot exchange messages (in the direction(s) selected by `dir`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionWindow {
    from: Step,
    until: Step,
    /// Human-readable side names (for reports); index = side id.
    names: Vec<String>,
    assign: SideAssign,
    /// Which direction(s) of cross-side traffic this window cuts.
    dir: CutDir,
}

impl PartitionWindow {
    /// Whether this window is in force at `now`.
    pub fn active_at(&self, now: Step) -> bool {
        self.from <= now && now < self.until
    }

    /// The side `node` belongs to at any step of this window, if any.
    pub fn side_of(&self, node: NodeId) -> Option<&str> {
        let s = self.side_index(node)?;
        self.names.get(s as usize).map(String::as_str)
    }

    fn side_index(&self, node: NodeId) -> Option<u8> {
        match &self.assign {
            SideAssign::Split { boundary } => Some(u8::from(node.index() >= *boundary)),
            SideAssign::Explicit { map } => match map.get(node.index()) {
                Some(&s) if s != NO_SIDE => Some(s),
                _ => None,
            },
        }
    }

    /// Whether a `from -> to` message crosses the cut (in a severed direction).
    pub fn severs(&self, from: NodeId, to: NodeId) -> bool {
        match (self.side_index(from), self.side_index(to)) {
            (Some(a), Some(b)) => match self.dir {
                CutDir::Both => a != b,
                CutDir::OneWay { from_side, to_side } => a == from_side && b == to_side,
            },
            _ => false,
        }
    }
}

/// A loss rule: drop probability for links matching the endpoint patterns
/// (`None` = any node), in force for steps in `[from_step, until_step)`.
/// Rules added through the un-windowed setters cover the whole run. More
/// specific rules beat less specific ones — endpoint specificity first, then
/// time-bounded over whole-run; among equally specific rules the **last
/// added** wins, so `set_loss` calls layer naturally.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct LossRule {
    from: Option<NodeId>,
    to: Option<NodeId>,
    rate: f64,
    from_step: Step,
    until_step: Step,
}

impl LossRule {
    fn matches(&self, from: NodeId, to: NodeId, now: Step) -> bool {
        self.from_step <= now
            && now < self.until_step
            && self.from.is_none_or(|f| f == from)
            && self.to.is_none_or(|t| t == to)
    }

    /// Endpoint specificity first (exact link > one end fixed > wildcard),
    /// then time-bounded windows over whole-run rules: a scheduled window
    /// shadows the always-on default it temporarily overrides.
    fn specificity(&self) -> u8 {
        let ends = u8::from(self.from.is_some()) + u8::from(self.to.is_some());
        let windowed = u8::from((self.from_step, self.until_step) != (0, Step::MAX));
        ends * 2 + windowed
    }
}

/// A deterministic link-fault schedule: partitions plus lossy links —
/// scheduled windows the engine consults at delivery time.
///
/// ```
/// use dps_sim::{FaultPlan, NodeId};
///
/// // Nodes 0..5 vs 5.. cannot talk during steps [100, 200).
/// let mut plan = FaultPlan::none();
/// plan.add_split(100, 200, 5);
/// let (a, b) = (NodeId::from_index(2), NodeId::from_index(7));
/// assert!(plan.severed(a, b, 150));
/// assert!(!plan.severed(a, b, 200)); // healed
///
/// // All links drop 10% of messages, one link is dead entirely.
/// plan.set_default_loss(0.1);
/// plan.set_link_loss(a, b, 1.0);
/// assert_eq!(plan.loss_rate(b, a, 0), 0.1);
/// assert_eq!(plan.loss_rate(a, b, 0), 1.0);
///
/// // Loss can also be scheduled: 30% everywhere during steps [50, 80).
/// plan.set_loss_during(50, 80, 0.3);
/// assert_eq!(plan.loss_rate(b, a, 60), 0.3);
/// assert_eq!(plan.loss_rate(b, a, 80), 0.1); // window over, default back
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    partitions: Vec<PartitionWindow>,
    loss: Vec<LossRule>,
}

impl FaultPlan {
    /// A plan with no faults at all (the engine default).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan can never drop anything — lets the engine skip the
    /// per-message fault check (and its RNG draws) entirely.
    pub fn is_trivial(&self) -> bool {
        self.partitions.is_empty() && self.loss.iter().all(|r| r.rate <= 0.0)
    }

    // ---- partitions ----

    /// Schedules a two-sided partition for steps `[from, until)`: node
    /// indices `< boundary` form side `"low"`, the rest (including nodes that
    /// join during the window) side `"high"`.
    pub fn add_split(&mut self, from: Step, until: Step, boundary: usize) -> &mut Self {
        self.partitions.push(PartitionWindow {
            from,
            until,
            names: vec!["low".into(), "high".into()],
            assign: SideAssign::Split { boundary },
            dir: CutDir::Both,
        });
        self
    }

    /// Schedules an **asymmetric** split for steps `[from, until)`: only one
    /// direction of cross-boundary traffic is cut — `"low"` → `"high"` when
    /// `low_to_high` is true, the reverse otherwise. The open direction keeps
    /// delivering, modeling a half-broken link.
    pub fn add_split_oneway(
        &mut self,
        from: Step,
        until: Step,
        boundary: usize,
        low_to_high: bool,
    ) -> &mut Self {
        let (from_side, to_side) = if low_to_high { (0, 1) } else { (1, 0) };
        self.partitions.push(PartitionWindow {
            from,
            until,
            names: vec!["low".into(), "high".into()],
            assign: SideAssign::Split { boundary },
            dir: CutDir::OneWay { from_side, to_side },
        });
        self
    }

    /// Schedules a partition with explicitly named sides for `[from, until)`.
    /// Nodes listed in no side are unaffected. A node listed twice lands on
    /// the first side that names it. At most 254 sides are supported.
    pub fn add_partition<S: AsRef<str>>(
        &mut self,
        from: Step,
        until: Step,
        sides: &[(S, Vec<NodeId>)],
    ) -> &mut Self {
        self.push_partition(from, until, sides, CutDir::Both)
    }

    /// Schedules an **asymmetric** named partition for `[from, until)`: only
    /// messages from the side named `from_side` toward the side named
    /// `to_side` are cut; everything else (including the reverse direction)
    /// delivers.
    ///
    /// # Panics
    ///
    /// Panics if either name is not among `sides`, or if both name the same
    /// side (which would cut that side's *internal* traffic, never the
    /// intended cross-side direction).
    pub fn add_partition_oneway<S: AsRef<str>>(
        &mut self,
        from: Step,
        until: Step,
        sides: &[(S, Vec<NodeId>)],
        from_side: &str,
        to_side: &str,
    ) -> &mut Self {
        let pos = |name: &str| {
            sides
                .iter()
                .position(|(n, _)| n.as_ref() == name)
                .unwrap_or_else(|| panic!("unknown partition side {name:?}")) as u8
        };
        let (from_side, to_side) = (pos(from_side), pos(to_side));
        assert_ne!(from_side, to_side, "a one-way cut needs two distinct sides");
        let dir = CutDir::OneWay { from_side, to_side };
        self.push_partition(from, until, sides, dir)
    }

    fn push_partition<S: AsRef<str>>(
        &mut self,
        from: Step,
        until: Step,
        sides: &[(S, Vec<NodeId>)],
        dir: CutDir,
    ) -> &mut Self {
        assert!(sides.len() < NO_SIDE as usize, "too many partition sides");
        let mut map = Vec::new();
        for (s, (_, members)) in sides.iter().enumerate() {
            for n in members {
                let idx = n.index();
                if idx >= map.len() {
                    map.resize(idx + 1, NO_SIDE);
                }
                if map[idx] == NO_SIDE {
                    map[idx] = s as u8;
                }
            }
        }
        self.partitions.push(PartitionWindow {
            from,
            until,
            names: sides.iter().map(|(n, _)| n.as_ref().to_string()).collect(),
            assign: SideAssign::Explicit { map },
            dir,
        });
        self
    }

    /// Ends every partition window still open at `now`: windows whose
    /// interval covers `now` are truncated to it, future windows are kept.
    /// Returns how many windows were closed.
    pub fn heal_at(&mut self, now: Step) -> usize {
        let mut healed = 0;
        for w in &mut self.partitions {
            if w.from <= now && now < w.until {
                w.until = now;
                healed += 1;
            }
        }
        healed
    }

    /// The partition windows in force at `now`.
    pub fn active_partitions(&self, now: Step) -> impl Iterator<Item = &PartitionWindow> {
        self.partitions.iter().filter(move |w| w.active_at(now))
    }

    /// Whether any active partition severs the `from -> to` link at `now`.
    pub fn severed(&self, from: NodeId, to: NodeId, now: Step) -> bool {
        self.active_partitions(now).any(|w| w.severs(from, to))
    }

    /// The side `node` sits on at `now` (name of the first active window that
    /// assigns it), if any.
    pub fn side_of(&self, node: NodeId, now: Step) -> Option<&str> {
        self.active_partitions(now).find_map(|w| w.side_of(node))
    }

    // ---- loss ----

    /// Sets the default (wildcard) loss rate for every link.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not within `[0, 1]`.
    pub fn set_default_loss(&mut self, rate: f64) -> &mut Self {
        self.push_loss(None, None, rate, 0, Step::MAX)
    }

    /// Sets the loss rate of every link *out of* `from`.
    pub fn set_egress_loss(&mut self, from: NodeId, rate: f64) -> &mut Self {
        self.push_loss(Some(from), None, rate, 0, Step::MAX)
    }

    /// Sets the loss rate of every link *into* `to`.
    pub fn set_ingress_loss(&mut self, to: NodeId, rate: f64) -> &mut Self {
        self.push_loss(None, Some(to), rate, 0, Step::MAX)
    }

    /// Sets the loss rate of the directed link `from -> to`.
    pub fn set_link_loss(&mut self, from: NodeId, to: NodeId, rate: f64) -> &mut Self {
        self.push_loss(Some(from), Some(to), rate, 0, Step::MAX)
    }

    /// Schedules a default (wildcard) loss rate for steps in `[from, until)`
    /// only — the scheduled sibling of [`set_default_loss`](Self::set_default_loss),
    /// letting scenario files lower loss windows onto the plan up front
    /// instead of mutating it mid-run.
    pub fn set_loss_during(&mut self, from: Step, until: Step, rate: f64) -> &mut Self {
        self.push_loss(None, None, rate, from, until)
    }

    /// Schedules a loss rate for the directed link `a -> b` for steps in
    /// `[from, until)` only.
    pub fn set_link_loss_during(
        &mut self,
        from: Step,
        until: Step,
        a: NodeId,
        b: NodeId,
        rate: f64,
    ) -> &mut Self {
        self.push_loss(Some(a), Some(b), rate, from, until)
    }

    fn push_loss(
        &mut self,
        from: Option<NodeId>,
        to: Option<NodeId>,
        rate: f64,
        from_step: Step,
        until_step: Step,
    ) -> &mut Self {
        assert!(
            rate.is_finite() && (0.0..=1.0).contains(&rate),
            "loss rate must be within [0, 1]"
        );
        assert!(from_step < until_step, "empty loss window");
        // A rule fully shadowing an identical pattern replaces it in place.
        if let Some(r) = self.loss.iter_mut().find(|r| {
            r.from == from && r.to == to && r.from_step == from_step && r.until_step == until_step
        }) {
            r.rate = rate;
        } else {
            self.loss.push(LossRule {
                from,
                to,
                rate,
                from_step,
                until_step,
            });
        }
        self
    }

    /// Removes every loss rule.
    pub fn clear_loss(&mut self) -> &mut Self {
        self.loss.clear();
        self
    }

    /// The effective drop probability of the `from -> to` link at step `now`:
    /// the most specific rule matching the link among those in force (ties:
    /// last added), or `0.0`.
    pub fn loss_rate(&self, from: NodeId, to: NodeId, now: Step) -> f64 {
        // `max_by_key` keeps the *last* maximal element, which is exactly the
        // documented tie-break: later rules shadow earlier equally-specific ones.
        self.loss
            .iter()
            .filter(|r| r.matches(from, to, now))
            .max_by_key(|r| r.specificity())
            .map_or(0.0, |r| r.rate)
    }

    /// Whether any loss rule (scheduled or not) could ever drop a message.
    pub fn has_loss(&self) -> bool {
        self.loss.iter().any(|r| r.rate > 0.0)
    }

    /// Whether any loss rule in force at `now` could drop a message (engine
    /// fast path: skip RNG draws on loss-free steps so fault-free stretches
    /// replay byte-identically whatever windows are scheduled later).
    pub fn has_loss_at(&self, now: Step) -> bool {
        self.loss
            .iter()
            .any(|r| r.rate > 0.0 && r.from_step <= now && now < r.until_step)
    }

    // ---- scheduling helpers ----

    /// The plan with every window shifted `offset` steps into the future:
    /// partition intervals and loss windows alike (saturating, so open-ended
    /// windows stay open-ended). Scenario compilers build plans on a relative
    /// timeline and shift them once the absolute start step is known.
    #[must_use]
    pub fn shifted(mut self, offset: Step) -> Self {
        for w in &mut self.partitions {
            w.from = w.from.saturating_add(offset);
            w.until = w.until.saturating_add(offset);
        }
        for r in &mut self.loss {
            // Un-windowed rules cover the whole run; keep them anchored at 0
            // so pre-window traffic behaves identically after the shift.
            if (r.from_step, r.until_step) != (0, Step::MAX) {
                r.from_step = r.from_step.saturating_add(offset);
                r.until_step = r.until_step.saturating_add(offset);
            }
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn split_partitions_by_boundary_and_interval() {
        let mut plan = FaultPlan::none();
        plan.add_split(10, 20, 3);
        assert!(!plan.is_trivial());
        // Inside the window, cross-boundary links are severed both ways.
        assert!(plan.severed(n(0), n(3), 10));
        assert!(plan.severed(n(5), n(2), 15));
        assert!(!plan.severed(n(0), n(2), 15)); // same side
        assert!(!plan.severed(n(3), n(9), 15)); // same side
                                                // Outside the window nothing is severed ([from, until) semantics).
        assert!(!plan.severed(n(0), n(3), 9));
        assert!(!plan.severed(n(0), n(3), 20));
        // Nodes joining later land on the high side.
        assert!(plan.severed(n(1), n(1000), 12));
        assert_eq!(plan.side_of(n(1), 12), Some("low"));
        assert_eq!(plan.side_of(n(1000), 12), Some("high"));
        assert_eq!(plan.side_of(n(1), 9), None);
    }

    #[test]
    fn oneway_split_cuts_a_single_direction() {
        let mut plan = FaultPlan::none();
        plan.add_split_oneway(0, 100, 3, true); // low -> high cut
        assert!(plan.severed(n(0), n(5), 50));
        assert!(!plan.severed(n(5), n(0), 50), "high -> low must stay open");
        assert!(!plan.severed(n(0), n(2), 50)); // same side
        assert!(!plan.severed(n(0), n(5), 100)); // window over
        let mut rev = FaultPlan::none();
        rev.add_split_oneway(0, 100, 3, false); // high -> low cut
        assert!(rev.severed(n(5), n(0), 50));
        assert!(!rev.severed(n(0), n(5), 50));
    }

    #[test]
    fn oneway_named_partition_respects_direction_and_bridges() {
        let mut plan = FaultPlan::none();
        plan.add_partition_oneway(
            0,
            100,
            &[("east", vec![n(0), n(1)]), ("west", vec![n(2)])],
            "east",
            "west",
        );
        assert!(plan.severed(n(0), n(2), 50));
        assert!(!plan.severed(n(2), n(0), 50), "west -> east must stay open");
        assert!(!plan.severed(n(0), n(1), 50)); // same side
        assert!(!plan.severed(n(7), n(2), 50)); // unlisted bridges still talk
        assert!(!plan.is_trivial());
    }

    #[test]
    #[should_panic(expected = "unknown partition side")]
    fn oneway_named_partition_rejects_unknown_side() {
        FaultPlan::none().add_partition_oneway(
            0,
            100,
            &[("east", vec![n(0)]), ("west", vec![n(1)])],
            "east",
            "north",
        );
    }

    #[test]
    #[should_panic(expected = "two distinct sides")]
    fn oneway_named_partition_rejects_same_side_twice() {
        FaultPlan::none().add_partition_oneway(
            0,
            100,
            &[("east", vec![n(0)]), ("west", vec![n(1)])],
            "east",
            "east",
        );
    }

    #[test]
    fn named_partition_leaves_unlisted_nodes_connected() {
        let mut plan = FaultPlan::none();
        plan.add_partition(0, 100, &[("east", vec![n(0), n(1)]), ("west", vec![n(2)])]);
        assert!(plan.severed(n(0), n(2), 50));
        assert!(!plan.severed(n(0), n(1), 50));
        // n(7) is in no side: it talks to everyone.
        assert!(!plan.severed(n(7), n(0), 50));
        assert!(!plan.severed(n(2), n(7), 50));
        assert_eq!(plan.side_of(n(2), 50), Some("west"));
        assert_eq!(plan.side_of(n(7), 50), None);
    }

    #[test]
    fn heal_truncates_open_windows_only() {
        let mut plan = FaultPlan::none();
        plan.add_split(10, Step::MAX, 4); // open-ended
        plan.add_split(500, 600, 4); // future window survives healing
        assert!(plan.severed(n(0), n(5), 100));
        assert_eq!(plan.heal_at(100), 1);
        assert!(!plan.severed(n(0), n(5), 100));
        assert!(!plan.severed(n(0), n(5), 300));
        assert!(plan.severed(n(0), n(5), 550)); // the future window still fires
        assert_eq!(plan.heal_at(100), 0); // nothing open any more at 100
    }

    #[test]
    fn loss_specificity_and_layering() {
        let mut plan = FaultPlan::none();
        assert_eq!(plan.loss_rate(n(0), n(1), 0), 0.0);
        plan.set_default_loss(0.1);
        plan.set_egress_loss(n(0), 0.5);
        plan.set_link_loss(n(0), n(1), 0.9);
        assert_eq!(plan.loss_rate(n(2), n(3), 0), 0.1);
        assert_eq!(plan.loss_rate(n(0), n(2), 0), 0.5);
        assert_eq!(plan.loss_rate(n(0), n(1), 0), 0.9);
        // Ingress beats wildcard, loses to exact link.
        plan.set_ingress_loss(n(1), 0.2);
        assert_eq!(plan.loss_rate(n(3), n(1), 0), 0.2);
        assert_eq!(plan.loss_rate(n(0), n(1), 0), 0.9);
        // Re-setting an identical pattern replaces it.
        plan.set_default_loss(0.0);
        assert_eq!(plan.loss_rate(n(2), n(3), 0), 0.0);
        plan.clear_loss();
        assert!(!plan.has_loss());
        assert!(plan.is_trivial()); // no partitions in this plan either
    }

    #[test]
    fn scheduled_loss_windows_bound_their_rates() {
        let mut plan = FaultPlan::none();
        plan.set_loss_during(50, 80, 0.3);
        assert!(!plan.severed(n(0), n(1), 60)); // loss is not a partition
        assert_eq!(plan.loss_rate(n(0), n(1), 49), 0.0);
        assert_eq!(plan.loss_rate(n(0), n(1), 50), 0.3);
        assert_eq!(plan.loss_rate(n(0), n(1), 79), 0.3);
        assert_eq!(plan.loss_rate(n(0), n(1), 80), 0.0);
        assert!(plan.has_loss());
        assert!(!plan.has_loss_at(10));
        assert!(plan.has_loss_at(60));
        assert!(!plan.has_loss_at(80));
        // A scheduled per-link rule beats the scheduled wildcard inside both
        // windows; outside its own window it is inert.
        plan.set_link_loss_during(60, 70, n(0), n(1), 0.9);
        assert_eq!(plan.loss_rate(n(0), n(1), 65), 0.9);
        assert_eq!(plan.loss_rate(n(0), n(1), 75), 0.3);
        assert_eq!(plan.loss_rate(n(2), n(3), 65), 0.3);
        // Re-scheduling the same pattern over the same window replaces it.
        plan.set_loss_during(50, 80, 0.1);
        assert_eq!(plan.loss_rate(n(0), n(1), 55), 0.1);
        // A different window for the same pattern layers (last added wins in
        // the overlap).
        plan.set_loss_during(70, 90, 0.6);
        assert_eq!(plan.loss_rate(n(0), n(1), 75), 0.6);
        assert_eq!(plan.loss_rate(n(0), n(1), 85), 0.6);
        assert_eq!(plan.loss_rate(n(0), n(1), 55), 0.1);
    }

    #[test]
    fn shifted_moves_windows_but_not_global_rules() {
        let mut plan = FaultPlan::none();
        plan.add_split(10, 20, 3);
        plan.set_loss_during(10, 20, 0.5);
        plan.set_default_loss(0.1);
        let plan = plan.shifted(100);
        assert!(!plan.severed(n(0), n(5), 15));
        assert!(plan.severed(n(0), n(5), 115));
        assert_eq!(plan.loss_rate(n(0), n(5), 15), 0.1); // global rule holds
        assert_eq!(plan.loss_rate(n(0), n(5), 115), 0.5);
        // Open-ended windows stay open-ended after a shift.
        let mut open = FaultPlan::none();
        open.add_split(0, Step::MAX, 1);
        let open = open.shifted(7);
        assert!(open.severed(n(0), n(1), Step::MAX - 1));
    }

    #[test]
    #[should_panic(expected = "empty loss window")]
    fn empty_loss_window_panics() {
        FaultPlan::none().set_loss_during(10, 10, 0.5);
    }

    #[test]
    #[should_panic(expected = "loss rate")]
    fn out_of_range_loss_panics() {
        FaultPlan::none().set_default_loss(1.5);
    }

    #[test]
    fn trivial_plan_is_free_of_faults() {
        let mut plan = FaultPlan::none();
        assert!(plan.is_trivial());
        plan.set_default_loss(0.0);
        assert!(plan.is_trivial()); // zero-rate rules don't count
        plan.add_split(0, 10, 1);
        assert!(!plan.is_trivial());
    }
}
