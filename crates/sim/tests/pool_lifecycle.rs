//! Lifecycle of the persistent shard worker pool: workers are spawned once
//! per `Sim::new_sharded`, parked between steps, and joined when the `Sim`
//! drops. This test pins that contract with the OS's own accounting — the
//! `Threads:` line of `/proc/self/status` — across repeated
//! construct/run/drop cycles in one process, and checks that a rebuilt
//! simulation replays byte-identically (dropping a pool must leave no state
//! behind that could perturb the next one).
//!
//! Everything runs in a single `#[test]` on purpose: thread counts are
//! process-global, so a concurrently running test that builds its own
//! sharded `Sim` would make the arithmetic racy.

use dps_sim::{Context, Message, MsgClass, NodeId, Process, Sim};

const NODES: usize = 12;
const SHARDS: usize = 4;

#[derive(Clone, Debug)]
struct Hop(u32);

impl Message for Hop {
    fn class(&self) -> MsgClass {
        MsgClass::Management
    }
}

/// A counter on a ring: each delivery bumps the local count and forwards the
/// hop until its budget runs out. Enough traffic to keep every worker busy.
struct Counter(u64);

impl Process for Counter {
    type Msg = Hop;

    fn on_message(&mut self, _from: NodeId, msg: Hop, ctx: &mut Context<'_, Hop>) {
        self.0 += 1;
        if msg.0 > 0 {
            let next = NodeId::from_index((ctx.me().index() + 1) % NODES);
            ctx.send(next, Hop(msg.0 - 1));
        }
    }
}

/// Live threads in this process, per the kernel (`Threads:` in
/// `/proc/self/status`).
fn os_thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("procfs");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

/// Builds a `shards`-shard simulation, runs a fixed scenario and returns its
/// observable digest. The `Sim` (and its pool, if any) drops on return.
fn run_digest(shards: usize) -> String {
    let mut sim = Sim::new_sharded(0xD1CE, shards);
    for _ in 0..NODES {
        sim.add_node(Counter(0));
    }
    sim.post(NodeId::from_index(0), Hop(200));
    sim.post(NodeId::from_index(5), Hop(150));
    sim.run(100);
    sim.crash(NodeId::from_index(3));
    sim.post(NodeId::from_index(7), Hop(120));
    sim.run(200);
    let counts: Vec<u64> = sim
        .node_ids()
        .iter()
        .map(|n| sim.node(*n).map_or(0, |c| c.0))
        .collect();
    format!("{counts:?} {:?}", sim.snapshot())
}

#[test]
fn pool_workers_join_on_drop_and_rebuilds_replay_identically() {
    let baseline = os_thread_count();

    // A single-shard sim spawns no pool at all.
    {
        let mut sim = Sim::new_sharded(1, 1);
        sim.add_node(Counter(0));
        sim.run(5);
        assert_eq!(
            os_thread_count(),
            baseline,
            "a 1-shard Sim must not spawn worker threads"
        );
    }

    // Repeated construct/run/drop: each cycle spawns exactly SHARDS workers,
    // and dropping the Sim joins them all — the count returns to baseline
    // every time, so nothing leaks no matter how many sims a process builds.
    let mut digests = Vec::new();
    for cycle in 0..8 {
        {
            let mut sim = Sim::new_sharded(0xD1CE, SHARDS);
            assert_eq!(
                os_thread_count(),
                baseline + SHARDS,
                "cycle {cycle}: expected exactly {SHARDS} pool workers"
            );
            for _ in 0..NODES {
                sim.add_node(Counter(0));
            }
            sim.post(NodeId::from_index(0), Hop(50));
            sim.run(30);
            assert_eq!(
                os_thread_count(),
                baseline + SHARDS,
                "cycle {cycle}: running must reuse the pool, not spawn threads"
            );
        }
        assert_eq!(
            os_thread_count(),
            baseline,
            "cycle {cycle}: dropping the Sim must join every worker"
        );
        // Full digest run for the determinism half of the contract.
        digests.push(run_digest(SHARDS));
        assert_eq!(
            os_thread_count(),
            baseline,
            "cycle {cycle}: digest run leaked"
        );
    }

    // Drop-and-rebuild determinism: every sharded cycle replayed the same
    // bytes, and they match the serial (poolless) run.
    let serial = run_digest(1);
    for (cycle, digest) in digests.iter().enumerate() {
        assert_eq!(
            digest, &serial,
            "cycle {cycle}: rebuilt sharded run diverged from the serial run"
        );
    }
}
