//! The 500-word string dictionary of the paper ("values for string attributes
//! are chosen in a dictionary of 500 values").
//!
//! The paper does not publish its dictionary, so we generate a deterministic one:
//! pronounceable lowercase words with shared prefixes/suffixes, so that the
//! prefix/suffix/substring wildcards of the subscription language actually match
//! interesting subsets (an i.i.d. random-letter dictionary would make wildcard
//! groups almost always singletons, which would understate group sharing).

use std::sync::OnceLock;

const SYLLABLES: [&str; 20] = [
    "ba", "co", "da", "fe", "gi", "ho", "ju", "ka", "li", "mo", "na", "pe", "qui", "ra", "so",
    "ta", "ve", "wi", "xa", "zu",
];

/// Returns the shared 500-word dictionary. Deterministic across runs.
pub fn dictionary() -> &'static [String] {
    static DICT: OnceLock<Vec<String>> = OnceLock::new();
    DICT.get_or_init(|| {
        // First syllables cycle so every one-syllable prefix covers exactly 25 of
        // the 500 words (5%): prefix subscriptions then select a stable small
        // fraction, as a hand-curated dictionary would.
        (0..500u32)
            .map(|i| {
                let a = (i % 20) as usize;
                let b = ((i / 20) % 20) as usize;
                let c = ((i / 400 + i) % 20) as usize;
                format!("{}{}{}", SYLLABLES[a], SYLLABLES[b], SYLLABLES[c])
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_hundred_distinct_words() {
        let d = dictionary();
        assert_eq!(d.len(), 500);
        let set: std::collections::HashSet<_> = d.iter().collect();
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn every_first_syllable_prefix_covers_five_percent() {
        let d = dictionary();
        for s in super::SYLLABLES {
            let n = d.iter().filter(|w| w.starts_with(s)).count();
            // "qui" prefixes also catch nothing else; all ~25 each.
            assert!((20..=30).contains(&n), "prefix {s} covers {n} words");
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(dictionary()[0], dictionary()[0].clone());
        assert_eq!(dictionary()[0], "bababa");
    }
}
