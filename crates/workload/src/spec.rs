//! Workload specifications: per-attribute generation parameters and the three
//! presets of Table 1.

use dps_content::{Event, Filter, Predicate, Value};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dict::dictionary;
use crate::dist::Dist;

/// Generation parameters for one attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrSpec {
    /// A numeric attribute over the domain `0..domain`.
    Numeric {
        /// Attribute name.
        name: String,
        /// Domain size.
        domain: u64,
        /// Distribution of event values.
        ev_dist: Dist,
        /// Distribution of subscription range centers / equality values.
        sub_dist: Dist,
        /// Average range size as a fraction of the domain ("Range Size").
        range_frac: f64,
        /// Fraction of equality predicates ("Eq. Perc."); the rest are ranges.
        eq_frac: f64,
        /// Fraction of one-sided *exceeded-threshold* predicates (`a > t`),
        /// drawn before the equality/range split. Zero everywhere except
        /// alert-style workloads: a two-sided range parked on the critical top
        /// of the scale has a `a < hi` half that matches almost every normal
        /// (low) reading, which floods the tree with false contacts; a
        /// one-sided threshold only fires on the rare critical readings.
        gt_frac: f64,
    },
    /// A string attribute over the 500-word dictionary.
    Str {
        /// Attribute name.
        name: String,
        /// Distribution of event values over the dictionary.
        ev_dist: Dist,
        /// Distribution of subscription word choices.
        sub_dist: Dist,
        /// Fraction of equality predicates; the rest are prefix wildcards over
        /// the chosen word's first syllable.
        eq_frac: f64,
    },
}

impl AttrSpec {
    /// The attribute's name.
    pub fn name(&self) -> &str {
        match self {
            AttrSpec::Numeric { name, .. } | AttrSpec::Str { name, .. } => name,
        }
    }

    /// Generates the predicates one subscription places on this attribute.
    pub fn predicates(&self, rng: &mut impl Rng) -> Vec<Predicate> {
        match self {
            AttrSpec::Numeric {
                name,
                domain,
                sub_dist,
                range_frac,
                eq_frac,
                gt_frac,
                ..
            } => {
                let center = sub_dist.sample(*domain, rng) as i64;
                // The `> 0.0` guard keeps the draw sequence of gt-free
                // workloads byte-identical to what it always was.
                if *gt_frac > 0.0 && rng.random::<f64>() < *gt_frac {
                    vec![Predicate::gt(name.as_str(), center)]
                } else if rng.random::<f64>() < *eq_frac {
                    vec![Predicate::eq(name.as_str(), center)]
                } else {
                    // A range `lo < a < hi` of roughly `range_frac * domain`
                    // values around the center, clamped to the domain.
                    let width = ((*domain as f64) * range_frac).max(1.0) as i64;
                    let lo = (center - width / 2 - 1).max(-1);
                    let hi = lo + width + 1;
                    vec![
                        Predicate::gt(name.as_str(), lo),
                        Predicate::lt(name.as_str(), hi),
                    ]
                }
            }
            AttrSpec::Str {
                name,
                sub_dist,
                eq_frac,
                ..
            } => {
                let dict = dictionary();
                let word = &dict[sub_dist.sample(dict.len() as u64, rng) as usize];
                if rng.random::<f64>() < *eq_frac {
                    vec![Predicate::str_eq(name.as_str(), word)]
                } else {
                    // Prefix over the first syllable (2–3 characters): matches the
                    // ~1/20 of the dictionary sharing it.
                    let cut = if word.starts_with("qui") { 3 } else { 2 };
                    vec![Predicate::prefix(name.as_str(), &word[..cut])]
                }
            }
        }
    }

    /// Generates this attribute's value for one event.
    pub fn value(&self, rng: &mut impl Rng) -> Value {
        match self {
            AttrSpec::Numeric {
                domain, ev_dist, ..
            } => Value::from(ev_dist.sample(*domain, rng) as i64),
            AttrSpec::Str { ev_dist, .. } => {
                let dict = dictionary();
                Value::from(dict[ev_dist.sample(dict.len() as u64, rng) as usize].as_str())
            }
        }
    }
}

/// How a subscription picks its attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SubShape {
    /// Every subscription constrains all attributes (Workloads 2 and 3).
    All,
    /// Every subscription constrains exactly one attribute, chosen uniformly
    /// (Workload 1: a stock watcher follows either a price level or a symbol).
    OneOf,
}

/// A complete workload: attribute specs plus the subscription shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    name: String,
    attrs: Vec<AttrSpec>,
    shape: SubShape,
}

impl Workload {
    /// Builds a custom workload.
    pub fn new(name: impl Into<String>, attrs: Vec<AttrSpec>, shape: SubShape) -> Self {
        Workload {
            name: name.into(),
            attrs,
            shape,
        }
    }

    /// **Workload 1** — stock exchange (the distributions found by Wang et al.
    /// for real pub/sub stock data, per the paper): uniform events, Zipf
    /// subscriptions; numeric attribute with 10% ranges and 50% equalities;
    /// string attribute with 50% equalities (else first-syllable prefixes).
    pub fn stock_exchange() -> Self {
        Workload::new(
            "stock exchange (workload 1)",
            vec![
                AttrSpec::Numeric {
                    name: "price".into(),
                    domain: 1000,
                    ev_dist: Dist::Uniform,
                    sub_dist: Dist::Zipf(1.0),
                    range_frac: 0.10,
                    eq_frac: 0.50,
                    gt_frac: 0.0,
                },
                AttrSpec::Str {
                    name: "symbol".into(),
                    ev_dist: Dist::Uniform,
                    sub_dist: Dist::Zipf(1.0),
                    eq_frac: 0.50,
                },
            ],
            SubShape::OneOf,
        )
    }

    /// **Workload 2** — multiplayer game: players subscribe to zones of a
    /// bidimensional plane; two uniform numeric attributes, 50% ranges, no
    /// equalities. The least favorable workload for DPS (most false positives).
    pub fn multiplayer_game() -> Self {
        let coord = |name: &str| AttrSpec::Numeric {
            name: name.into(),
            domain: 1000,
            ev_dist: Dist::Uniform,
            sub_dist: Dist::Uniform,
            range_frac: 0.50,
            eq_frac: 0.0,
            gt_frac: 0.0,
        };
        Workload::new(
            "multiplayer game (workload 2)",
            vec![coord("x"), coord("y")],
            SubShape::All,
        )
    }

    /// **Workload 3** — alert monitoring: subscriptions concentrate on a
    /// restricted set of critical values; three numeric attributes, 80%
    /// one-sided exceeded-threshold alerts and 20% equalities on specific
    /// critical codes; overall match rate very low.
    pub fn alert_monitoring() -> Self {
        // Events concentrate on low (normal) readings; subscriptions watch the
        // rare critical top of the scale — "the overall number of matches is
        // very low" (§5.2). Alerts are one-sided (`cpu > t`): a two-sided
        // band's lower half would match nearly every normal reading and flood
        // the trees with false contacts. The exponents are calibrated against
        // Table 1's alert row (0.42% matching, 17.15% contacted): a typical
        // reading exceeds a typical threshold with probability ≈ 0.2 per
        // attribute, so a three-attribute conjunction matches ≈ 0.8³·0.2³
        // ≈ 0.4% of events while the joined single-threshold group is
        // contacted by ≈ 16% of them.
        let metric = |name: &str| AttrSpec::Numeric {
            name: name.into(),
            domain: 1000,
            ev_dist: Dist::Zipf(0.6),
            sub_dist: Dist::ZipfTail(0.45),
            range_frac: 0.20,
            eq_frac: 1.0,
            gt_frac: 0.80,
        };
        Workload::new(
            "alert monitoring (workload 3)",
            vec![metric("cpu"), metric("mem"), metric("net")],
            SubShape::All,
        )
    }

    /// The workload's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute specifications.
    pub fn attrs(&self) -> &[AttrSpec] {
        &self.attrs
    }

    /// Generates one subscription filter.
    pub fn subscription(&self, rng: &mut impl Rng) -> Filter {
        match self.shape {
            SubShape::All => Filter::new(
                self.attrs
                    .iter()
                    .flat_map(|a| a.predicates(rng))
                    .collect::<Vec<_>>(),
            ),
            SubShape::OneOf => {
                let i = rng.random_range(0..self.attrs.len());
                Filter::new(self.attrs[i].predicates(rng))
            }
        }
    }

    /// Generates one event carrying a value for every attribute.
    pub fn event(&self, rng: &mut impl Rng) -> Event {
        Event::new(
            self.attrs
                .iter()
                .map(|a| (a.name(), a.value(rng)))
                .collect::<Vec<_>>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    #[test]
    fn workload2_matching_rate_is_about_25_percent() {
        // Analytical expectation from the paper's Table 1: 25.13% matching.
        let w = Workload::multiplayer_game();
        let mut rng = rng();
        let subs: Vec<Filter> = (0..300).map(|_| w.subscription(&mut rng)).collect();
        let mut matches = 0usize;
        let mut total = 0usize;
        for _ in 0..300 {
            let ev = w.event(&mut rng);
            for s in &subs {
                total += 1;
                if s.matches(&ev) {
                    matches += 1;
                }
            }
        }
        let rate = matches as f64 / total as f64;
        assert!(
            (0.18..=0.32).contains(&rate),
            "matching rate {rate} far from the paper's 25%"
        );
    }

    #[test]
    fn workload_match_rates_are_ordered_like_table1() {
        // Table 1: game (25.13%) >> stock (2.37%) > alert (0.42%).
        let mut rng = rng();
        let rate = |w: &Workload, rng: &mut rand::rngs::StdRng| {
            let subs: Vec<Filter> = (0..400).map(|_| w.subscription(rng)).collect();
            let mut m = 0usize;
            for _ in 0..400 {
                let ev = w.event(rng);
                m += subs.iter().filter(|s| s.matches(&ev)).count();
            }
            m as f64 / (400.0 * 400.0)
        };
        let game = rate(&Workload::multiplayer_game(), &mut rng);
        let stock = rate(&Workload::stock_exchange(), &mut rng);
        let alert = rate(&Workload::alert_monitoring(), &mut rng);
        assert!(game > stock, "game {game} vs stock {stock}");
        assert!(stock > alert, "stock {stock} vs alert {alert}");
        assert!(
            alert < 0.02,
            "alert workload must be very selective: {alert}"
        );
        // …but not degenerate: Table 1 reports 0.42% matching, so the rare
        // full alert (all three metrics critical at once) must still occur.
        assert!(
            alert > 0.0005,
            "alert workload must keep a nonzero match rate: {alert}"
        );
    }

    #[test]
    fn ranges_are_two_predicates_on_one_attribute() {
        let w = Workload::multiplayer_game();
        let mut rng = rng();
        let f = w.subscription(&mut rng);
        assert_eq!(f.attributes().len(), 2);
        assert_eq!(f.len(), 4); // two ranges of two predicates each
    }

    #[test]
    fn stock_subscriptions_use_one_attribute() {
        let w = Workload::stock_exchange();
        let mut rng = rng();
        for _ in 0..50 {
            let f = w.subscription(&mut rng);
            assert_eq!(f.attributes().len(), 1);
        }
    }

    #[test]
    fn events_carry_every_attribute() {
        let mut rng = rng();
        for w in [
            Workload::stock_exchange(),
            Workload::multiplayer_game(),
            Workload::alert_monitoring(),
        ] {
            let ev = w.event(&mut rng);
            assert_eq!(ev.len(), w.attrs().len(), "{}", w.name());
        }
    }

    #[test]
    fn numeric_range_straddles_its_center() {
        let spec = AttrSpec::Numeric {
            name: "a".into(),
            domain: 1000,
            ev_dist: Dist::Uniform,
            sub_dist: Dist::Uniform,
            range_frac: 0.1,
            eq_frac: 0.0,
            gt_frac: 0.0,
        };
        let mut rng = rng();
        for _ in 0..100 {
            let ps = spec.predicates(&mut rng);
            assert_eq!(ps.len(), 2);
            let f = Filter::new(ps.clone());
            // The range is non-empty: some domain value matches.
            let lo = ps[0].constant().as_int().unwrap();
            let probe = Event::new([("a", Value::from(lo + 1))]);
            assert!(f.matches(&probe), "{f}");
        }
    }
}
