//! Value distributions: uniform and Zipf over a discrete domain, as in the
//! paper's workload table ("Ev. Distr." / "Sub. Distr." columns).

use rand::Rng;
use rand_distr::{Distribution, Zipf};
use serde::{Deserialize, Serialize};

/// A distribution over the discrete domain `0..domain`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Uniform over the domain.
    Uniform,
    /// Zipf with the given exponent (the paper does not state one; 1.0 is the
    /// customary choice in the pub/sub workload literature it cites).
    Zipf(f64),
    /// Zipf concentrated on the *top* of the domain (rank 1 maps to the largest
    /// value). Models alert subscriptions watching critical thresholds that
    /// events rarely reach.
    ZipfTail(f64),
}

impl Dist {
    /// Draws an index in `0..domain`.
    ///
    /// # Panics
    ///
    /// Panics if `domain` is zero.
    pub fn sample(&self, domain: u64, rng: &mut impl Rng) -> u64 {
        assert!(domain > 0, "empty domain");
        match self {
            Dist::Uniform => rng.random_range(0..domain),
            Dist::Zipf(s) => {
                let z = Zipf::new(domain as f64, *s).expect("valid zipf parameters");
                // Zipf yields ranks in 1..=domain.
                (z.sample(rng) as u64).saturating_sub(1).min(domain - 1)
            }
            Dist::ZipfTail(s) => {
                let low = Dist::Zipf(*s).sample(domain, rng);
                domain - 1 - low
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_covers_domain() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[Dist::Uniform.sample(10, &mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut counts = [0u32; 100];
        for _ in 0..10_000 {
            counts[Dist::Zipf(1.0).sample(100, &mut rng) as usize] += 1;
        }
        // Rank 0 must dominate rank 50 by a wide margin.
        assert!(counts[0] > 10 * counts[50].max(1));
        // All samples in range (no panic, no out-of-domain).
        assert_eq!(counts.iter().map(|c| *c as u64).sum::<u64>(), 10_000);
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn zero_domain_panics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        Dist::Uniform.sample(0, &mut rng);
    }
}
