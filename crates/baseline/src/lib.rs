//! The broadcast baseline DPS is compared against (§5.2, *False Positives*):
//! "DPS allows to cut the number of the visited nodes with respect to a
//! broadcast by at least of the 45%, by a 70% on average, up to the 87%".
//!
//! A broadcast pub/sub has no semantic structure: every node keeps a few random
//! neighbors and every event is flooded to the whole network; each node then
//! matches the event against its own subscriptions. Every node is therefore
//! *visited* by every event — the yardstick the DPS "contacted" percentages are
//! measured against.
//!
//! ```
//! use dps_baseline::BroadcastNet;
//!
//! let mut net = BroadcastNet::new(64, 4, 42);
//! net.subscribe(net.nodes()[0], "a > 5".parse().unwrap());
//! net.run(10);
//! let id = net.publish(net.nodes()[1], "a = 9".parse().unwrap());
//! net.run(20);
//! assert_eq!(net.visited(id), 64); // broadcast touches everyone
//! assert_eq!(net.notified(id), 1); // but only one subscriber matches
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashSet;
use std::sync::Arc;

use dps_content::{match_mode, Event, Filter, FilterIndex, MatchMode, MatchScratch, SharedEvent};
use dps_overlay::{CountingSink, PubId, StatsSink};
use dps_sim::{Context, Message, MsgClass, NodeId, Process, Sim};
use rand::Rng;

/// Flooded event message.
#[derive(Debug, Clone)]
pub struct Flood {
    id: PubId,
    /// Refcounted: re-flooding to every neighbor clones the `Arc`, so the
    /// whole broadcast shares the publisher's one allocation.
    event: SharedEvent,
}

impl Message for Flood {
    fn class(&self) -> MsgClass {
        MsgClass::Publication
    }
}

/// A baseline node: random neighbors, flood-on-first-receipt, local matching.
pub struct FloodNode {
    id: NodeId,
    neighbors: Vec<NodeId>,
    subs: FilterIndex<u32>,
    next_sub: u32,
    scratch: MatchScratch,
    seen: HashSet<PubId>,
    sink: Arc<CountingSink>,
    next_pub: u32,
}

impl FloodNode {
    fn new(sink: Arc<CountingSink>) -> Self {
        FloodNode {
            id: NodeId::from_index(0),
            neighbors: Vec::new(),
            subs: FilterIndex::new(),
            next_sub: 0,
            scratch: MatchScratch::new(),
            seen: HashSet::new(),
            sink,
            next_pub: 0,
        }
    }

    fn deliver(&mut self, msg: &Flood, ctx: &mut Context<'_, Flood>) {
        if !self.seen.insert(msg.id) {
            return;
        }
        self.sink.on_contact(msg.id, self.id, ctx.now());
        let matched = match match_mode() {
            MatchMode::Scan => self.subs.entries().any(|(_, f)| f.matches(&msg.event)),
            MatchMode::Index => self.subs.any_match(&msg.event, &mut self.scratch),
        };
        if matched {
            self.sink.on_notify(msg.id, self.id, ctx.now());
            self.sink.on_deliver(msg.id, self.id, &msg.event, ctx.now());
        }
        for n in self.neighbors.clone() {
            ctx.send(n, msg.clone());
        }
    }
}

impl Process for FloodNode {
    type Msg = Flood;

    fn on_start(&mut self, ctx: &mut Context<'_, Flood>) {
        self.id = ctx.me();
    }

    fn on_message(&mut self, _from: NodeId, msg: Flood, ctx: &mut Context<'_, Flood>) {
        self.deliver(&msg, ctx);
    }
}

/// A complete broadcast network over `n` nodes with `degree` random out-links
/// each (plus a ring edge for guaranteed connectivity).
pub struct BroadcastNet {
    sim: Sim<FloodNode>,
    sink: Arc<CountingSink>,
    nodes: Vec<NodeId>,
}

impl BroadcastNet {
    /// Builds the network.
    pub fn new(n: usize, degree: usize, seed: u64) -> Self {
        let sink = Arc::new(CountingSink::new());
        let mut sim = Sim::new(seed);
        let nodes: Vec<NodeId> = (0..n)
            .map(|_| sim.add_node(FloodNode::new(sink.clone())))
            .collect();
        // Ring + random chords: connected, low diameter.
        for i in 0..n {
            let mut neigh = vec![nodes[(i + 1) % n]];
            while neigh.len() < degree.min(n - 1) {
                let j = sim.rng().random_range(0..n);
                if j != i && !neigh.contains(&nodes[j]) {
                    neigh.push(nodes[j]);
                }
            }
            sim.node_mut(nodes[i]).unwrap().neighbors = neigh;
        }
        BroadcastNet { sim, sink, nodes }
    }

    /// The node ids.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Installs a subscription (purely local in a broadcast system).
    pub fn subscribe(&mut self, node: NodeId, filter: Filter) {
        if let Some(n) = self.sim.node_mut(node) {
            let id = n.next_sub;
            n.next_sub += 1;
            n.subs.insert(id, filter);
        }
    }

    /// Publishes an event by flooding from `node`.
    pub fn publish(&mut self, node: NodeId, event: Event) -> PubId {
        let mut out = None;
        self.sim.invoke(node, |n, ctx| {
            let id = PubId(n.id, n.next_pub);
            n.next_pub += 1;
            let msg = Flood {
                id,
                event: event.into(),
            };
            n.deliver(&msg, ctx);
            out = Some(id);
        });
        out.expect("publisher alive")
    }

    /// Runs `steps` simulation steps.
    pub fn run(&mut self, steps: u64) {
        self.sim.run(steps);
    }

    /// Nodes visited by publication `id` so far.
    pub fn visited(&self, id: PubId) -> usize {
        self.sink.contacted(id)
    }

    /// Nodes whose subscriptions matched publication `id`.
    pub fn notified(&self, id: PubId) -> usize {
        self.sink.notified(id)
    }

    /// Messages sent so far in the whole network.
    pub fn messages_sent(&self) -> u64 {
        self.sim.metrics().total_sent(MsgClass::Publication)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flood_reaches_every_node() {
        let mut net = BroadcastNet::new(50, 3, 1);
        let id = net.publish(net.nodes()[7], "a = 1".parse().unwrap());
        net.run(60);
        assert_eq!(net.visited(id), 50);
    }

    #[test]
    fn matching_is_local() {
        let mut net = BroadcastNet::new(20, 3, 2);
        net.subscribe(net.nodes()[3], "a > 0".parse().unwrap());
        net.subscribe(net.nodes()[4], "a < 0".parse().unwrap());
        let id = net.publish(net.nodes()[0], "a = 5".parse().unwrap());
        net.run(40);
        assert_eq!(net.visited(id), 20);
        assert_eq!(net.notified(id), 1);
    }

    #[test]
    fn message_cost_scales_with_degree() {
        let mut small = BroadcastNet::new(30, 2, 3);
        let id = small.publish(small.nodes()[0], "a = 1".parse().unwrap());
        small.run(40);
        let low = small.messages_sent();
        assert_eq!(small.visited(id), 30);

        let mut big = BroadcastNet::new(30, 6, 3);
        let id2 = big.publish(big.nodes()[0], "a = 1".parse().unwrap());
        big.run(40);
        assert_eq!(big.visited(id2), 30);
        assert!(big.messages_sent() > low);
    }
}
