//! Property-based tests of the centralized reference model: the structural
//! invariants of §3 hold for any subscription mix and insertion order, and the
//! dissemination semantics are sound and complete with respect to plain
//! filter matching on the joined predicate.

use dps_content::strategies as st;
use dps_overlay::model::{ForestModel, TreeModel};
use dps_sim::NodeId;
use proptest::prelude::*;

proptest! {
    /// Invariants hold under arbitrary insertion sequences: unique labels,
    /// parents on the designated path, C2 minimality, index consistency.
    #[test]
    fn tree_invariants_hold_for_any_insertion_order(
        preds in proptest::collection::vec(st::numeric_predicate(), 1..40)
    ) {
        let mut trees: std::collections::HashMap<String, TreeModel> =
            std::collections::HashMap::new();
        for (i, p) in preds.iter().enumerate() {
            trees
                .entry(p.name().as_str().to_owned())
                .or_insert_with(|| TreeModel::new(p.name().clone()))
                .insert(p, NodeId::from_index(i));
        }
        for t in trees.values() {
            prop_assert!(t.check_invariants().is_ok(), "{:?}", t.check_invariants());
        }
    }

    /// Shape determinism (numeric chains): any permutation of the same predicate
    /// multiset yields the same parent relation.
    #[test]
    fn numeric_tree_shape_is_order_independent(
        mut preds in proptest::collection::vec(st::numeric_predicate(), 2..20),
        seed in 0u64..100,
    ) {
        // Restrict to one attribute so permutations act on one tree.
        for p in &mut preds {
            *p = dps_content::Predicate::new("a", p.op(), p.constant().clone()).unwrap();
        }
        let build = |ps: &[dps_content::Predicate]| {
            let mut t = TreeModel::new("a".into());
            for (i, p) in ps.iter().enumerate() {
                t.insert(p, NodeId::from_index(i));
            }
            let mut rel: Vec<(String, String)> = t
                .groups()
                .iter()
                .filter_map(|g| {
                    g.parent.map(|pi| {
                        (g.label.to_string(), t.groups()[pi].label.to_string())
                    })
                })
                .collect();
            rel.sort();
            rel
        };
        let base = build(&preds);
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut shuffled = preds.clone();
        shuffled.shuffle(&mut rng);
        prop_assert_eq!(base, build(&shuffled));
    }

    /// Dissemination soundness + completeness at the model level: a subscriber is
    /// contacted iff its joined predicate matches the event.
    #[test]
    fn contacted_iff_joined_predicate_matches(
        preds in proptest::collection::vec(st::numeric_predicate(), 1..30),
        e in st::full_event(),
    ) {
        let mut forest = ForestModel::new();
        for (i, p) in preds.iter().enumerate() {
            let f = dps_content::SharedFilter::from(dps_content::Filter::new([p.clone()]));
            forest.subscribe(NodeId::from_index(i), &f, 0);
        }
        let contacted = forest.contacted_subscribers(&e);
        for (i, p) in preds.iter().enumerate() {
            let matches = e.get(p.name()).is_some_and(|v| p.matches_value(v));
            prop_assert_eq!(
                contacted.contains(&NodeId::from_index(i)),
                matches,
                "subscriber {} ({}) vs event {}",
                i,
                p,
                e
            );
        }
        // And notified (oracle matching) is exactly the matching subset.
        let matching = forest.matching_subscribers(&e);
        for n in &matching {
            prop_assert!(contacted.contains(n), "matching node not contacted");
        }
    }

    /// The level-size distribution always sums to the number of groups, and the
    /// depth is consistent with it.
    #[test]
    fn level_sizes_are_consistent(
        preds in proptest::collection::vec(st::numeric_predicate(), 1..30)
    ) {
        let mut t = TreeModel::new("a".into());
        for (i, p) in preds.iter().enumerate() {
            if p.name().as_str() == "a" {
                t.insert(p, NodeId::from_index(i));
            }
        }
        let levels = t.level_sizes();
        prop_assert_eq!(levels.iter().sum::<usize>(), t.groups().len());
        prop_assert_eq!(levels.len() - 1, t.depth());
        prop_assert_eq!(levels[0], 1); // exactly one root
    }
}
