//! Direct tests of the protocol node through the simulator, below the facade:
//! tree creation, role assignment, view contents, owner bookkeeping, message
//! classes — the mechanics the integration suite only exercises indirectly.

use std::sync::Arc;

use dps_overlay::{CommKind, CountingSink, DpsConfig, DpsNode, JoinRule, StatsSink, TraversalKind};
use dps_sim::{MsgClass, NodeId, Sim};

fn network(cfg: DpsConfig, n: usize, seed: u64) -> (Sim<DpsNode>, Vec<NodeId>, Arc<CountingSink>) {
    let sink = Arc::new(CountingSink::new());
    let mut sim = Sim::new(seed);
    let mut nodes = Vec::new();
    for _ in 0..n {
        let s: Arc<dyn StatsSink> = sink.clone();
        let mut node = DpsNode::with_sink(cfg.clone(), s);
        node.seed_peers(nodes.clone());
        let id = sim.add_node(node);
        nodes.push(id);
    }
    // Give earlier nodes a handle on the later ones too.
    for id in &nodes {
        let peers = nodes.clone();
        if let Some(nd) = sim.node_mut(*id) {
            nd.seed_peers(peers);
        }
    }
    sim.run(5);
    (sim, nodes, sink)
}

fn cfg() -> DpsConfig {
    let mut c = DpsConfig::named(TraversalKind::Root, CommKind::Leader);
    c.join_rule = JoinRule::First;
    c
}

#[test]
fn first_subscriber_becomes_owner_and_leader() {
    let (mut sim, nodes, _) = network(cfg(), 4, 1);
    sim.invoke(nodes[0], |n, ctx| {
        n.subscribe("a > 1".parse::<dps_content::Filter>().unwrap(), ctx);
    });
    sim.run(300);
    let n0 = sim.node(nodes[0]).unwrap();
    assert_eq!(n0.pending_subscriptions(), 0);
    assert_eq!(n0.owned_attrs(), vec!["a".into()]);
    // Two memberships: the root vertex it owns, and its own predicate group.
    assert_eq!(n0.memberships().len(), 2);
    let group = n0
        .memberships()
        .iter()
        .find(|m| !m.label.is_root())
        .unwrap();
    assert!(group.is_leader());
    assert_eq!(group.members, vec![nodes[0]]);
    assert_eq!(group.predview.len(), 1);
    assert!(group.predview[0].label.is_root());
}

#[test]
fn co_leaders_are_the_first_joiners() {
    let (mut sim, nodes, _) = network(cfg(), 6, 2);
    for node in &nodes[..4] {
        sim.invoke(*node, |n, ctx| {
            n.subscribe("a > 1".parse::<dps_content::Filter>().unwrap(), ctx);
        });
        sim.run(120);
    }
    sim.run(200);
    // Kc = 2 co-leaders by default: nodes 1 and 2; node 3 is a plain member.
    let leader = sim.node(nodes[0]).unwrap();
    let g = leader
        .memberships()
        .iter()
        .find(|m| !m.label.is_root())
        .unwrap();
    assert!(g.is_leader());
    assert_eq!(g.members.len(), 4);
    assert_eq!(g.co_leaders, vec![nodes[1], nodes[2]]);
    let member = sim.node(nodes[3]).unwrap();
    let gm = member.memberships().first().unwrap();
    assert!(!gm.is_leadership());
    assert_eq!(gm.leader, nodes[0]);
}

#[test]
fn same_predicate_subscriptions_share_one_membership() {
    let (mut sim, nodes, _) = network(cfg(), 3, 3);
    sim.invoke(nodes[0], |n, ctx| {
        n.subscribe("a > 1 & b > 0".parse::<dps_content::Filter>().unwrap(), ctx);
    });
    sim.run(200);
    sim.invoke(nodes[0], |n, ctx| {
        n.subscribe("a > 1 & b < 9".parse::<dps_content::Filter>().unwrap(), ctx);
    });
    sim.run(100);
    let n0 = sim.node(nodes[0]).unwrap();
    assert_eq!(n0.subscription_count(), 2);
    let group = n0
        .memberships()
        .iter()
        .find(|m| !m.label.is_root())
        .unwrap();
    assert_eq!(group.sub_ids.len(), 2, "both subs share the a > 1 group");
}

#[test]
fn notification_requires_full_filter_match() {
    let (mut sim, nodes, sink) = network(cfg(), 4, 4);
    sim.invoke(nodes[0], |n, ctx| {
        n.subscribe(
            "a > 1 & b > 100".parse::<dps_content::Filter>().unwrap(),
            ctx,
        );
    });
    sim.run(300);
    // Event matches the joined predicate (a > 1) but not b > 100.
    let mut id = None;
    sim.invoke(nodes[2], |n, ctx| {
        id = Some(n.publish("a = 5 & b = 3".parse::<dps_content::Event>().unwrap(), ctx));
    });
    sim.run(120);
    let id = id.unwrap();
    assert!(
        sink.was_contacted(id, nodes[0]),
        "false positive is contacted"
    );
    assert!(!sink.was_notified(id, nodes[0]), "but never notified");
    let n0 = sim.node(nodes[0]).unwrap();
    assert_eq!(n0.publications_received(), 1);
    assert_eq!(n0.publications_notified(), 0);
}

#[test]
fn publication_messages_are_classified_as_publication() {
    let (mut sim, nodes, _) = network(cfg(), 4, 5);
    sim.invoke(nodes[0], |n, ctx| {
        n.subscribe("a > 1".parse::<dps_content::Filter>().unwrap(), ctx);
    });
    sim.run(300);
    let before = sim.metrics().total_sent(MsgClass::Publication);
    sim.invoke(nodes[2], |n, ctx| {
        n.publish("a = 5".parse::<dps_content::Event>().unwrap(), ctx);
    });
    sim.run(100);
    assert!(
        sim.metrics().total_sent(MsgClass::Publication) > before,
        "publishing must produce publication-class traffic"
    );
    assert!(
        sim.metrics().total_sent(MsgClass::Management) > 0,
        "heartbeats/views produce management traffic"
    );
}

#[test]
fn epidemic_members_keep_partial_views() {
    let mut c = DpsConfig::named(TraversalKind::Root, CommKind::Epidemic);
    c.join_rule = JoinRule::First;
    c.group_view_cap = 4;
    let (mut sim, nodes, _) = network(c, 10, 6);
    for node in &nodes[..8] {
        sim.invoke(*node, |n, ctx| {
            n.subscribe("a > 1".parse::<dps_content::Filter>().unwrap(), ctx);
        });
        sim.run(60);
    }
    sim.run(400);
    for node in &nodes[..8] {
        let nd = sim.node(*node).unwrap();
        for m in nd.memberships() {
            if !m.label.is_root() {
                assert!(
                    m.members.len() <= 4 + 1,
                    "epidemic groupview must stay bounded, got {}",
                    m.members.len()
                );
            }
        }
    }
}

#[test]
fn unsubscribing_last_subscription_leaves_the_group() {
    let (mut sim, nodes, _) = network(cfg(), 4, 7);
    let mut sub = None;
    sim.invoke(nodes[1], |n, ctx| {
        sub = Some(n.subscribe("zz > 1".parse::<dps_content::Filter>().unwrap(), ctx));
    });
    sim.run(300);
    assert!(sim
        .node(nodes[1])
        .unwrap()
        .memberships()
        .iter()
        .any(|m| !m.label.is_root()));
    let sub = sub.unwrap();
    sim.invoke(nodes[1], move |n, ctx| n.unsubscribe(sub, ctx));
    sim.run(50);
    let n1 = sim.node(nodes[1]).unwrap();
    assert!(
        n1.memberships().iter().all(|m| m.label.is_root()),
        "non-root memberships must be gone after the last unsubscribe"
    );
    assert_eq!(n1.subscription_count(), 0);
}

#[test]
fn deterministic_replay_at_protocol_level() {
    let run = |seed: u64| {
        let (mut sim, nodes, sink) = network(cfg(), 6, seed);
        for node in &nodes[..3] {
            sim.invoke(*node, |n, ctx| {
                n.subscribe("a > 1".parse::<dps_content::Filter>().unwrap(), ctx);
            });
            sim.run(80);
        }
        sim.invoke(nodes[4], |n, ctx| {
            n.publish("a = 2".parse::<dps_content::Event>().unwrap(), ctx);
        });
        sim.run(150);
        (
            sim.metrics().total_sent(MsgClass::Publication),
            sim.metrics().total_sent(MsgClass::Subscription),
            sink.total_notifies(),
        )
    };
    assert_eq!(run(99), run(99));
}
