//! A centralized reference model of the DPS overlay.
//!
//! This module runs the same placement rules as the distributed protocol, but on
//! one machine with global knowledge. It serves three purposes:
//!
//! 1. **Oracle** — experiments ask it which subscribers an event *should* reach
//!    (matching members) and which groups a root-based dissemination visits, to
//!    compute delivery ratios and false-positive rates.
//! 2. **Differential testing** — integration tests build the distributed overlay
//!    and assert that it converges to exactly this forest.
//! 3. **Analysis inputs** — the closed forms of §5.1 need the tree depth `h` and
//!    maximal group size `S`; the model measures them.

use std::collections::{BTreeMap, HashSet};

use dps_content::placement::{choose_branch, must_reparent};
use dps_content::{
    match_mode, AttrName, Event, FilterIndex, MatchMode, MatchScratch, Predicate, SharedFilter,
};
use dps_sim::NodeId;
use serde::Serialize;

use crate::label::GroupLabel;

/// One vertex of a reference tree.
#[derive(Debug, Clone, Serialize)]
pub struct ModelGroup {
    /// The group's label.
    pub label: GroupLabel,
    /// Parent index (`None` for the root).
    pub parent: Option<usize>,
    /// Child indices.
    pub children: Vec<usize>,
    /// Subscribers placed in this group.
    pub members: Vec<NodeId>,
}

/// The reference tree for one attribute.
#[derive(Debug, Clone, Serialize)]
pub struct TreeModel {
    attr: AttrName,
    groups: Vec<ModelGroup>,
}

impl TreeModel {
    /// A new tree containing only the root vertex.
    pub fn new(attr: AttrName) -> Self {
        let root = ModelGroup {
            label: GroupLabel::Root(attr.clone()),
            parent: None,
            children: Vec::new(),
            members: Vec::new(),
        };
        TreeModel {
            attr,
            groups: vec![root],
        }
    }

    /// The attribute of this tree.
    pub fn attr(&self) -> &AttrName {
        &self.attr
    }

    /// All groups; index 0 is the root.
    pub fn groups(&self) -> &[ModelGroup] {
        &self.groups
    }

    /// The group at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn group(&self, idx: usize) -> &ModelGroup {
        &self.groups[idx]
    }

    /// Index of the group labeled with `pred`, if it exists.
    pub fn find(&self, pred: &Predicate) -> Option<usize> {
        self.groups
            .iter()
            .position(|g| g.label.predicate() == Some(pred))
    }

    /// Inserts `member` with predicate `pred`, creating (and re-parenting around)
    /// the group if needed; returns the group index.
    ///
    /// # Panics
    ///
    /// Panics if `pred` is on a different attribute than the tree.
    pub fn insert(&mut self, pred: &Predicate, member: NodeId) -> usize {
        assert_eq!(pred.name(), &self.attr, "predicate on wrong tree");
        let mut cur = 0usize;
        loop {
            // Exact group already present below cur?
            if let Some(&c) = self.groups[cur]
                .children
                .iter()
                .find(|&&c| self.groups[c].label.predicate() == Some(pred))
            {
                if !self.groups[c].members.contains(&member) {
                    self.groups[c].members.push(member);
                }
                return c;
            }
            // Descend per C1/C2.
            let child_preds: Vec<Predicate> = self.groups[cur]
                .children
                .iter()
                .map(|&c| {
                    self.groups[c]
                        .label
                        .predicate()
                        .expect("non-root child")
                        .clone()
                })
                .collect();
            match choose_branch(child_preds.iter(), pred) {
                Some(i) => cur = self.groups[cur].children[i],
                None => return self.create_under(cur, pred, member),
            }
        }
    }

    fn create_under(&mut self, parent: usize, pred: &Predicate, member: NodeId) -> usize {
        let idx = self.groups.len();
        // Steal the siblings the new group must adopt (constraint C2).
        let (stay, adopted): (Vec<usize>, Vec<usize>) = self.groups[parent]
            .children
            .iter()
            .partition(|&&c| match self.groups[c].label.predicate() {
                Some(cp) => !must_reparent(pred, cp),
                None => true,
            });
        self.groups[parent].children = stay;
        self.groups[parent].children.push(idx);
        for &c in &adopted {
            self.groups[c].parent = Some(idx);
        }
        self.groups.push(ModelGroup {
            label: GroupLabel::Pred(pred.clone()),
            parent: Some(parent),
            children: adopted,
            members: vec![member],
        });
        idx
    }

    /// The group indices a root-based dissemination of `event` visits: the root
    /// plus every group reachable from it through matching labels. Propagation is
    /// pruned at the first non-matching label (§4.1), and the parent checks the
    /// child's label before forwarding, so non-matching groups are never visited.
    pub fn matching_groups(&self, event: &Event) -> Vec<usize> {
        let mut out = Vec::new();
        if event.get(&self.attr).is_none() {
            return out;
        }
        let mut stack = vec![0usize];
        while let Some(g) = stack.pop() {
            out.push(g);
            for &c in &self.groups[g].children {
                if self.groups[c].label.matches_event(event) {
                    stack.push(c);
                }
            }
        }
        out
    }

    /// Subscribers contacted by a root-based dissemination of `event` in this
    /// tree: the members of all matching groups.
    pub fn contacted_members(&self, event: &Event) -> HashSet<NodeId> {
        self.matching_groups(event)
            .into_iter()
            .flat_map(|g| self.groups[g].members.iter().copied())
            .collect()
    }

    /// Depth of the tree (root = level 0; returns the maximum level).
    pub fn depth(&self) -> usize {
        fn depth_of(tree: &TreeModel, g: usize) -> usize {
            match tree.groups[g].parent {
                None => 0,
                Some(p) => 1 + depth_of(tree, p),
            }
        }
        (0..self.groups.len())
            .map(|g| depth_of(self, g))
            .max()
            .unwrap_or(0)
    }

    /// Size of the largest group (the `S` of §5.1).
    pub fn max_group_size(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.members.len())
            .max()
            .unwrap_or(0)
    }

    /// Number of groups at each level, root first (the `s_k` distribution of the
    /// reliability model in §5.1).
    pub fn level_sizes(&self) -> Vec<usize> {
        let mut levels: Vec<usize> = Vec::new();
        for g in 0..self.groups.len() {
            let mut d = 0;
            let mut cur = g;
            while let Some(p) = self.groups[cur].parent {
                d += 1;
                cur = p;
            }
            if levels.len() <= d {
                levels.resize(d + 1, 0);
            }
            levels[d] += 1;
        }
        levels
    }

    /// Verifies the structural invariants; returns a description of the first
    /// violation.
    ///
    /// * Labels are unique.
    /// * Every non-root group's parent label is on its designated path.
    /// * **C2 (minimality)**: any group whose label is on the designated path of
    ///   another group is an ancestor of it — no "missed" predecessor exists.
    /// * Parent/child indices are mutually consistent.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, g) in self.groups.iter().enumerate() {
            for (j, h) in self.groups.iter().enumerate() {
                if i != j && g.label == h.label {
                    return Err(format!("duplicate label {}", g.label));
                }
                let _ = h;
            }
            match g.parent {
                None => {
                    if i != 0 {
                        return Err(format!("non-root group {} has no parent", g.label));
                    }
                }
                Some(p) => {
                    let pred = g.label.predicate().ok_or("root with a parent")?;
                    if !self.groups[p].label.on_path_to(pred) {
                        return Err(format!(
                            "parent {} not on designated path of {}",
                            self.groups[p].label, g.label
                        ));
                    }
                    if !self.groups[p].children.contains(&i) {
                        return Err(format!("parent of {} does not list it", g.label));
                    }
                }
            }
            for &c in &g.children {
                if self.groups[c].parent != Some(i) {
                    return Err(format!("child of {} points elsewhere", g.label));
                }
            }
        }
        // C2 minimality across all pairs.
        for g in 1..self.groups.len() {
            let pred = self.groups[g].label.predicate().unwrap();
            for q in 1..self.groups.len() {
                if q == g {
                    continue;
                }
                if self.groups[q].label.on_path_to(pred) && !self.is_ancestor(q, g) {
                    return Err(format!(
                        "{} is on the designated path of {} but is not its ancestor",
                        self.groups[q].label, self.groups[g].label
                    ));
                }
            }
        }
        Ok(())
    }

    fn is_ancestor(&self, anc: usize, g: usize) -> bool {
        let mut cur = g;
        while let Some(p) = self.groups[cur].parent {
            if p == anc {
                return true;
            }
            cur = p;
        }
        false
    }
}

/// The reference forest plus the global subscription registry: the experiment
/// harness's omniscient oracle.
#[derive(Debug, Clone, Default)]
pub struct ForestModel {
    trees: BTreeMap<AttrName, TreeModel>,
    subscriptions: Vec<(NodeId, SharedFilter)>,
    /// Counting-algorithm index over `subscriptions` (handle = position in
    /// the vector), so oracle matching scales past broker-grade populations.
    index: FilterIndex<u32>,
    /// Reusable query scratch and hit buffer (both churn per event on the
    /// oracle hot path); a `RefCell` because the oracle is queried through
    /// `&self` (single-threaded harness code).
    scratch: std::cell::RefCell<(MatchScratch, Vec<u32>)>,
}

// Manual impl (not derived): the index and scratch are derived state that
// must not leak into experiment JSON output.
impl Serialize for ForestModel {
    fn to_json(&self) -> serde::json::Value {
        serde::json::Value::Object(vec![
            ("trees".to_owned(), self.trees.to_json()),
            ("subscriptions".to_owned(), self.subscriptions.to_json()),
        ])
    }
}

impl ForestModel {
    /// Empty forest.
    pub fn new() -> Self {
        ForestModel::default()
    }

    /// Registers a subscription joining via the predicate at `join_idx` in the
    /// filter, mirroring the distributed join. Returns the `(attribute,
    /// predicate)` actually joined.
    ///
    /// # Panics
    ///
    /// Panics if the filter is empty or `join_idx` is out of range.
    pub fn subscribe(
        &mut self,
        node: NodeId,
        filter: &SharedFilter,
        join_idx: usize,
    ) -> (AttrName, Predicate) {
        let pred = filter.predicates()[join_idx].clone();
        let attr = pred.name().clone();
        self.trees
            .entry(attr.clone())
            .or_insert_with(|| TreeModel::new(attr.clone()))
            .insert(&pred, node);
        // Both the index and the registry share the caller's allocation.
        self.index
            .insert(self.subscriptions.len() as u32, filter.clone());
        self.subscriptions.push((node, filter.clone()));
        (attr, pred)
    }

    /// The trees of the forest.
    pub fn trees(&self) -> impl Iterator<Item = &TreeModel> {
        self.trees.values()
    }

    /// The tree for `attr`, if any subscriber created it.
    pub fn tree(&self, attr: &AttrName) -> Option<&TreeModel> {
        self.trees.get(attr)
    }

    /// All registered `(subscriber, filter)` pairs.
    pub fn subscriptions(&self) -> &[(NodeId, SharedFilter)] {
        &self.subscriptions
    }

    /// Nodes with at least one filter matching `event` — the ground-truth
    /// recipients ("Matching" in Table 1).
    pub fn matching_subscribers(&self, event: &Event) -> HashSet<NodeId> {
        match match_mode() {
            MatchMode::Scan => self
                .subscriptions
                .iter()
                .filter(|(_, f)| f.matches(event))
                .map(|(n, _)| *n)
                .collect(),
            MatchMode::Index => {
                let mut guard = self.scratch.borrow_mut();
                let (scratch, hits) = &mut *guard;
                self.index.matching_into(event, scratch, hits);
                hits.iter()
                    .map(|h| self.subscriptions[*h as usize].0)
                    .collect()
            }
        }
    }

    /// Subscribers a root-based DPS dissemination contacts: union over the trees
    /// of every attribute the event carries ("Contacted" in Table 1, minus the
    /// pure-relay root/owner nodes).
    pub fn contacted_subscribers(&self, event: &Event) -> HashSet<NodeId> {
        let mut out = HashSet::new();
        for name in event.names() {
            if let Some(t) = self.trees.get(name) {
                out.extend(t.contacted_members(event));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    fn p(s: &str) -> Predicate {
        s.parse().unwrap()
    }

    /// Builds the "a" tree of the paper's Figure 1 from the s0..s11 subscriptions
    /// (each subscriber joins the tree drawn in the figure).
    fn figure1_tree_a() -> TreeModel {
        let mut t = TreeModel::new("a".into());
        t.insert(&p("a > 2"), n(0)); // s0
        t.insert(&p("a > 2"), n(1)); // s1
        t.insert(&p("a > 5"), n(2)); // s2
        t.insert(&p("a < 4"), n(4)); // s4
        t.insert(&p("a = 4"), n(5)); // s5
        t.insert(&p("a < 20"), n(8)); // s8
        t.insert(&p("a < 11"), n(9)); // s9
        t.insert(&p("a > 50"), n(10)); // s10
        t.insert(&p("a > 3"), n(11)); // s11
        t
    }

    #[test]
    fn figure1_tree_shape() {
        let t = figure1_tree_a();
        t.check_invariants().unwrap();
        // Chains from the figure: a>2 -> a>3 -> a>5 -> a>50 and a<20 -> a<11 -> a<4.
        let chain = |from: &str, to: &str| {
            let f = t.find(&p(from)).unwrap();
            let c = t.find(&p(to)).unwrap();
            assert_eq!(t.groups()[c].parent, Some(f), "{to} under {from}");
        };
        chain("a > 2", "a > 3");
        chain("a > 3", "a > 5");
        chain("a > 5", "a > 50");
        chain("a < 20", "a < 11");
        chain("a < 11", "a < 4");
        // C1: a = 4 follows the greater-than chain; its deepest including Gt group
        // is a > 3 (4 > 3 holds, 4 > 5 does not).
        let eq4 = t.find(&p("a = 4")).unwrap();
        assert_eq!(t.groups()[eq4].parent, t.find(&p("a > 3")));
        // Both chains hang off the root.
        assert_eq!(t.groups()[t.find(&p("a > 2")).unwrap()].parent, Some(0));
        assert_eq!(t.groups()[t.find(&p("a < 20")).unwrap()].parent, Some(0));
    }

    #[test]
    fn insertion_order_does_not_matter_for_numeric_trees() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let preds = [
            "a > 2", "a > 3", "a > 5", "a > 50", "a < 20", "a < 11", "a < 4", "a = 4", "a = 10",
            "a = 3",
        ];
        let canonical = {
            let mut t = TreeModel::new("a".into());
            for (i, s) in preds.iter().enumerate() {
                t.insert(&p(s), n(i));
            }
            t
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let mut shuffled: Vec<usize> = (0..preds.len()).collect();
            shuffled.shuffle(&mut rng);
            let mut t = TreeModel::new("a".into());
            for &i in &shuffled {
                t.insert(&p(preds[i]), n(i));
            }
            t.check_invariants().unwrap();
            // Same parent relation regardless of order.
            for s in &preds {
                let a = canonical.find(&p(s)).unwrap();
                let b = t.find(&p(s)).unwrap();
                let pa = canonical.groups()[a]
                    .parent
                    .map(|i| canonical.groups()[i].label.clone());
                let pb = t.groups()[b].parent.map(|i| t.groups()[i].label.clone());
                assert_eq!(pa, pb, "parent of {s} differs");
            }
        }
    }

    #[test]
    fn figure2_publication_a_eq_4() {
        // Right side of Figure 2: publication a = 4 reaches the matching groups
        // a>2, a>3, a<20, a<11, a<4?? (no: 4 < 4 fails) and the leaf a = 4.
        let t = figure1_tree_a();
        let ev: Event = "a = 4".parse().unwrap();
        let visited: HashSet<String> = t
            .matching_groups(&ev)
            .into_iter()
            .map(|g| t.groups()[g].label.to_string())
            .collect();
        let expect: HashSet<String> = [
            "⟨a⟩",
            "⟨a > 2⟩",
            "⟨a > 3⟩",
            "⟨a = 4⟩",
            "⟨a < 20⟩",
            "⟨a < 11⟩",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert_eq!(visited, expect);
        // Contacted members: s0,s1 (a>2), s11 (a>3), s5 (a=4), s8 (a<20), s9 (a<11).
        let contacted = t.contacted_members(&ev);
        let expect_members: HashSet<NodeId> = [0, 1, 11, 5, 8, 9].iter().map(|i| n(*i)).collect();
        assert_eq!(contacted, expect_members);
    }

    #[test]
    fn pruning_cuts_whole_subtrees() {
        let t = figure1_tree_a();
        // a = 1 matches a<20, a<11, a<4 but nothing in the Gt chain.
        let ev: Event = "a = 1".parse().unwrap();
        let visited: HashSet<String> = t
            .matching_groups(&ev)
            .into_iter()
            .map(|g| t.groups()[g].label.to_string())
            .collect();
        assert!(visited.contains("⟨a < 4⟩"));
        assert!(!visited.contains("⟨a > 2⟩"));
        // Nothing matches an event on another attribute.
        assert!(t.matching_groups(&"b = 1".parse().unwrap()).is_empty());
    }

    #[test]
    fn depth_and_sizes() {
        let t = figure1_tree_a();
        assert_eq!(t.depth(), 4); // root -> a>2 -> a>3 -> a>5 -> a>50
        assert_eq!(t.max_group_size(), 2); // a>2 holds s0 and s1
        let levels = t.level_sizes();
        assert_eq!(levels[0], 1);
        assert_eq!(levels.iter().sum::<usize>(), t.groups().len());
    }

    #[test]
    fn forest_oracle() {
        let mut f = ForestModel::new();
        // s0: a>2 & b>0 joins via a>2; s3: b>3 & c=abc joins via b>3.
        f.subscribe(
            n(0),
            &"a > 2 & b > 0"
                .parse::<dps_content::Filter>()
                .unwrap()
                .into(),
            0,
        );
        f.subscribe(
            n(3),
            &"b > 3 & c = abc"
                .parse::<dps_content::Filter>()
                .unwrap()
                .into(),
            0,
        );
        f.subscribe(
            n(9),
            &"a < 11".parse::<dps_content::Filter>().unwrap().into(),
            0,
        );
        let ev: Event = "a = 4 & b = 5".parse().unwrap();
        // Matching: s0 (a>2 & b>0: 4>2, 5>0 ✓), s3 (b>3 ✓ but c missing ✗), s9 ✓.
        let matching = f.matching_subscribers(&ev);
        assert_eq!(matching, [n(0), n(9)].into_iter().collect());
        // Contacted: tree a reaches s0 and s9; tree b reaches s3 (b>3 matches —
        // a false positive, since s3's full filter requires c = abc too).
        let contacted = f.contacted_subscribers(&ev);
        assert_eq!(contacted, [n(0), n(9), n(3)].into_iter().collect());
        assert!(f.tree(&"a".into()).is_some());
        assert!(f.tree(&"z".into()).is_none());
        assert_eq!(f.subscriptions().len(), 3);
    }

    #[test]
    #[should_panic(expected = "wrong tree")]
    fn wrong_attribute_panics() {
        let mut t = TreeModel::new("a".into());
        t.insert(&p("b > 1"), n(0));
    }
}
