//! Protocol configuration: the traversal × communication matrix of §4 plus all
//! tuning knobs used in the paper's evaluation.

use serde::{Deserialize, Serialize};

/// How tree visits locate groups (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraversalKind {
    /// Visits start at the root (the attribute owner) and proceed only downwards.
    /// Lower latency, but stresses the root and requires it to be known.
    Root,
    /// Visits start from any node in the tree and go in both directions. More
    /// messages, better load balance, any contact point works.
    Generic,
}

/// How messages cross and flood groups (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommKind {
    /// One leader plus `Kc` co-leaders per group; inter-group traffic is
    /// leader-to-leader; the leader fans events out to every member.
    Leader,
    /// Gossip: every node keeps partial views and forwards events to `k` random
    /// group members, with a forwarding probability decaying in the hop count.
    Epidemic,
}

/// Which predicate of a multi-predicate subscription the subscriber joins a tree
/// with. The paper (§3): "A subscriber joins the tree corresponding to only one of
/// the attributes of its subscription. This attribute can be arbitrarily chosen."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JoinRule {
    /// Always join with the first predicate of the filter (deterministic; used by
    /// tests and by scenarios that pre-compute the oracle).
    First,
    /// The scenario driver picks uniformly at random and passes the index
    /// explicitly (see `DpsNode::subscribe_with`); equivalent to the paper's
    /// "arbitrarily chosen".
    Explicit,
}

/// Full protocol configuration.
///
/// Defaults follow the paper where it gives numbers (heartbeat interval 10–25
/// steps, gossip fanout `k = 1` with a `k = 2` variant) and sensible small values
/// elsewhere.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DpsConfig {
    /// Tree traversal flavor.
    pub traversal: TraversalKind,
    /// Intra/inter-group communication flavor.
    pub comm: CommKind,
    /// Join-predicate selection rule.
    pub join_rule: JoinRule,
    /// `Kc`: number of co-leaders per group (leader mode).
    pub co_leaders: usize,
    /// `K`: number of cross-level pointers kept in `predview` / each `succview`
    /// (entries beyond the direct neighbor group survive whole-group failures).
    pub view_depth: usize,
    /// `k`: epidemic intra-group fanout (neighbors infected per round).
    pub gossip_fanout: usize,
    /// `k'`: epidemic inter-group fanout (nodes contacted on the next level).
    pub inter_group_fanout: usize,
    /// `Fs`: subscription-gossip fanout (epidemic view updates).
    pub sub_gossip_fanout: usize,
    /// Base forwarding probability of epidemic gossip: a node holding a fresh
    /// publication runs one gossip round per step, forwarding to
    /// [`gossip_fanout`](Self::gossip_fanout) random group members with
    /// probability `p0 / (1 + r)` in its `r`-th round ("reduced proportionally
    /// to the number of times the message is forwarded", §4.2.2).
    pub gossip_p0: f64,
    /// Number of per-step gossip rounds a node runs per fresh publication
    /// before retiring it. The decaying round probability makes late rounds
    /// rare; this caps the bookkeeping. The expected sends per member are
    /// `gossip_fanout × Σ p0/(1+r)` (≈ 3.4 × `gossip_fanout` for the default
    /// 16 rounds) — supercritical for every `k ≥ 1`, which is what makes the
    /// epidemic rows of Fig. 3(a) beat the leader rows under churn.
    pub gossip_rounds: u32,
    /// Cap on the size of the partial `groupview` kept by epidemic members.
    pub group_view_cap: usize,
    /// Heartbeat probing interval bounds in steps; each monitored edge draws its
    /// own period uniformly from this range (paper §5.2: 10 to 25 steps).
    pub heartbeat_min: u64,
    /// Upper bound of the heartbeat interval.
    pub heartbeat_max: u64,
    /// Steps to wait for a `Pong` (or any request's answer) before declaring the
    /// peer dead / the request failed.
    pub probe_timeout: u64,
    /// Unanswered pings re-sent before a monitored neighbor is declared dead.
    /// With 0, a single lost `Ping`/`Pong` kills the neighbor in the detector —
    /// under link loss the overlay then tears itself apart on false suspicion
    /// (at 20 % uniform loss a round trip is lost more than a third of the
    /// time). Retries trade a few steps of detection latency for robustness.
    pub probe_retries: u32,
    /// TTL of the random walks used to discover a tree for an attribute.
    pub walk_ttl: u32,
    /// Retries before concluding that no tree exists for an attribute.
    pub find_tree_retries: u32,
    /// Timeout for pending subscription/publication requests before retrying.
    pub request_timeout: u64,
    /// Timeout for an in-flight `FIND_GROUP` traversal. Separate from
    /// [`request_timeout`](Self::request_timeout) because tree descents cover one
    /// group per step and uniform range workloads build predicate chains many
    /// groups deep. A retry restarts a *new* descent but does not cancel the old
    /// one — whichever answers first wins, duplicates are ignored — so this is a
    /// liveness heartbeat against descents that died with a crashed relay, not a
    /// worst-case-depth bound. (It was once 1500 on the depth-bound reasoning;
    /// under churn that left every subscriber whose descent hit a crashed relay
    /// unplaced — and silently undeliverable — for 1500 steps.)
    pub traversal_timeout: u64,
    /// Period of the leader-mode view exchange (parent chain down / child report
    /// up) and of the epidemic merge push.
    pub view_exchange_every: u64,
    /// Period of the duplicate-tree detection walk run by owners.
    pub owner_merge_every: u64,
    /// Age limit (steps) of the per-node recent-publication buffer used to
    /// re-flush events into a branch right after it is repaired, re-attached
    /// or adopted. Without it, any publication crossing a stale branch
    /// pointer during the healing window is lost for the entire subtree —
    /// the dominant dependability failure at high churn. Re-flushes are
    /// deduplicated by the per-group seen cache, so crossing flows are safe.
    pub repub_window: u64,
    /// Size of the random peer sample kept per node (bootstrap substrate).
    pub peer_view: usize,
    /// Capacity of the per-node publication dedup cache.
    pub seen_cap: usize,
}

impl Default for DpsConfig {
    fn default() -> Self {
        DpsConfig {
            traversal: TraversalKind::Root,
            comm: CommKind::Leader,
            join_rule: JoinRule::First,
            co_leaders: 2,
            view_depth: 3,
            gossip_fanout: 1,
            inter_group_fanout: 2,
            sub_gossip_fanout: 2,
            gossip_p0: 1.0,
            gossip_rounds: 16,
            group_view_cap: 12,
            heartbeat_min: 10,
            heartbeat_max: 25,
            probe_timeout: 5,
            probe_retries: 2,
            walk_ttl: 24,
            find_tree_retries: 2,
            request_timeout: 40,
            traversal_timeout: 100,
            view_exchange_every: 20,
            owner_merge_every: 100,
            repub_window: 240,
            peer_view: 12,
            seen_cap: 512,
        }
    }
}

impl DpsConfig {
    /// The four named configurations compared throughout §5: `root`/`generic` ×
    /// `leader`/`epidemic`.
    pub fn named(traversal: TraversalKind, comm: CommKind) -> Self {
        DpsConfig {
            traversal,
            comm,
            ..DpsConfig::default()
        }
    }

    /// Convenience: the paper's "epidemic, k = 2" variants.
    pub fn with_fanout(mut self, k: usize) -> Self {
        self.gossip_fanout = k;
        self
    }

    /// Short human-readable name, e.g. `"leader root"`, matching the figure
    /// legends of the paper.
    pub fn label(&self) -> String {
        let comm = match self.comm {
            CommKind::Leader => "leader",
            CommKind::Epidemic => "epidemic",
        };
        let trav = match self.traversal {
            TraversalKind::Root => "root",
            TraversalKind::Generic => "generic",
        };
        if self.comm == CommKind::Epidemic && self.gossip_fanout > 1 {
            format!("{comm} {trav} k = {}", self.gossip_fanout)
        } else {
            format!("{comm} {trav}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper() {
        let c = DpsConfig::default();
        assert_eq!((c.heartbeat_min, c.heartbeat_max), (10, 25));
        assert_eq!(c.gossip_fanout, 1);
        assert!(c.co_leaders >= 1);
    }

    #[test]
    fn labels_match_figure_legends() {
        assert_eq!(
            DpsConfig::named(TraversalKind::Root, CommKind::Leader).label(),
            "leader root"
        );
        assert_eq!(
            DpsConfig::named(TraversalKind::Generic, CommKind::Epidemic)
                .with_fanout(2)
                .label(),
            "epidemic generic k = 2"
        );
    }
}
