//! Per-group state held by a node: its role, membership views and the
//! `predview`/`succview` pointer lists of §4.

use dps_sim::NodeId;
use serde::{Deserialize, Serialize};

use crate::label::GroupLabel;
use crate::msg::{BranchInfo, GroupRef, PubTicket, SubId};

/// A node's role within one group (leader mode; epidemic groups are flat and all
/// members behave like `Member`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// Group leader: relays inter-group traffic, fans events out to members.
    Leader,
    /// Backup leader (one of the `Kc` first joiners after the leader).
    CoLeader,
    /// Regular member.
    Member,
}

/// One child branch of a group: the `succview` for that successor ("in groups with
/// multiple branches, a node must have one succview list for each of its successor
/// groups", §4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Branch {
    /// Label of the child group heading this branch.
    pub label: GroupLabel,
    /// Pointers into the branch: nodes of the child group first, deeper levels
    /// after; capped at the configured view depth.
    pub refs: Vec<GroupRef>,
    /// While `true`, event propagation toward this branch is withheld and events
    /// buffered (§4.1: group creation blocks propagation in the predecessor).
    pub blocked: bool,
    /// Step at which the branch was blocked (for expiring blocks whose
    /// `CreateDone` was lost to a crash).
    pub blocked_since: u64,
    /// Events withheld while blocked, flushed on `CreateDone`.
    pub buffered: Vec<PubTicket>,
}

impl Branch {
    /// A fresh branch pointing at the given child-group nodes.
    pub fn new(label: GroupLabel, refs: Vec<GroupRef>) -> Self {
        Branch {
            label,
            refs,
            blocked: false,
            blocked_since: 0,
            buffered: Vec::new(),
        }
    }

    /// Builds a branch from wire info.
    pub fn from_info(info: BranchInfo) -> Self {
        Branch::new(info.label, info.refs)
    }

    /// The wire form of this branch.
    pub fn info(&self) -> BranchInfo {
        BranchInfo {
            label: self.label.clone(),
            refs: self.refs.clone(),
        }
    }

    /// First pointer lying in the child group itself, if any.
    pub fn primary(&self) -> Option<NodeId> {
        self.refs
            .iter()
            .find(|r| r.label == self.label)
            .map(|r| r.node)
    }

    /// Merges `refs` into the branch (child-group entries kept first), capping at
    /// `depth` entries of deeper levels beyond the child-group ones.
    pub fn merge_refs(&mut self, refs: &[GroupRef], depth: usize) {
        for r in refs {
            if !self.refs.contains(r) {
                self.refs.push(r.clone());
            }
        }
        // Child-group entries first, then deeper ones; stable within each class.
        let label = self.label.clone();
        self.refs.sort_by_key(|r| usize::from(r.label != label));
        let in_group = self.refs.iter().filter(|r| r.label == self.label).count();
        self.refs
            .truncate(in_group.max(1).min(self.refs.len()) + depth);
    }

    /// Drops a dead node from the branch pointers.
    pub fn remove_node(&mut self, node: NodeId) {
        self.refs.retain(|r| r.node != node);
    }
}

/// Everything a node keeps about one group it belongs to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Membership {
    /// The subscriptions served by this membership (empty for the root membership
    /// an attribute owner maintains). Several subscriptions with the same join
    /// predicate share one membership.
    pub sub_ids: Vec<SubId>,
    /// Group label.
    pub label: GroupLabel,
    /// Our role in the group.
    pub role: Role,
    /// Tree owner, as last heard.
    pub owner: NodeId,
    /// Epoch of the tree owner (re-rootings bump it).
    pub owner_epoch: u64,
    /// Group leader, as last heard (leader mode; in epidemic mode a stable
    /// contact hint only).
    pub leader: NodeId,
    /// Co-leaders, as last heard.
    pub co_leaders: Vec<NodeId>,
    /// Known members: full membership at leaders/co-leaders; leaders+co-leaders at
    /// plain members; a bounded partial view in epidemic mode.
    pub members: Vec<NodeId>,
    /// Predecessor pointers, nearest group first, then higher levels.
    pub predview: Vec<GroupRef>,
    /// One [`Branch`] per successor group.
    pub branches: Vec<Branch>,
}

impl Membership {
    /// Creates a membership with the given label and role; views start empty.
    pub fn new(sub_id: Option<SubId>, label: GroupLabel, role: Role, me: NodeId) -> Self {
        Membership {
            sub_ids: sub_id.into_iter().collect(),
            label,
            role,
            owner: me,
            owner_epoch: 0,
            leader: me,
            co_leaders: Vec::new(),
            members: Vec::new(),
            predview: Vec::new(),
            branches: Vec::new(),
        }
    }

    /// Whether we lead this group.
    pub fn is_leader(&self) -> bool {
        self.role == Role::Leader
    }

    /// Whether we are leader or co-leader.
    pub fn is_leadership(&self) -> bool {
        matches!(self.role, Role::Leader | Role::CoLeader)
    }

    /// The branch headed by `label`, if any.
    pub fn branch(&self, label: &GroupLabel) -> Option<&Branch> {
        self.branches.iter().find(|b| &b.label == label)
    }

    /// Mutable access to the branch headed by `label`.
    pub fn branch_mut(&mut self, label: &GroupLabel) -> Option<&mut Branch> {
        self.branches.iter_mut().find(|b| &b.label == label)
    }

    /// Adds (or merges) a branch.
    pub fn upsert_branch(&mut self, info: BranchInfo, depth: usize) -> &mut Branch {
        if let Some(i) = self.branches.iter().position(|b| b.label == info.label) {
            self.branches[i].merge_refs(&info.refs, depth);
            &mut self.branches[i]
        } else {
            self.branches.push(Branch::from_info(info));
            self.branches.last_mut().unwrap()
        }
    }

    /// Removes the branch headed by `label`, returning it.
    pub fn remove_branch(&mut self, label: &GroupLabel) -> Option<Branch> {
        let i = self.branches.iter().position(|b| &b.label == label)?;
        Some(self.branches.remove(i))
    }

    /// Adds a member if absent.
    pub fn add_member(&mut self, node: NodeId) {
        if !self.members.contains(&node) {
            self.members.push(node);
        }
    }

    /// Evicts random members until the view fits `cap`, never evicting
    /// `keep` (the holder itself). Random — not FIFO — eviction matters for
    /// epidemic partial views: a FIFO drain converges every member's view
    /// onto the same most recently gossiped entries, so large groups go
    /// stale in lockstep; random eviction keeps each view an independent
    /// random sample of the group.
    pub fn evict_members_to_cap(&mut self, cap: usize, keep: NodeId, rng: &mut impl rand::Rng) {
        while self.members.len() > cap {
            if self.members.len() == 1 && self.members[0] == keep {
                break; // only the holder left: nothing evictable
            }
            let idx = rng.random_range(0..self.members.len());
            if self.members[idx] == keep {
                continue;
            }
            self.members.swap_remove(idx);
        }
    }

    /// Removes `node` from every view of this membership.
    pub fn forget_node(&mut self, node: NodeId) {
        self.members.retain(|m| *m != node);
        self.co_leaders.retain(|m| *m != node);
        self.predview.retain(|r| r.node != node);
        for b in &mut self.branches {
            b.remove_node(node);
        }
    }

    /// Merges predecessor pointers (nearest-first order preserved, capped).
    pub fn merge_predview(&mut self, refs: &[GroupRef], cap: usize) {
        for r in refs {
            if !self.predview.contains(r) {
                self.predview.push(r.clone());
            }
        }
        self.predview.truncate(cap);
    }

    /// Replaces the predview with `refs` (used when the authoritative parent chain
    /// arrives), capped.
    pub fn set_predview(&mut self, refs: Vec<GroupRef>, cap: usize) {
        self.predview = refs;
        self.predview.truncate(cap);
    }

    /// The nodes a publication should be handed to when entering this group from
    /// outside, leader first (leader mode).
    pub fn group_contacts(&self) -> Vec<NodeId> {
        let mut v = vec![self.leader];
        for c in &self.co_leaders {
            if !v.contains(c) {
                v.push(*c);
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gl(s: &str) -> GroupLabel {
        GroupLabel::from(s.parse::<dps_content::Predicate>().unwrap())
    }

    fn gr(s: &str, n: usize) -> GroupRef {
        GroupRef {
            label: gl(s),
            node: NodeId::from_index(n),
        }
    }

    #[test]
    fn branch_primary_prefers_child_group_entries() {
        let mut b = Branch::new(gl("a > 5"), vec![gr("a > 9", 4)]);
        assert_eq!(b.primary(), None);
        b.merge_refs(&[gr("a > 5", 2)], 2);
        assert_eq!(b.primary(), Some(NodeId::from_index(2)));
        // Child-group entries sort first.
        assert_eq!(b.refs[0].node, NodeId::from_index(2));
    }

    #[test]
    fn branch_merge_caps_depth() {
        let mut b = Branch::new(gl("a > 5"), vec![gr("a > 5", 1)]);
        b.merge_refs(&[gr("a > 9", 2), gr("a > 9", 3), gr("a > 12", 4)], 2);
        // 1 in-group entry + at most 2 deeper entries.
        assert_eq!(b.refs.len(), 3);
        b.remove_node(NodeId::from_index(1));
        assert_eq!(b.primary(), None);
    }

    #[test]
    fn membership_branch_crud() {
        let me = NodeId::from_index(0);
        let mut m = Membership::new(None, gl("a > 2"), Role::Leader, me);
        assert!(m.is_leader() && m.is_leadership());
        m.upsert_branch(
            BranchInfo {
                label: gl("a > 5"),
                refs: vec![gr("a > 5", 1)],
            },
            2,
        );
        assert!(m.branch(&gl("a > 5")).is_some());
        m.upsert_branch(
            BranchInfo {
                label: gl("a > 5"),
                refs: vec![gr("a > 5", 2)],
            },
            2,
        );
        assert_eq!(m.branches.len(), 1);
        assert_eq!(m.branch(&gl("a > 5")).unwrap().refs.len(), 2);
        let removed = m.remove_branch(&gl("a > 5")).unwrap();
        assert_eq!(removed.refs.len(), 2);
        assert!(m.branches.is_empty());
    }

    #[test]
    fn forget_node_scrubs_everything() {
        let me = NodeId::from_index(0);
        let dead = NodeId::from_index(9);
        let mut m = Membership::new(None, gl("a > 2"), Role::Member, me);
        m.add_member(dead);
        m.add_member(dead); // idempotent
        assert_eq!(m.members.len(), 1);
        m.co_leaders.push(dead);
        m.merge_predview(&[gr("a > 1", 9)], 4);
        m.upsert_branch(
            BranchInfo {
                label: gl("a > 5"),
                refs: vec![gr("a > 5", 9)],
            },
            2,
        );
        m.forget_node(dead);
        assert!(m.members.is_empty());
        assert!(m.co_leaders.is_empty());
        assert!(m.predview.is_empty());
        assert!(m.branch(&gl("a > 5")).unwrap().refs.is_empty());
    }

    #[test]
    fn group_contacts_leader_first_no_dups() {
        let me = NodeId::from_index(0);
        let mut m = Membership::new(None, gl("a > 2"), Role::Member, me);
        m.leader = NodeId::from_index(3);
        m.co_leaders = vec![NodeId::from_index(3), NodeId::from_index(4)];
        assert_eq!(
            m.group_contacts(),
            vec![NodeId::from_index(3), NodeId::from_index(4)]
        );
    }
}
