//! Group labels: the vertices of the semantic trees.

use std::fmt;

use dps_content::placement::{self};
use dps_content::{AttrName, Event, Predicate};
use serde::{Deserialize, Serialize};

/// The label of a semantic group: either the virtual root of an attribute tree
/// (which matches every event carrying the attribute) or a concrete predicate.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GroupLabel {
    /// The root vertex of the tree for `attr` (the paper's "a", "b", "c" vertices
    /// in Figure 1, maintained by the attribute owner).
    Root(AttrName),
    /// A predicate group (Definition 2).
    Pred(Predicate),
}

impl GroupLabel {
    /// The attribute this label concerns.
    pub fn attr(&self) -> &AttrName {
        match self {
            GroupLabel::Root(a) => a,
            GroupLabel::Pred(p) => p.name(),
        }
    }

    /// Whether this label is the tree root.
    pub fn is_root(&self) -> bool {
        matches!(self, GroupLabel::Root(_))
    }

    /// The predicate, for non-root labels.
    pub fn predicate(&self) -> Option<&Predicate> {
        match self {
            GroupLabel::Root(_) => None,
            GroupLabel::Pred(p) => Some(p),
        }
    }

    /// Whether an event matches the group predicate — the dissemination pruning
    /// test of §4.1. The root matches any event that carries the attribute.
    pub fn matches_event(&self, event: &Event) -> bool {
        match self {
            GroupLabel::Root(a) => event.get(a).is_some(),
            GroupLabel::Pred(p) => event.get(p.name()).is_some_and(|v| p.matches_value(v)),
        }
    }

    /// Whether this label lies on the designated path from the root to the group
    /// of `target` — i.e. a traversal looking for `target` may descend through this
    /// group. The root is on every path of its attribute.
    pub fn on_path_to(&self, target: &Predicate) -> bool {
        match self {
            GroupLabel::Root(a) => a == target.name(),
            GroupLabel::Pred(p) => placement::on_designated_path(p, target),
        }
    }

    /// Whether a group labeled `self` must hand its child branch labeled `child`
    /// over to a newly created sibling group `new_group` (re-parenting on insert,
    /// constraint C2).
    pub fn branch_reparents_to(child: &GroupLabel, new_group: &Predicate) -> bool {
        match child {
            GroupLabel::Root(_) => false,
            GroupLabel::Pred(c) => placement::must_reparent(new_group, c),
        }
    }
}

impl fmt::Display for GroupLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupLabel::Root(a) => write!(f, "⟨{a}⟩"),
            GroupLabel::Pred(p) => write!(f, "⟨{p}⟩"),
        }
    }
}

impl From<Predicate> for GroupLabel {
    fn from(p: Predicate) -> Self {
        GroupLabel::Pred(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Predicate {
        s.parse().unwrap()
    }

    #[test]
    fn root_matches_any_event_with_attr() {
        let root = GroupLabel::Root("a".into());
        assert!(root.matches_event(&"a = 4".parse().unwrap()));
        assert!(!root.matches_event(&"b = 4".parse().unwrap()));
        assert!(root.is_root());
        assert_eq!(root.predicate(), None);
    }

    #[test]
    fn pred_label_matching() {
        let l = GroupLabel::from(p("a > 2"));
        assert!(l.matches_event(&"a = 4".parse().unwrap()));
        assert!(!l.matches_event(&"a = 1".parse().unwrap()));
        assert!(!l.matches_event(&"b = 4".parse().unwrap()));
        assert_eq!(l.attr().as_str(), "a");
    }

    #[test]
    fn on_path_rules() {
        let root = GroupLabel::Root("a".into());
        assert!(root.on_path_to(&p("a = 4")));
        assert!(!root.on_path_to(&p("b = 4")));
        assert!(GroupLabel::from(p("a > 2")).on_path_to(&p("a = 4")));
        assert!(!GroupLabel::from(p("a < 11")).on_path_to(&p("a = 4"))); // C1
        assert!(!GroupLabel::from(p("a > 2")).on_path_to(&p("a > 2")));
    }

    #[test]
    fn reparenting_via_labels() {
        let child = GroupLabel::from(p("a > 5"));
        assert!(GroupLabel::branch_reparents_to(&child, &p("a > 3")));
        assert!(!GroupLabel::branch_reparents_to(&child, &p("a > 7")));
        assert!(!GroupLabel::branch_reparents_to(
            &GroupLabel::Root("a".into()),
            &p("a > 3")
        ));
    }

    #[test]
    fn display() {
        assert_eq!(GroupLabel::Root("a".into()).to_string(), "⟨a⟩");
        assert_eq!(GroupLabel::from(p("a > 2")).to_string(), "⟨a > 2⟩");
    }
}
