//! Delivery instrumentation: hooks the experiment harness uses to account events.
//!
//! The protocol state machines call into a shared [`StatsSink`] when a node
//! receives a publication for the first time ("contacted", Table 1) and when a
//! received publication matches one of the node's own subscriptions ("delivered" /
//! `Notify`, Figures 3(a)–(b)). Both milestones carry the simulation step at
//! which they happened, so harnesses can compute publish→deliver latency
//! distributions. The default sink does nothing and costs nothing.

use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

use dps_content::{Event, SharedEvent};
use dps_sim::{NodeId, Step};

use crate::msg::PubId;

/// Observer of protocol-level delivery milestones.
///
/// Implementations must be cheap and thread-safe (the simulator itself is
/// single-threaded, but experiment harnesses aggregate across runs in parallel).
pub trait StatsSink: Send + Sync {
    /// `node` received publication `id` for the first time (it was *contacted*)
    /// at step `now`.
    fn on_contact(&self, id: PubId, node: NodeId, now: Step);
    /// `node` received publication `id` at step `now` and it matched one of
    /// its subscription filters (the `Notify` upcall of the paper).
    fn on_notify(&self, id: PubId, node: NodeId, now: Step);
    /// Like [`on_notify`](StatsSink::on_notify), but carrying the event body,
    /// called at the same site. Default: ignored — counting-only sinks never
    /// touch the payload, so the simulator's zero-copy fan-out is unaffected.
    /// Session hosts (the in-process `dps::session::Hub` and the broker)
    /// override it to queue payloads for *watched* nodes.
    fn on_deliver(&self, _id: PubId, _node: NodeId, _event: &Event, _now: Step) {}
}

/// A sink that ignores everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl StatsSink for NoopSink {
    fn on_contact(&self, _id: PubId, _node: NodeId, _now: Step) {}
    fn on_notify(&self, _id: PubId, _node: NodeId, _now: Step) {}
}

/// A simple recording sink: remembers every `(publication, node)` contact pair
/// and, for notifies, the step of the **first** notify (the publish→deliver
/// latency endpoint — re-notifies through other trees never move it).
/// Sufficient for all the paper's measurements at the scales of the reduced
/// experiments, and for the full 10k × 10k Table 1 runs it stays within a few
/// hundred MB thanks to the compact pair encoding.
#[derive(Debug, Default)]
pub struct CountingSink {
    inner: Mutex<CountingInner>,
}

#[derive(Debug, Default)]
struct CountingInner {
    contacts: HashSet<(PubId, NodeId)>,
    /// First-notify step per `(publication, node)` pair.
    notifies: HashMap<(PubId, NodeId), Step>,
    /// Delivery queues for *watched* nodes (session endpoints): payloads are
    /// retained only here, so unwatched — i.e. simulation-only — runs never
    /// clone an event body. Each queue dedups by publication id: redundant
    /// re-deliveries through other trees enqueue nothing.
    watched: HashMap<NodeId, WatchQueue>,
}

#[derive(Debug, Default)]
struct WatchQueue {
    seen: HashSet<PubId>,
    queue: Vec<(PubId, SharedEvent)>,
}

impl CountingSink {
    /// New empty sink.
    pub fn new() -> Self {
        CountingSink::default()
    }

    /// Number of distinct nodes contacted by `id`.
    pub fn contacted(&self, id: PubId) -> usize {
        let inner = self.inner.lock().unwrap();
        inner.contacts.iter().filter(|(p, _)| *p == id).count()
    }

    /// Number of distinct nodes notified by `id`.
    pub fn notified(&self, id: PubId) -> usize {
        let inner = self.inner.lock().unwrap();
        inner.notifies.keys().filter(|(p, _)| *p == id).count()
    }

    /// Whether `(id, node)` was notified.
    pub fn was_notified(&self, id: PubId, node: NodeId) -> bool {
        self.inner
            .lock()
            .unwrap()
            .notifies
            .contains_key(&(id, node))
    }

    /// The step at which `node` was **first** notified of `id`, if ever.
    pub fn notify_step(&self, id: PubId, node: NodeId) -> Option<Step> {
        self.inner
            .lock()
            .unwrap()
            .notifies
            .get(&(id, node))
            .copied()
    }

    /// Whether `(id, node)` was contacted.
    pub fn was_contacted(&self, id: PubId, node: NodeId) -> bool {
        self.inner.lock().unwrap().contacts.contains(&(id, node))
    }

    /// Total contact pairs.
    pub fn total_contacts(&self) -> usize {
        self.inner.lock().unwrap().contacts.len()
    }

    /// Total notify pairs.
    pub fn total_notifies(&self) -> usize {
        self.inner.lock().unwrap().notifies.len()
    }

    /// Runs `f` over all contact pairs.
    pub fn for_each_contact(&self, mut f: impl FnMut(PubId, NodeId)) {
        for (p, n) in self.inner.lock().unwrap().contacts.iter() {
            f(*p, *n);
        }
    }

    /// Starts retaining delivery payloads for `node`. Idempotent. Deliveries
    /// that happened before the watch began are not replayed.
    pub fn watch(&self, node: NodeId) {
        self.inner.lock().unwrap().watched.entry(node).or_default();
    }

    /// Stops retaining payloads for `node` and discards anything queued.
    pub fn unwatch(&self, node: NodeId) {
        self.inner.lock().unwrap().watched.remove(&node);
    }

    /// Whether `node` is currently watched.
    pub fn is_watched(&self, node: NodeId) -> bool {
        self.inner.lock().unwrap().watched.contains_key(&node)
    }

    /// Moves everything queued for `node` since the last drain into `into`
    /// (oldest first). A node that is not watched drains nothing.
    pub fn drain_deliveries(&self, node: NodeId, into: &mut Vec<(PubId, SharedEvent)>) {
        if let Some(w) = self.inner.lock().unwrap().watched.get_mut(&node) {
            into.append(&mut w.queue);
        }
    }
}

impl StatsSink for CountingSink {
    fn on_contact(&self, id: PubId, node: NodeId, _now: Step) {
        self.inner.lock().unwrap().contacts.insert((id, node));
    }

    fn on_notify(&self, id: PubId, node: NodeId, now: Step) {
        // First notify wins: the entry API keeps the earliest step even if a
        // slower redundant path re-delivers the publication later.
        self.inner
            .lock()
            .unwrap()
            .notifies
            .entry((id, node))
            .or_insert(now);
    }

    fn on_deliver(&self, id: PubId, node: NodeId, event: &Event, _now: Step) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(w) = inner.watched.get_mut(&node) {
            if w.seen.insert(id) {
                // The one payload clone of a watched delivery: queues hold the
                // event by refcount from here on.
                w.queue.push((id, SharedEvent::new(event.clone())));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_records_pairs() {
        let s = CountingSink::new();
        let p = PubId(NodeId::from_index(0), 1);
        let n1 = NodeId::from_index(1);
        let n2 = NodeId::from_index(2);
        s.on_contact(p, n1, 3);
        s.on_contact(p, n1, 4); // dedup
        s.on_contact(p, n2, 3);
        s.on_notify(p, n2, 5);
        assert_eq!(s.contacted(p), 2);
        assert_eq!(s.notified(p), 1);
        assert!(s.was_notified(p, n2));
        assert!(!s.was_notified(p, n1));
        assert!(s.was_contacted(p, n1));
        assert_eq!(s.total_contacts(), 2);
        assert_eq!(s.total_notifies(), 1);
        let mut seen = 0;
        s.for_each_contact(|_, _| seen += 1);
        assert_eq!(seen, 2);
    }

    #[test]
    fn first_notify_step_wins() {
        let s = CountingSink::new();
        let p = PubId(NodeId::from_index(0), 1);
        let n = NodeId::from_index(1);
        assert_eq!(s.notify_step(p, n), None);
        s.on_notify(p, n, 7);
        s.on_notify(p, n, 12); // a slower redundant path re-delivers
        assert_eq!(s.notify_step(p, n), Some(7));
    }

    #[test]
    fn watch_queues_payloads_only_for_watched_nodes() {
        let s = CountingSink::new();
        let p = PubId(NodeId::from_index(0), 1);
        let q = PubId(NodeId::from_index(0), 2);
        let n1 = NodeId::from_index(1);
        let n2 = NodeId::from_index(2);
        let ev: Event = "a = 1".parse().unwrap();
        s.watch(n1);
        assert!(s.is_watched(n1));
        assert!(!s.is_watched(n2));
        s.on_deliver(p, n1, &ev, 3);
        s.on_deliver(p, n1, &ev, 9); // redundant re-delivery: deduped
        s.on_deliver(q, n1, &ev, 4);
        s.on_deliver(p, n2, &ev, 3); // unwatched: dropped
        let mut got = Vec::new();
        s.drain_deliveries(n1, &mut got);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, p);
        assert_eq!(got[1].0, q);
        assert_eq!(*got[0].1, ev);
        got.clear();
        s.drain_deliveries(n1, &mut got);
        assert!(got.is_empty(), "drain consumes");
        s.drain_deliveries(n2, &mut got);
        assert!(got.is_empty());
        s.unwatch(n1);
        s.on_deliver(q, n1, &ev, 5);
        s.drain_deliveries(n1, &mut got);
        assert!(got.is_empty(), "unwatch discards and stops retention");
    }

    #[test]
    fn noop_sink_is_silent() {
        let s = NoopSink;
        s.on_contact(PubId(NodeId::from_index(0), 0), NodeId::from_index(0), 1);
        s.on_notify(PubId(NodeId::from_index(0), 0), NodeId::from_index(0), 1);
    }
}
