//! Bootstrap substrate: random peer sampling, tree-discovery random walks, owner
//! announcements, tree creation and duplicate-tree dissolution (§4.1: "it is
//! always possible to locate a contact point in any of the trees, for example by
//! propagating a request message with random walks. ... the node that creates a
//! tree starts periodically a new traversal, in order to detect duplicate trees
//! and merge them into one").

use dps_content::AttrName;
use dps_sim::{Context, NodeId};
use rand::seq::IteratorRandom;

use crate::config::{CommKind, TraversalKind};
use crate::label::GroupLabel;
use crate::msg::{DpsMsg, Ticket};
use crate::node::{claim_beats, DpsNode, PendingWalk, SubPhase, TreeContact};

impl DpsNode {
    pub(crate) fn handle_shuffle(
        &mut self,
        from: NodeId,
        peers: Vec<NodeId>,
        ctx: &mut Context<'_, DpsMsg>,
    ) {
        let mine = self.peer_sample(ctx, 4);
        self.merge_peers(&peers);
        if !self.peers.contains(&from) && from != self.id {
            self.peers.push(from);
            self.trim_peers(ctx);
        }
        ctx.send(from, DpsMsg::ShuffleReply { peers: mine });
    }

    pub(crate) fn merge_peers(&mut self, peers: &[NodeId]) {
        for p in peers {
            if *p != self.id && !self.peers.contains(p) && !self.suspected.contains(p) {
                self.peers.push(*p);
            }
        }
        // Trim oldest-first beyond capacity (newest information is freshest).
        let cap = self.cfg.peer_view;
        if self.peers.len() > cap {
            self.peers.drain(0..self.peers.len() - cap);
        }
    }

    fn trim_peers(&mut self, _ctx: &mut Context<'_, DpsMsg>) {
        let cap = self.cfg.peer_view;
        if self.peers.len() > cap {
            self.peers.drain(0..self.peers.len() - cap);
        }
    }

    pub(crate) fn peer_sample(&mut self, ctx: &mut Context<'_, DpsMsg>, n: usize) -> Vec<NodeId> {
        let me = self.id;
        self.peers
            .iter()
            .copied()
            .filter(|p| *p != me)
            .choose_multiple(ctx.rng(), n)
    }

    /// Starts (or restarts) a random walk looking for the tree of `attr`.
    pub(crate) fn start_walk(&mut self, attr: AttrName, ctx: &mut Context<'_, DpsMsg>) {
        let deadline = ctx.now() + self.cfg.request_timeout;
        match self.walks.iter_mut().find(|w| w.attr == attr) {
            Some(w) => w.deadline = deadline,
            None => self.walks.push(PendingWalk {
                attr: attr.clone(),
                deadline,
            }),
        }
        let ttl = self.cfg.walk_ttl;
        let origin = self.id;
        // Launch two parallel walks ("random walks", §4.1): a single walk dies
        // whenever one hop lands on a crashed peer, which is common under churn.
        for peer in self.peer_sample(ctx, 2) {
            ctx.send(
                peer,
                DpsMsg::FindTree {
                    attr: attr.clone(),
                    origin,
                    ttl,
                },
            );
        }
        // With no peers at all, the walk deadline will expire and the caller-side
        // retry logic concludes "no tree" (and creates one if subscribing).
    }

    pub(crate) fn handle_find_tree(
        &mut self,
        attr: AttrName,
        origin: NodeId,
        ttl: u32,
        ctx: &mut Context<'_, DpsMsg>,
    ) {
        // Am I in the tree?
        if !self.memberships_in(&attr).is_empty() {
            let (owner, epoch) = match self.known_owner_claim(&attr) {
                Some((o, e)) => (Some(o), e),
                None => (None, 0),
            };
            ctx.send(
                origin,
                DpsMsg::TreeFound {
                    attr,
                    contact: self.id,
                    owner,
                    epoch,
                },
            );
            return;
        }
        // Do I know a (live, as far as we can tell) contact?
        if let Some(c) = self.tree_cache.get(&attr) {
            let (contact, owner, epoch) = (c.contact, c.owner, c.epoch);
            if !self.suspected.contains(&contact) {
                ctx.send(
                    origin,
                    DpsMsg::TreeFound {
                        attr,
                        contact,
                        owner,
                        epoch,
                    },
                );
                return;
            }
        }
        let next = {
            let me = self.id;
            let suspected = &self.suspected;
            self.peers
                .iter()
                .copied()
                .filter(|p| *p != origin && *p != me && !suspected.contains(p))
                .choose(ctx.rng())
        };
        match next {
            Some(p) if ttl > 0 => ctx.send(
                p,
                DpsMsg::FindTree {
                    attr,
                    origin,
                    ttl: ttl - 1,
                },
            ),
            _ => ctx.send(origin, DpsMsg::TreeNotFound { attr }),
        }
    }

    /// A walk came back empty: retry (or create the tree) right away by expiring
    /// the pending requests waiting on this attribute.
    pub(crate) fn handle_tree_not_found(&mut self, attr: AttrName, ctx: &mut Context<'_, DpsMsg>) {
        if !self.walks.iter().any(|w| w.attr == attr) {
            return; // stale answer from an earlier walk
        }
        self.walks.retain(|w| w.attr != attr);
        let now = ctx.now();
        for p in &mut self.pending_subs {
            if p.phase == SubPhase::FindingTree && p.pred.name() == &attr {
                p.deadline = now;
            }
        }
        for p in &mut self.pending_pubs {
            if p.attrs.contains(&attr) {
                p.deadline = now;
            }
        }
        // The expired deadlines are picked up by this step's `on_tick` — never
        // retry inline here: several parallel walks answering in one step would
        // each spawn a fresh retry (and fresh walks), snowballing exponentially.
        let _ = ctx;
    }

    pub(crate) fn handle_tree_found(
        &mut self,
        attr: AttrName,
        contact: NodeId,
        owner: Option<NodeId>,
        epoch: u64,
        ctx: &mut Context<'_, DpsMsg>,
    ) {
        if self.suspected.contains(&contact) {
            // Stale answer naming a contact we believe dead — but the belief
            // itself may be stale (a healed partition looks exactly like a
            // crash while it holds): verify instead of refusing forever. For
            // owner-walk answers (no pending-walk entry) the re-walk fires
            // immediately; for subscription-driven walks the entry is still
            // registered, so the re-check rides the existing deadline-retry
            // machinery instead of stacking extra walks.
            self.verify_suspect(contact, ctx);
            self.rewalk_once(&attr, ctx);
            return;
        }
        self.walks.retain(|w| w.attr != attr);
        // Duplicate-tree detection: we own this attribute but the walk came back
        // with a different owner — one of the two trees must dissolve (§4.1).
        if self.owns_tree(&attr) {
            if let Some(o) = owner {
                self.maybe_dissolve_own_tree(&attr, o, epoch, contact, ctx);
            }
            return;
        }
        // Ignore claims older than what we already hold.
        if let Some(best) = self.known_owner_claim(&attr) {
            if let Some(o) = owner {
                if !claim_beats((o, epoch), best) && (o, epoch) != best {
                    self.resume_for_attr(&attr, ctx);
                    return;
                }
            }
        }
        self.tree_cache.insert(
            attr.clone(),
            TreeContact {
                contact,
                owner,
                epoch,
            },
        );
        self.resume_for_attr(&attr, ctx);
    }

    /// Caches an owner announcement. When two owners are claimed for the same
    /// attribute (concurrent tree creations, or a re-rooting racing stale state),
    /// everyone deterministically sides with the higher epoch — then the smaller
    /// node id — and tips the loser off, so its duplicate-tree dissolution
    /// triggers immediately instead of waiting for a lucky walk.
    pub(crate) fn handle_owner_announce(
        &mut self,
        attr: AttrName,
        owner: NodeId,
        epoch: u64,
        ctx: &mut Context<'_, DpsMsg>,
    ) {
        let prev = self
            .tree_cache
            .get(&attr)
            .and_then(|c| c.owner.map(|o| (o, c.epoch)));
        let claim = (owner, epoch);
        let (winner, loser) = match prev {
            Some(p) if p.0 != owner => {
                if claim_beats(claim, p) {
                    (claim, Some(p.0))
                } else {
                    (p, Some(owner))
                }
            }
            _ => (claim, None),
        };
        let improved = prev != Some(winner);
        self.tree_cache.insert(
            attr.clone(),
            TreeContact {
                contact: winner.0,
                owner: Some(winner.0),
                epoch: winner.1,
            },
        );
        // Epidemic broadcast of ownership: forward strictly-better claims to a
        // few peers. Claims form a lattice (epoch, then min id), so every node
        // forwards at most once per improvement and the flood terminates.
        if improved {
            let peers = self.peer_sample(ctx, 3);
            for p in peers {
                ctx.send(
                    p,
                    DpsMsg::OwnerAnnounce {
                        attr: attr.clone(),
                        owner: winner.0,
                        epoch: winner.1,
                    },
                );
            }
        }
        if let Some(l) = loser {
            ctx.send(
                l,
                DpsMsg::TreeFound {
                    attr: attr.clone(),
                    contact: winner.0,
                    owner: Some(winner.0),
                    epoch: winner.1,
                },
            );
        }
        // We may ourselves hold memberships the winning claim beats — a stale
        // root (we are the losing owner) or mid-tree groups a dissolve wave
        // never reached. The loser tip-off above only fires on an
        // *improvement*, so once our cache already names the winner nothing
        // would ever convert them: run the per-membership dissolve directly
        // (it no-ops when every claim already matches or beats the winner's).
        if winner.0 != self.id {
            self.handle_dissolve(attr, winner.0, winner.0, winner.1, ctx);
        }
    }

    /// Creates the tree for `attr` with ourselves as owner — either as the first
    /// subscriber to an attribute nobody serves yet, or as a survivor re-rooting
    /// an orphaned subtree — and tells our peers.
    pub(crate) fn create_tree(&mut self, attr: AttrName, ctx: &mut Context<'_, DpsMsg>) {
        let label = GroupLabel::Root(attr.clone());
        if self.membership(&label).is_some() {
            return;
        }
        // Fresh trees start at epoch 0; only re-rooting over an owner we believe
        // DEAD bumps the epoch past its claim. Bumping over a live owner would
        // let every racing duplicate creation trump the established tree,
        // triggering endless dissolve/re-subscribe wars.
        let epoch = match self.known_owner_claim(&attr) {
            Some((o, e)) if self.suspected.contains(&o) => e + 1,
            Some((_, e)) => e,
            None => 0,
        };
        let idx = self.new_led_membership(None, label, self.id);
        self.memberships[idx].owner_epoch = epoch;
        let announce = DpsMsg::OwnerAnnounce {
            attr: attr.clone(),
            owner: self.id,
            epoch,
        };
        let peers = self.peers.clone();
        for p in peers {
            ctx.send(p, announce.clone());
        }
        self.tree_cache.insert(
            attr,
            TreeContact {
                contact: self.id,
                owner: Some(self.id),
                epoch,
            },
        );
    }

    /// Re-drives pending subscriptions/publications blocked on discovering the
    /// tree of `attr`.
    pub(crate) fn resume_for_attr(&mut self, attr: &AttrName, ctx: &mut Context<'_, DpsMsg>) {
        // Subscriptions waiting for this tree.
        let waiting: Vec<_> = self
            .pending_subs
            .iter()
            .filter(|p| p.phase == SubPhase::FindingTree && p.pred.name() == attr)
            .map(|p| p.sub_id)
            .collect();
        for sub_id in waiting {
            self.drive_subscription(sub_id, ctx);
        }
        // Publications waiting for this tree: (re)send them; the attribute stays
        // pending until a tree member acknowledges.
        let ready: Vec<(crate::msg::PubId, dps_content::SharedEvent)> = self
            .pending_pubs
            .iter()
            .filter(|p| p.attrs.contains(attr))
            .map(|p| (p.id, p.event.clone()))
            .collect();
        for (id, event) in ready {
            self.send_publication(id, &event, attr.clone(), ctx);
        }
    }

    /// Periodic duplicate-tree detection: owners walk the network; discovering a
    /// tree for the same attribute under a weaker claim holder, they dissolve
    /// their own (§4.1). The comparison must be deterministic and agreed by both
    /// sides — epoch, then node id order, serves as the tiebreak. Every owned
    /// attribute walks through two peers: owners are few and walks are cheap,
    /// and a sparse single walk left healed partitions fragmented for hundreds
    /// of steps.
    pub(crate) fn owner_merge_walk(&mut self, ctx: &mut Context<'_, DpsMsg>) {
        let ttl = self.cfg.walk_ttl;
        let origin = self.id;
        for attr in self.owned_attrs() {
            for peer in self.peer_sample(ctx, 2) {
                ctx.send(
                    peer,
                    DpsMsg::FindTree {
                        attr: attr.clone(),
                        origin,
                        ttl,
                    },
                );
            }
            // Re-announce the claim alongside the walk. Announces flood only
            // while they improve someone's knowledge (the claim lattice), so
            // a steady-state re-flood is a few messages — but after a healed
            // partition it is what carries the winning claim across the old
            // cut and tips the losing owner off directly, where walks alone
            // can keep landing inside the owner's own cohort for hundreds of
            // steps.
            let claim = self
                .membership(&GroupLabel::Root(attr.clone()))
                .map(|m| (m.owner, m.owner_epoch));
            if let Some((owner, epoch)) = claim {
                let announce = DpsMsg::OwnerAnnounce {
                    attr: attr.clone(),
                    owner,
                    epoch,
                };
                for p in self.peer_sample(ctx, 3) {
                    ctx.send(p, announce.clone());
                }
            }
        }
    }

    /// Part of `handle_tree_found`'s duty when we own the attribute: a duplicate
    /// tree exists if the reported owner differs from us. The weaker claim
    /// (lower epoch, then higher node id) dissolves; the stronger survives. A
    /// claim naming a node we believe dead never wins.
    pub(crate) fn maybe_dissolve_own_tree(
        &mut self,
        attr: &AttrName,
        other_owner: NodeId,
        other_epoch: u64,
        contact: NodeId,
        ctx: &mut Context<'_, DpsMsg>,
    ) {
        if other_owner == self.id {
            return;
        }
        if self.suspected.contains(&other_owner) {
            // A claim naming a node we believe dead never wins — but when the
            // suspicion came from a partition (unreachability and crash are
            // indistinguishable while the cut holds), refusing forever
            // deadlocks the merge: both healed cohorts keep their own tree.
            // Verify the suspicion and immediately restart the walk: the pong
            // (if any) lands before the fresh answer does, so the re-check
            // dissolves within a handful of steps instead of a whole
            // owner-walk period.
            self.verify_suspect(other_owner, ctx);
            self.rewalk_once(attr, ctx);
            return;
        }
        // Compare against the claim of the root we actually maintain — not
        // the best claim across all memberships: a node whose mid-tree groups
        // already merged toward the winner would otherwise see its own stale
        // root as "already converted" and keep a phantom duplicate tree alive.
        let mine = self
            .membership(&GroupLabel::Root(attr.clone()))
            .map(|m| (m.owner, m.owner_epoch))
            .unwrap_or((self.id, 0));
        if claim_beats((other_owner, other_epoch), mine) {
            self.handle_dissolve(attr.clone(), contact, other_owner, other_epoch, ctx);
        }
    }

    /// Challenges a suspicion: pings the suspect directly. Crashed nodes stay
    /// silent (nothing changes); a falsely-suspected node — typically the far
    /// side of a healed partition — answers, and any incoming message
    /// retracts the suspicion on receipt. Throttled per suspect: stale caches
    /// can keep naming a genuinely-dead node every walk/announce period for
    /// the rest of a run, and each of those must not cost a fresh ping.
    pub(crate) fn verify_suspect(&mut self, suspect: NodeId, ctx: &mut Context<'_, DpsMsg>) {
        let now = ctx.now();
        let window = 2 * self.cfg.probe_timeout.max(1);
        if let Some(&at) = self.verify_at.get(&suspect) {
            if now.saturating_sub(at) < window {
                return;
            }
        }
        self.verify_at.insert(suspect, now);
        if self.verify_at.len() > 64 {
            self.verify_at
                .retain(|_, at| now.saturating_sub(*at) < window);
        }
        let nonce = self.fresh_nonce();
        ctx.send(suspect, DpsMsg::Ping { nonce });
    }

    /// Restarts the walk for `attr` so a suspicion-blocked answer is promptly
    /// re-checked — but only when no walk for it is already pending: walk
    /// answers can themselves land in a suspicion guard, and an unguarded
    /// restart per answer snowballs walks exponentially while the suspect is
    /// genuinely dead (stale third-party caches keep naming it). The pending
    /// entry expires after `request_timeout`, bounding re-walks to one burst
    /// per timeout period.
    pub(crate) fn rewalk_once(&mut self, attr: &AttrName, ctx: &mut Context<'_, DpsMsg>) {
        if !self.walks.iter().any(|w| &w.attr == attr) {
            self.start_walk(attr.clone(), ctx);
        }
    }

    /// Tears down our membership(s) in a duplicate tree and re-subscribes the
    /// affected subscriptions through the surviving one. Leaders forward the
    /// dissolution down their branches and out to members first.
    pub(crate) fn handle_dissolve(
        &mut self,
        attr: AttrName,
        contact: NodeId,
        new_owner: NodeId,
        epoch: u64,
        ctx: &mut Context<'_, DpsMsg>,
    ) {
        if self.suspected.contains(&new_owner) {
            // Never dissolve toward a dead owner — but do challenge the
            // suspicion (see `maybe_dissolve_own_tree`) and re-walk so the
            // re-check happens promptly: if the owner is alive across a
            // healed cut, its answer unblocks the next wave.
            self.verify_suspect(new_owner, ctx);
            self.rewalk_once(&attr, ctx);
            return;
        }
        // The dissolve decision is **per membership**: a node can sit in both
        // trees at once (one group already merged toward the winner, another
        // still carrying the loser's claim), and an aggregate best-claim
        // check would see the converted group and skip the stale ones
        // forever. Each membership compares its own claim; ones already on
        // the winning tree (or holding a claim the wave does not beat) are
        // left alone and propagate nothing — which is also what terminates
        // the wave.
        let idxs: Vec<usize> = self
            .memberships_in(&attr)
            .into_iter()
            .filter(|&i| {
                let m = &self.memberships[i];
                m.owner != new_owner && claim_beats((new_owner, epoch), (m.owner, m.owner_epoch))
            })
            .collect();
        if idxs.is_empty() {
            return;
        }
        // Update the cache toward the surviving tree.
        self.tree_cache.insert(
            attr.clone(),
            TreeContact {
                contact,
                owner: Some(new_owner),
                epoch,
            },
        );
        let msg = DpsMsg::DissolveTree {
            attr: attr.clone(),
            contact,
            new_owner,
            epoch,
        };
        let epidemic = self.cfg.comm == CommKind::Epidemic;
        let mut resubscribe: Vec<crate::msg::SubId> = Vec::new();
        let mut orphaned: Vec<GroupLabel> = Vec::new();
        // Walk in reverse so removal by index stays valid.
        for i in idxs.into_iter().rev() {
            if !self.memberships[i].label.is_root() {
                // Merge-in-place (make-before-break), both communication
                // modes: the group keeps its label, members and
                // subscriptions, adopts the surviving owner's claim, and
                // re-attaches into the surviving tree as a unit via the
                // orphan machinery — instead of every member individually
                // tearing down and re-traversing, which left subscribers
                // silently unplaced for hundreds of steps (epidemic mode
                // under churn in PR 3; leader mode after a healed partition,
                // the ≈ 0.56 healed-phase ratio). In leader mode the group's
                // leadership survives intact — only the predecessor chain is
                // rebuilt, and the leader alone drives the reattach
                // (`reattach_or_promote` is a no-op for plain members). The
                // propagation below tells the rest of the cohort; receivers
                // that already switched claims return early, so the wave
                // terminates.
                let m = &mut self.memberships[i];
                m.owner = new_owner;
                m.owner_epoch = epoch;
                m.set_predview(Vec::new(), 0);
                // Leader mode also chains through the leadership (a plain
                // member may hear of the dissolution first — the leader must
                // learn it to drive the reattach); epidemic mode has no
                // maintained leadership to chain through.
                let leadership: Vec<NodeId> = if epidemic {
                    Vec::new()
                } else {
                    std::iter::once(m.leader)
                        .chain(m.co_leaders.iter().copied())
                        .collect()
                };
                let targets: Vec<NodeId> = m
                    .members
                    .iter()
                    .copied()
                    .chain(leadership)
                    .chain(m.branches.iter().filter_map(|b| b.primary()))
                    .filter(|n| *n != self.id)
                    .collect();
                for n in targets {
                    ctx.send(n, msg.clone());
                }
                orphaned.push(self.memberships[i].label.clone());
                continue;
            }
            // The duplicate tree's root group dissolves outright: the
            // surviving tree already has a root, so there is nothing to merge
            // this one into — its subscriptions re-traverse from scratch.
            let m = self.memberships.remove(i);
            if m.is_leader() {
                for b in &m.branches {
                    if let Some(n) = b.primary() {
                        ctx.send(n, msg.clone());
                    }
                }
                for member in &m.members {
                    if *member != self.id {
                        ctx.send(*member, msg.clone());
                    }
                }
            }
            resubscribe.extend(m.sub_ids);
        }
        for label in orphaned {
            if let Some(i) = self.membership_index(&label) {
                // Routes a Reattach toward the surviving tree's contact (just
                // cached above); the periodic orphan retry in `tick_periodic`
                // covers a lost graft.
                self.reattach_or_promote(i, ctx);
            }
        }
        for sub_id in resubscribe {
            if let Some(filter) = self.subs.get(sub_id).cloned() {
                let pred = filter
                    .predicates()
                    .iter()
                    .find(|p| p.name() == &attr)
                    .cloned();
                if let Some(pred) = pred {
                    self.enqueue_subscription(sub_id, pred, ctx);
                }
            }
        }
    }

    /// Sends a `FIND_GROUP` toward the tree of the pending subscription's
    /// attribute using the configured traversal: to the owner for root-based
    /// visits, to any contact for generic ones.
    pub(crate) fn send_find_group(
        &mut self,
        sub_id: crate::msg::SubId,
        pred: dps_content::Predicate,
        ctx: &mut Context<'_, DpsMsg>,
    ) -> bool {
        let attr = pred.name().clone();
        let ticket = Ticket {
            origin: self.id,
            sub_id,
            pred,
            mode: self.cfg.traversal,
            descending: false,
            // Descents visit one group per hop and chains can be very deep; the
            // ttl is only a loop backstop.
            ttl: 100_000,
        };
        let target = match self.cfg.traversal {
            TraversalKind::Root => self
                .known_owner(&attr)
                .or_else(|| self.tree_cache.get(&attr).map(|c| c.contact)),
            TraversalKind::Generic => {
                // Any contact will do; prefer ourselves when we are in the tree.
                if !self.memberships_in(&attr).is_empty() {
                    Some(self.id)
                } else {
                    self.tree_cache.get(&attr).map(|c| c.contact)
                }
            }
        };
        match target {
            Some(t) => {
                ctx.send(t, DpsMsg::FindGroup(ticket));
                true
            }
            None => false,
        }
    }
}
