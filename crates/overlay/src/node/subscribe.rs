//! The subscription side of §4.1: the `FIND_GROUP` traversal and the
//! `SUBSCRIBE_TO` / `CREATE_GROUP` primitives, plus join/ack handling and the
//! retry machinery for pending subscriptions.

use dps_content::{Predicate, SharedFilter};
use dps_sim::{Context, NodeId};
use rand::seq::IteratorRandom;
use rand::Rng;

use crate::config::{CommKind, JoinRule, TraversalKind};
use crate::label::GroupLabel;
use crate::msg::{BranchInfo, DpsMsg, GroupDescriptor, GroupRef, SubId, Ticket};
use crate::node::{DpsNode, PendingSub, SubPhase};
use crate::views::{Branch, Membership, Role};

/// Maximum subscription retries before the node concludes no tree exists and
/// creates one itself.
const MAX_SUB_RETRIES: u32 = 8;

impl DpsNode {
    /// Issues a subscription, joining the overlay with the filter's predicate
    /// selected by the configured [`JoinRule`].
    ///
    /// # Panics
    ///
    /// Panics if the filter has no predicates (a match-all filter cannot be
    /// placed in any attribute tree).
    pub fn subscribe(
        &mut self,
        filter: impl Into<SharedFilter>,
        ctx: &mut Context<'_, DpsMsg>,
    ) -> SubId {
        let idx = match self.cfg.join_rule {
            JoinRule::First | JoinRule::Explicit => 0,
        };
        self.subscribe_with(filter, idx, ctx)
    }

    /// Issues a subscription joining via the predicate at `join_idx` (the paper:
    /// the attribute "can be arbitrarily chosen without affecting correctness").
    ///
    /// # Panics
    ///
    /// Panics if `join_idx` is out of range of the filter's predicates.
    pub fn subscribe_with(
        &mut self,
        filter: impl Into<SharedFilter>,
        join_idx: usize,
        ctx: &mut Context<'_, DpsMsg>,
    ) -> SubId {
        let filter = filter.into();
        let pred = filter.predicates()[join_idx].clone();
        let sub_id = SubId(self.id, self.next_sub);
        self.next_sub += 1;
        self.subs.insert(sub_id, filter);
        self.enqueue_subscription(sub_id, pred, ctx);
        sub_id
    }

    /// Cancels a subscription; if this empties the membership serving it, the
    /// node leaves the group (leaders hand over to a co-leader first).
    pub fn unsubscribe(&mut self, sub_id: SubId, ctx: &mut Context<'_, DpsMsg>) {
        self.subs.remove(sub_id);
        self.pending_subs.retain(|p| p.sub_id != sub_id);
        let Some(i) = self
            .memberships
            .iter()
            .position(|m| m.sub_ids.contains(&sub_id))
        else {
            return;
        };
        self.memberships[i].sub_ids.retain(|s| *s != sub_id);
        if !self.memberships[i].sub_ids.is_empty() || self.memberships[i].label.is_root() {
            return;
        }
        let mut m = self.memberships.remove(i);
        // Leaving: scrub ourselves from the group state we hand over (but not from
        // the pred/succ views — we may legitimately appear there in other roles,
        // e.g. as the owner of the parent root).
        let me = self.id;
        m.members.retain(|n| *n != me);
        m.co_leaders.retain(|n| *n != me);
        let label = m.label.clone();
        if m.is_leader() {
            // Hand over to the first co-leader; otherwise the group dissolves and
            // neighbors clean up through failure detection.
            if let Some(&heir) = m.co_leaders.first() {
                let info = DpsMsg::GroupInfo {
                    label: label.clone(),
                    leader: heir,
                    co_leaders: m
                        .co_leaders
                        .iter()
                        .copied()
                        .filter(|c| *c != heir)
                        .collect(),
                    owner: m.owner,
                    owner_epoch: m.owner_epoch,
                };
                for peer in m
                    .members
                    .iter()
                    .copied()
                    .chain(m.predview.iter().map(|r| r.node))
                    .chain(m.branches.iter().filter_map(|b| b.primary()))
                {
                    if peer != self.id {
                        ctx.send(peer, info.clone());
                    }
                }
                // The heir also needs our branch and parent state, and must drop
                // us from its membership view.
                ctx.send(
                    heir,
                    DpsMsg::ViewPush {
                        label: label.clone(),
                        members: m.members.clone(),
                        predview: m.predview.clone(),
                        branches: m.branches.iter().map(Branch::info).collect(),
                        recent: self.recent_digest(),
                    },
                );
                ctx.send(
                    heir,
                    DpsMsg::Leave {
                        label: label.clone(),
                        member: self.id,
                    },
                );
                // We may ourselves hold neighbor views of the group we just left
                // (e.g. a branch in the parent root we own): refresh them too.
                let co: Vec<_> = m
                    .co_leaders
                    .iter()
                    .copied()
                    .filter(|c| *c != heir)
                    .collect();
                self.handle_group_info(label.clone(), heir, co, m.owner, m.owner_epoch, ctx);
            }
        } else {
            ctx.send(
                m.leader,
                DpsMsg::Leave {
                    label,
                    member: self.id,
                },
            );
        }
    }

    /// Registers a pending subscription and starts driving it.
    pub(crate) fn enqueue_subscription(
        &mut self,
        sub_id: SubId,
        pred: Predicate,
        ctx: &mut Context<'_, DpsMsg>,
    ) {
        self.pending_subs.push(PendingSub {
            sub_id,
            pred,
            phase: SubPhase::FindingTree,
            deadline: ctx.now() + self.cfg.request_timeout,
            retries: 0,
        });
        self.drive_subscription(sub_id, ctx);
    }

    /// Advances a pending subscription as far as current knowledge allows.
    pub(crate) fn drive_subscription(&mut self, sub_id: SubId, ctx: &mut Context<'_, DpsMsg>) {
        let Some(p) = self.pending_subs.iter().find(|p| p.sub_id == sub_id) else {
            return;
        };
        let pred = p.pred.clone();
        let label = GroupLabel::Pred(pred.clone());
        // Already a member of the right group (another subscription joined it)?
        if let Some(m) = self.membership_mut(&label) {
            m.sub_ids.push(sub_id);
            self.pending_subs.retain(|p| p.sub_id != sub_id);
            return;
        }
        let attr = pred.name().clone();
        let in_tree = !self.memberships_in(&attr).is_empty();
        let has_contact = in_tree || self.tree_cache.contains_key(&attr);
        if has_contact && self.send_find_group(sub_id, pred, ctx) {
            let deadline = ctx.now() + self.cfg.traversal_timeout;
            if let Some(p) = self.pending_subs.iter_mut().find(|p| p.sub_id == sub_id) {
                p.phase = SubPhase::Traversing;
                p.deadline = deadline;
            }
            return;
        }
        // No known contact: walk for the tree.
        if let Some(p) = self.pending_subs.iter_mut().find(|p| p.sub_id == sub_id) {
            p.phase = SubPhase::FindingTree;
            p.deadline = ctx.now() + self.cfg.request_timeout;
        }
        self.start_walk(attr, ctx);
    }

    /// Timeout/retry driver, called from `on_tick`.
    pub(crate) fn retry_due_subscriptions(&mut self, ctx: &mut Context<'_, DpsMsg>) {
        let now = ctx.now();
        let due: Vec<SubId> = self
            .pending_subs
            .iter()
            .filter(|p| p.deadline <= now)
            .map(|p| p.sub_id)
            .collect();
        for sub_id in due {
            let Some(p) = self.pending_subs.iter_mut().find(|p| p.sub_id == sub_id) else {
                continue;
            };
            p.retries += 1;
            p.deadline = now
                + if matches!(p.phase, SubPhase::Traversing) {
                    self.cfg.traversal_timeout
                } else {
                    self.cfg.request_timeout
                };
            let retries = p.retries;
            let phase = p.phase.clone();
            let pred = p.pred.clone();
            let attr = pred.name().clone();
            match phase {
                SubPhase::FindingTree => {
                    if retries > self.cfg.find_tree_retries {
                        // §4.1: "If there is no tree for an attribute ... a new
                        // tree is created and the first subscriber becomes its
                        // owner."
                        self.create_tree(attr, ctx);
                        self.drive_subscription(sub_id, ctx);
                    } else {
                        self.start_walk(attr, ctx);
                    }
                }
                SubPhase::Traversing | SubPhase::Joining(_) => {
                    if retries >= 2 {
                        // The contact or owner we keep talking to never answers:
                        // suspect it so walks stop returning it (a live node
                        // clears the suspicion by sending us anything).
                        if let Some(c) = self.tree_cache.get(&attr) {
                            self.suspected.insert(c.contact);
                            if let Some(o) = c.owner {
                                self.suspected.insert(o);
                            }
                        }
                        self.tree_cache.remove(&attr);
                    }
                    if retries > MAX_SUB_RETRIES {
                        // The tree may have collapsed entirely; start over.
                        self.tree_cache.remove(&attr);
                        if let Some(p) = self.pending_subs.iter_mut().find(|p| p.sub_id == sub_id) {
                            p.phase = SubPhase::FindingTree;
                            p.retries = 0;
                        }
                        self.start_walk(attr, ctx);
                    } else {
                        // The contact, a relay, or the target leader died; the
                        // cached contact may be stale. Retry the traversal.
                        self.drive_subscription(sub_id, ctx);
                    }
                }
            }
        }
    }

    // ---- FIND_GROUP routing ----

    /// One traversal step (§4.1). The receiving node routes the ticket up or down
    /// the tree, answers `SUBSCRIBE_TO` when the group exists, or authorizes
    /// `CREATE_GROUP` when it is the designated predecessor.
    pub(crate) fn handle_find_group(&mut self, mut t: Ticket, ctx: &mut Context<'_, DpsMsg>) {
        if t.ttl == 0 {
            return;
        }
        t.ttl -= 1;
        let attr = t.pred.name().clone();
        let mems = self.memberships_in(&attr);
        if mems.is_empty() {
            // Not in this tree: relay toward a known contact, if any.
            if let Some(c) = self.tree_cache.get(&attr) {
                let to = c.contact;
                if to != self.id {
                    ctx.send(to, DpsMsg::FindGroup(t));
                }
            }
            return;
        }
        // Root-based traversal starts at the root: route to the owner first —
        // but only before the visit has passed through the root, or descents
        // would bounce straight back up. A suspected owner is as good as an
        // unknown one: forwarding to it would kill the visit.
        if t.mode == TraversalKind::Root && !t.descending && !self.owns_tree(&attr) {
            if let Some(owner) = self.known_owner(&attr) {
                if owner != self.id && !self.suspected.contains(&owner) {
                    ctx.send(owner, DpsMsg::FindGroup(t));
                    return;
                }
            }
            // Owner unknown (or suspected): behave like a generic visit.
        }
        if self.owns_tree(&attr) {
            t.descending = true;
        }
        let i = self.pick_routing_membership(&mems, &t.pred);
        self.route_find_group_at(i, t, ctx);
    }

    /// Whether we maintain the root vertex of `attr`.
    pub(crate) fn owns_tree(&self, attr: &dps_content::AttrName) -> bool {
        self.memberships
            .iter()
            .any(|m| m.label.is_root() && m.label.attr() == attr && m.is_leader())
    }

    /// Among our memberships in the tree, picks the best starting point for a
    /// traversal looking for `pred`: the exact group if we are in it, else the
    /// deepest group on the designated path, else any group (we will route up).
    fn pick_routing_membership(&self, mems: &[usize], pred: &Predicate) -> usize {
        let target = GroupLabel::Pred(pred.clone());
        if let Some(&i) = mems.iter().find(|&&i| self.memberships[i].label == target) {
            return i;
        }
        let mut best: Option<usize> = None;
        for &i in mems {
            if !self.memberships[i].label.on_path_to(pred) {
                continue;
            }
            best = match best {
                None => Some(i),
                Some(b) => {
                    // Prefer the deeper (more specific) label: a non-root label
                    // beats the root; among predicates the included one is deeper.
                    let lb = &self.memberships[b].label;
                    let li = &self.memberships[i].label;
                    let deeper = match (lb.predicate(), li.predicate()) {
                        (None, Some(_)) => true,
                        (Some(pb), Some(pi)) => pb.strictly_includes(pi),
                        _ => false,
                    };
                    Some(if deeper { i } else { b })
                }
            };
        }
        best.unwrap_or(mems[0])
    }

    fn route_find_group_at(&mut self, i: usize, t: Ticket, ctx: &mut Context<'_, DpsMsg>) {
        let label = self.memberships[i].label.clone();
        let target = GroupLabel::Pred(t.pred.clone());

        // Inter-group decisions are serialized at the leader in leader mode.
        if self.cfg.comm == CommKind::Leader && !self.memberships[i].is_leader() {
            let leader = self.memberships[i].leader;
            if leader != self.id {
                ctx.send(leader, DpsMsg::FindGroup(t));
            }
            return;
        }

        if label == target {
            // SUBSCRIBE_TO: the group exists and we speak for it.
            let group = self.descriptor(&self.memberships[i]);
            let origin = t.origin;
            ctx.send(origin, DpsMsg::SubscribeTo { ticket: t, group });
            return;
        }

        if label.on_path_to(&t.pred) {
            // Try to descend.
            let m = &self.memberships[i];
            // Exact child group?
            if let Some(b) = m.branch(&target) {
                let other = b
                    .refs
                    .iter()
                    .find(|r| r.label == target && r.node != t.origin)
                    .or_else(|| b.refs.iter().find(|r| r.node != t.origin))
                    .map(|r| r.node);
                if let Some(n) = other {
                    ctx.send(n, DpsMsg::FindGroup(t));
                    return;
                }
                // Every known contact of that branch IS the asker — a phantom
                // left by a lost CREATE_GROUP answer. Drop it and re-authorize.
                self.memberships[i].remove_branch(&target);
            }
            let m = &self.memberships[i];
            // A branch on the designated path?
            let branch_preds: Vec<(usize, Predicate)> = m
                .branches
                .iter()
                .enumerate()
                .filter_map(|(bi, b)| b.label.predicate().map(|p| (bi, p.clone())))
                .collect();
            let choice =
                dps_content::placement::choose_branch(branch_preds.iter().map(|(_, p)| p), &t.pred);
            if let Some(ci) = choice {
                let bi = branch_preds[ci].0;
                let b = &m.branches[bi];
                if let Some(n) = b.primary().or_else(|| b.refs.first().map(|r| r.node)) {
                    ctx.send(n, DpsMsg::FindGroup(t));
                    return;
                }
            }
            // CREATE_GROUP: we are the designated predecessor.
            self.authorize_create(i, t, ctx);
            return;
        }

        // Not on the designated path: route upwards (generic traversal).
        let up = self.memberships[i].predview.first().map(|r| r.node);
        match up {
            Some(n) if n != self.id => ctx.send(n, DpsMsg::FindGroup(t)),
            _ => {
                // Orphaned or self-parented: give up; the origin retries later.
            }
        }
    }

    /// The `CREATE_GROUP` authorization at the designated predecessor: splice in a
    /// blocked branch, compute the siblings the new group adopts (constraint C2),
    /// and tell the subscriber to build the group.
    fn authorize_create(&mut self, i: usize, t: Ticket, ctx: &mut Context<'_, DpsMsg>) {
        let target = GroupLabel::Pred(t.pred.clone());
        let parent = self.descriptor(&self.memberships[i]);
        let m = &mut self.memberships[i];
        //

        // Siblings included in the new predicate move under it.
        let (stay, adopted): (Vec<Branch>, Vec<Branch>) = std::mem::take(&mut m.branches)
            .into_iter()
            .partition(|b| !GroupLabel::branch_reparents_to(&b.label, &t.pred));
        m.branches = stay;
        let adopted_infos: Vec<BranchInfo> = adopted.iter().map(Branch::info).collect();
        let mut nb = Branch::new(
            target.clone(),
            vec![GroupRef {
                label: target.clone(),
                node: t.origin,
            }],
        );
        nb.blocked = true;
        nb.blocked_since = ctx.now();
        m.branches.push(nb);
        let origin = t.origin;
        ctx.send(
            origin,
            DpsMsg::CreateGroup {
                ticket: t,
                parent,
                adopted: adopted_infos,
            },
        );
        // Epidemic mode: let the rest of the group learn the branch change.
        if self.cfg.comm == CommKind::Epidemic {
            self.gossip_branches(i, ctx);
        }
    }

    // ---- answers back at the subscriber ----

    pub(crate) fn handle_subscribe_to(
        &mut self,
        ticket: Ticket,
        group: GroupDescriptor,
        ctx: &mut Context<'_, DpsMsg>,
    ) {
        let sub_id = ticket.sub_id;
        if !self.pending_subs.iter().any(|p| p.sub_id == sub_id) {
            return; // duplicate answer (several contact points) — §4.2.2
        }
        if let Some(m) = self.membership_mut(&group.label) {
            m.sub_ids.push(sub_id);
            self.pending_subs.retain(|p| p.sub_id != sub_id);
            return;
        }
        let deadline = ctx.now() + self.cfg.request_timeout;
        if let Some(p) = self.pending_subs.iter_mut().find(|p| p.sub_id == sub_id) {
            p.phase = SubPhase::Joining(group.clone());
            p.deadline = deadline;
        }
        ctx.send(
            group.leader,
            DpsMsg::JoinGroup {
                sub_id,
                label: group.label,
                member: self.id,
            },
        );
    }

    pub(crate) fn handle_join_group(
        &mut self,
        sub_id: SubId,
        label: GroupLabel,
        member: NodeId,
        ctx: &mut Context<'_, DpsMsg>,
    ) {
        let Some(i) = self.membership_index(&label) else {
            return; // stale; the joiner retries
        };
        if self.cfg.comm == CommKind::Leader && !self.memberships[i].is_leader() {
            let leader = self.memberships[i].leader;
            if leader != self.id {
                ctx.send(
                    leader,
                    DpsMsg::JoinGroup {
                        sub_id,
                        label,
                        member,
                    },
                );
            }
            return;
        }
        let epidemic = self.cfg.comm == CommKind::Epidemic;
        let kc = self.cfg.co_leaders;
        let cap = self.cfg.group_view_cap;
        let me = self.id;
        let m = &mut self.memberships[i];
        m.add_member(member);
        if epidemic && m.members.len() > cap {
            let excess = m.members.len() - cap;
            m.members.retain({
                let mut dropped = 0;
                move |n| {
                    if *n == me || *n == member || dropped >= excess {
                        true
                    } else {
                        dropped += 1;
                        false
                    }
                }
            });
        }
        let mut co_leader = false;
        if !epidemic && member != me && m.co_leaders.len() < kc && !m.co_leaders.contains(&member) {
            m.co_leaders.push(member);
            co_leader = true;
        }
        let group = self.descriptor(&self.memberships[i]);
        let m = &self.memberships[i];
        let (members, predview, succviews) = if co_leader || epidemic {
            (
                m.members.clone(),
                m.predview.clone(),
                m.branches.iter().map(Branch::info).collect(),
            )
        } else {
            (m.group_contacts(), Vec::new(), Vec::new())
        };
        ctx.send(
            member,
            DpsMsg::JoinAck {
                sub_id,
                group,
                co_leader,
                members,
                predview,
                succviews,
            },
        );
        if !epidemic {
            // Mirror the join to co-leaders; announce a leadership change to all.
            let info: Vec<(NodeId, DpsMsg)> = if co_leader {
                let m = &self.memberships[i];
                m.members
                    .iter()
                    .filter(|n| **n != me && **n != member)
                    .map(|n| {
                        (
                            *n,
                            DpsMsg::GroupInfo {
                                label: m.label.clone(),
                                leader: me,
                                co_leaders: m.co_leaders.clone(),
                                owner: m.owner,
                                owner_epoch: m.owner_epoch,
                            },
                        )
                    })
                    .collect()
            } else {
                let m = &self.memberships[i];
                m.co_leaders
                    .iter()
                    .filter(|n| **n != member)
                    .map(|n| {
                        (
                            *n,
                            DpsMsg::MemberJoined {
                                label: m.label.clone(),
                                member,
                            },
                        )
                    })
                    .collect()
            };
            for (to, msg) in info {
                ctx.send(to, msg);
            }
        } else {
            // GOSSIP_SUB: spread the view update within the group (§4.2.2).
            self.gossip_members(i, vec![member], ctx);
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_join_ack(
        &mut self,
        sub_id: SubId,
        group: GroupDescriptor,
        co_leader: bool,
        members: Vec<NodeId>,
        predview: Vec<GroupRef>,
        succviews: Vec<BranchInfo>,
        _ctx: &mut Context<'_, DpsMsg>,
    ) {
        if !self.pending_subs.iter().any(|p| p.sub_id == sub_id) {
            return;
        }
        self.pending_subs.retain(|p| p.sub_id != sub_id);
        let cap = self.cfg.view_depth + self.cfg.co_leaders + 2;
        let depth = self.cfg.view_depth;
        if let Some(m) = self.membership_mut(&group.label) {
            m.sub_ids.push(sub_id);
            return;
        }
        let role = if co_leader {
            Role::CoLeader
        } else {
            Role::Member
        };
        let mut m = Membership::new(Some(sub_id), group.label.clone(), role, self.id);
        m.owner = group.owner;
        m.owner_epoch = group.owner_epoch;
        m.leader = group.leader;
        m.co_leaders = group.co_leaders.clone();
        for n in members {
            m.add_member(n);
        }
        m.add_member(self.id);
        m.set_predview(predview, cap);
        for b in succviews {
            m.upsert_branch(b, depth);
        }
        let attr = group.label.attr().clone();
        self.memberships.push(m);
        self.tree_cache.insert(
            attr,
            crate::node::TreeContact {
                contact: self.id,
                owner: Some(group.owner),
                epoch: group.owner_epoch,
            },
        );
    }

    pub(crate) fn handle_create_group(
        &mut self,
        ticket: Ticket,
        parent: GroupDescriptor,
        adopted: Vec<BranchInfo>,
        ctx: &mut Context<'_, DpsMsg>,
    ) {
        let sub_id = ticket.sub_id;
        let label = GroupLabel::Pred(ticket.pred.clone());
        let pending = self.pending_subs.iter().any(|p| p.sub_id == sub_id);
        self.pending_subs.retain(|p| p.sub_id != sub_id);
        let cap = self.cfg.view_depth + self.cfg.co_leaders + 2;
        let depth = self.cfg.view_depth;

        if let Some(m) = self.membership_mut(&label) {
            // Already in (or leading) this group — e.g. duplicate answers from two
            // contact points. Still unblock the parent.
            if pending {
                m.sub_ids.push(sub_id);
            }
        } else {
            let idx = self.new_led_membership(Some(sub_id), label.clone(), parent.owner);
            self.memberships[idx].owner_epoch = parent.owner_epoch;
            let parent_refs: Vec<GroupRef> = parent
                .contacts()
                .map(|n| GroupRef {
                    label: parent.label.clone(),
                    node: n,
                })
                .collect();
            self.memberships[idx].set_predview(parent_refs, cap);
            for b in adopted {
                // Tell each adopted child who its new parent is.
                let to = b
                    .refs
                    .iter()
                    .filter(|r| r.label == b.label)
                    .map(|r| r.node)
                    .collect::<Vec<_>>();
                self.memberships[idx].upsert_branch(b.clone(), depth);
                let parent_desc = self.descriptor(&self.memberships[idx]);
                let chain = self.memberships[idx].predview.clone();
                for n in to {
                    ctx.send(
                        n,
                        DpsMsg::NewParent {
                            child_label: b.label.clone(),
                            parent: parent_desc.clone(),
                            parent_chain: chain.clone(),
                        },
                    );
                }
            }
            let attr = label.attr().clone();
            self.tree_cache.insert(
                attr,
                crate::node::TreeContact {
                    contact: self.id,
                    owner: Some(parent.owner),
                    epoch: parent.owner_epoch,
                },
            );
        }
        // CREATE_GROUP complete: unblock event propagation in the predecessor.
        let child = BranchInfo {
            label: label.clone(),
            refs: vec![GroupRef {
                label,
                node: self.id,
            }],
        };
        ctx.send(
            parent.leader,
            DpsMsg::CreateDone {
                parent_label: parent.label,
                child,
            },
        );
    }

    pub(crate) fn handle_create_done(
        &mut self,
        parent_label: GroupLabel,
        child: BranchInfo,
        ctx: &mut Context<'_, DpsMsg>,
    ) {
        let depth = self.cfg.view_depth;
        let ttl = self.cfg.walk_ttl;
        let Some(i) = self.membership_index(&parent_label) else {
            return;
        };
        // Concurrent creations may have re-parented this child while its ack was
        // in flight (e.g. `a > 3` adopting an `a > 5` created in the same step).
        // Re-check constraint C2 before accepting the branch back.
        if let Some(pred) = child.label.predicate() {
            let deeper: Vec<Predicate> = self.memberships[i]
                .branches
                .iter()
                .filter(|b| b.label != child.label)
                .filter_map(|b| b.label.predicate().cloned())
                .collect();
            if let Some(ci) = dps_content::placement::choose_branch(deeper.iter(), pred) {
                let via = GroupLabel::Pred(deeper[ci].clone());
                // Flush anything we withheld for the child straight to it, then
                // route the branch down to its designated predecessor.
                if let Some(stale) = self.memberships[i].remove_branch(&child.label) {
                    for t in stale.buffered {
                        self.send_to_branch(&child, t, ctx);
                    }
                }
                if let Some(b) = self.memberships[i].branch(&via) {
                    if let Some(n) = b.primary().or_else(|| b.refs.first().map(|r| r.node)) {
                        ctx.send(n, DpsMsg::Reattach { branch: child, ttl });
                    }
                }
                return;
            }
        }
        let m = &mut self.memberships[i];
        let b = m.upsert_branch(child, depth);
        b.blocked = false;
        let buffered = std::mem::take(&mut b.buffered);
        let binfo = b.info();
        for t in buffered {
            self.send_to_branch(&binfo, t, ctx);
        }
    }

    pub(crate) fn handle_new_parent(
        &mut self,
        child_label: GroupLabel,
        parent: GroupDescriptor,
        parent_chain: Vec<GroupRef>,
    ) {
        let cap = self.cfg.view_depth + self.cfg.co_leaders + 2;
        let Some(m) = self.membership_mut(&child_label) else {
            return;
        };
        let mut refs: Vec<GroupRef> = parent
            .contacts()
            .map(|n| GroupRef {
                label: parent.label.clone(),
                node: n,
            })
            .collect();
        for r in parent_chain {
            if !refs.contains(&r) && r.label != child_label {
                refs.push(r);
            }
        }
        m.set_predview(refs, cap);
        m.owner = parent.owner;
        m.owner_epoch = parent.owner_epoch;
    }

    // ---- epidemic membership gossip ----

    /// Gossips newly learned members within the group (`GOSSIP_SUB`).
    pub(crate) fn gossip_members(
        &mut self,
        i: usize,
        new_members: Vec<NodeId>,
        ctx: &mut Context<'_, DpsMsg>,
    ) {
        let fanout = self.cfg.sub_gossip_fanout;
        let label = self.memberships[i].label.clone();
        let me = self.id;
        let targets: Vec<NodeId> = self.memberships[i]
            .members
            .iter()
            .copied()
            .filter(|n| *n != me && !new_members.contains(n))
            .choose_multiple(ctx.rng(), fanout);
        for to in targets {
            ctx.send(
                to,
                DpsMsg::GossipSub {
                    label: label.clone(),
                    members: new_members.clone(),
                    branches: Vec::new(),
                    hops: 0,
                },
            );
        }
    }

    /// Gossips our branch set within the group (epidemic branch agreement).
    pub(crate) fn gossip_branches(&mut self, i: usize, ctx: &mut Context<'_, DpsMsg>) {
        let fanout = self.cfg.sub_gossip_fanout;
        let label = self.memberships[i].label.clone();
        let branches: Vec<BranchInfo> = self.memberships[i]
            .branches
            .iter()
            .map(Branch::info)
            .collect();
        let me = self.id;
        let targets: Vec<NodeId> = self.memberships[i]
            .members
            .iter()
            .copied()
            .filter(|n| *n != me)
            .choose_multiple(ctx.rng(), fanout);
        for to in targets {
            ctx.send(
                to,
                DpsMsg::GossipSub {
                    label: label.clone(),
                    members: Vec::new(),
                    branches: branches.clone(),
                    hops: 0,
                },
            );
        }
    }

    pub(crate) fn handle_gossip_sub(
        &mut self,
        label: GroupLabel,
        members: Vec<NodeId>,
        branches: Vec<BranchInfo>,
        hops: u32,
        ctx: &mut Context<'_, DpsMsg>,
    ) {
        let cap = self.cfg.group_view_cap;
        let depth = self.cfg.view_depth;
        let me = self.id;
        let Some(i) = self.membership_index(&label) else {
            return;
        };
        let mut newly = Vec::new();
        {
            let m = &mut self.memberships[i];
            for n in &members {
                if *n != me && !m.members.contains(n) {
                    m.members.push(*n);
                    newly.push(*n);
                }
            }
            m.evict_members_to_cap(cap, me, ctx.rng());
            for b in branches {
                m.upsert_branch(b, depth);
            }
        }
        if newly.is_empty() {
            return;
        }
        // Forward with the decaying probability p0 / (1 + hops).
        let p = self.cfg.gossip_p0 / (1 + hops) as f64;
        if ctx.rng().random::<f64>() >= p {
            return;
        }
        let fanout = self.cfg.sub_gossip_fanout;
        let targets: Vec<NodeId> = self.memberships[i]
            .members
            .iter()
            .copied()
            .filter(|n| *n != me && !newly.contains(n))
            .choose_multiple(ctx.rng(), fanout);
        for to in targets {
            ctx.send(
                to,
                DpsMsg::GossipSub {
                    label: label.clone(),
                    members: newly.clone(),
                    branches: Vec::new(),
                    hops: hops + 1,
                },
            );
        }
    }
}
