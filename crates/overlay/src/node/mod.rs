//! The DPS protocol node: a message-driven state machine implementing
//! [`dps_sim::Process`].
//!
//! One [`DpsNode`] plays every role of the paper at once, as real deployments do:
//! it is a subscriber (holding filters and group memberships), a publisher, a
//! relay, possibly a group leader or co-leader, and possibly the owner of one or
//! more attribute trees. Behavior is selected by [`DpsConfig`]: traversal
//! root/generic × communication leader/epidemic.
//!
//! The implementation is split by concern:
//!
//! * [`bootstrap`](self) — random peer sampling, tree discovery walks, owner
//!   announcements, tree creation and duplicate-tree dissolution;
//! * subscription — the `FIND_GROUP` / `SUBSCRIBE_TO` / `CREATE_GROUP` traversal
//!   of §4.1 with pending-request retries;
//! * publication — inter-group routing (downstream pruning, generic up+down) and
//!   intra-group flooding/gossip of §4.2;
//! * healing — heartbeat probing, co-leader promotion, view exchange,
//!   reattachment and the epidemic merge process of §4.3.

mod bootstrap;
mod heal;
mod publish;
mod subscribe;

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use dps_content::{
    match_mode, AttrName, Event, Filter, FilterIndex, MatchMode, MatchScratch, SharedEvent,
};
use dps_sim::{Context, NodeId, Process, Step};

use crate::config::DpsConfig;
use crate::label::GroupLabel;
use crate::msg::{DpsMsg, GroupDescriptor, GroupRef, PubId, SubId};
use crate::seen::SeenCache;
use crate::sink::{NoopSink, StatsSink};
use crate::views::{Membership, Role};

pub use crate::views::{Branch, Membership as GroupMembership, Role as GroupRole};

/// Hard cap on the recent-publication re-flush buffer (the `repub_window` age
/// limit is the primary bound; this caps pathological publish rates).
pub(crate) const RECENT_PUBS_CAP: usize = 32;

/// Whether owner claim `a` beats claim `b`: higher epoch wins; on equal epochs
/// the smaller node id wins (deterministic, symmetric tiebreak).
pub(crate) fn claim_beats(a: (NodeId, u64), b: (NodeId, u64)) -> bool {
    a.1 > b.1 || (a.1 == b.1 && a.0 < b.0)
}

/// Where a pending subscription currently stands.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum SubPhase {
    /// Looking for a contact point in the attribute tree.
    FindingTree,
    /// `FIND_GROUP` traversal in flight.
    Traversing,
    /// `JoinGroup` sent, waiting for the ack.
    Joining(GroupDescriptor),
}

/// A subscription the node is still working to place.
#[derive(Debug, Clone)]
pub(crate) struct PendingSub {
    pub sub_id: SubId,
    pub pred: dps_content::Predicate,
    pub phase: SubPhase,
    pub deadline: Step,
    pub retries: u32,
}

/// A publication waiting for tree discovery on some attributes.
#[derive(Debug, Clone)]
pub(crate) struct PendingPub {
    pub id: PubId,
    pub event: SharedEvent,
    pub attrs: Vec<AttrName>,
    pub deadline: Step,
    pub retries: u32,
}

/// An outstanding random walk looking for an attribute tree.
#[derive(Debug, Clone)]
pub(crate) struct PendingWalk {
    pub attr: AttrName,
    pub deadline: Step,
}

/// A publication this node is actively gossiping within one group (epidemic
/// mode): one fan-out round per step with probability `p0 / (1 + rounds)`,
/// retired after `gossip_rounds` rounds (§4.2.2's decaying forward).
#[derive(Debug, Clone)]
pub(crate) struct ActiveGossip {
    pub label: GroupLabel,
    pub id: PubId,
    pub event: SharedEvent,
    /// Rounds already run (round 0 fires on receipt).
    pub rounds: u32,
}

/// Heartbeat state for one monitored neighbor (§4.3: "nodes in the predview and
/// succview structure are periodically monitored for failures").
#[derive(Debug, Clone)]
pub(crate) struct Probe {
    /// Probing period, drawn uniformly from `[heartbeat_min, heartbeat_max]`.
    pub every: Step,
    /// Next step at which to send a ping.
    pub next_at: Step,
    /// Outstanding ping: (nonce, sent_at).
    pub outstanding: Option<(u64, Step)>,
    /// Consecutive unanswered pings (a pong resets it); the neighbor is
    /// declared dead only past `probe_retries`.
    pub misses: u32,
}

/// Cached contact information for an attribute tree.
#[derive(Debug, Clone)]
pub(crate) struct TreeContact {
    pub contact: NodeId,
    pub owner: Option<NodeId>,
    /// Epoch of the cached owner claim.
    pub epoch: u64,
}

/// A DPS protocol node. See the [module docs](self).
pub struct DpsNode {
    pub(crate) id: NodeId,
    /// Shared, immutable protocol configuration. Behind an `Arc` so a
    /// network's nodes all point at one allocation instead of each carrying
    /// a ~200-byte copy — at metro scale (100k+ nodes) the per-node copy is
    /// pure waste, and no code path ever mutates a node's config.
    pub(crate) cfg: Arc<DpsConfig>,
    pub(crate) sink: Arc<dyn StatsSink>,

    // Bootstrap substrate.
    pub(crate) peers: Vec<NodeId>,
    pub(crate) tree_cache: HashMap<AttrName, TreeContact>,

    // Application state.
    pub(crate) next_sub: u32,
    pub(crate) next_pub: u32,
    /// Active subscriptions, held in a [`FilterIndex`] so publication
    /// delivery is a counting-algorithm query instead of a linear scan
    /// (`DPS_MATCH=scan` restores the scan via [`FilterIndex::entries`]).
    pub(crate) subs: FilterIndex<SubId>,
    /// Reusable scratch for `subs` queries (allocation-free steady state).
    pub(crate) sub_scratch: MatchScratch,
    pub(crate) memberships: Vec<Membership>,
    pub(crate) pending_subs: Vec<PendingSub>,
    pub(crate) pending_pubs: Vec<PendingPub>,
    pub(crate) walks: Vec<PendingWalk>,

    // Publication bookkeeping.
    /// Per-(publication, group) route dedup. Keyed by an interned label id
    /// (see [`label_id`](Self::label_id)), not the label itself: labels carry
    /// heap predicates, and this cache is consulted on every forwarded
    /// publication — cloning a `GroupLabel` per check was measurable churn.
    pub(crate) seen_route: SeenCache<(PubId, u32)>,
    /// Intern table backing `seen_route`: each distinct group label this node
    /// has routed for maps to a small dense id. Bounded by the node's group
    /// vocabulary (memberships + adjacent groups), not by traffic.
    pub(crate) label_ids: HashMap<GroupLabel, u32>,
    pub(crate) seen_node: SeenCache<PubId>,
    pub(crate) active_gossip: Vec<ActiveGossip>,
    /// Recently handled matching publications `(id, event, heard_at)`, kept
    /// for [`repub_window`](crate::DpsConfig::repub_window) steps to re-flush
    /// into branches repaired after a failure (see `flush_recent_to_branch`).
    pub(crate) recent_pubs: VecDeque<(PubId, SharedEvent, Step)>,
    pub(crate) pubs_received: u64,
    pub(crate) pubs_notified: u64,

    // Failure detection. A BTreeMap, not a HashMap: `tick_probes` iterates it
    // and the resulting ping/death order feeds the shared RNG, so iteration
    // must not depend on hasher seeds (which differ per thread).
    pub(crate) probes: BTreeMap<NodeId, Probe>,
    pub(crate) nonce_counter: u64,
    /// Recently declared-dead nodes (bounded memory), used to rank co-leaders
    /// during takeover and to avoid re-adding dead nodes from stale gossip.
    pub(crate) suspected: SeenCache<NodeId>,
    /// Step of the last suspicion-verification ping per suspect (throttle for
    /// `verify_suspect`; pruned by age, bounded).
    pub(crate) verify_at: HashMap<NodeId, Step>,
}

impl std::fmt::Debug for DpsNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DpsNode")
            .field("id", &self.id)
            .field("subs", &self.subs.len())
            .field("memberships", &self.memberships.len())
            .field("peers", &self.peers.len())
            .finish_non_exhaustive()
    }
}

impl DpsNode {
    /// Creates a node with the given configuration and no instrumentation.
    pub fn new(cfg: DpsConfig) -> Self {
        DpsNode::with_sink(cfg, Arc::new(NoopSink))
    }

    /// Creates a node reporting delivery milestones to `sink`.
    pub fn with_sink(cfg: DpsConfig, sink: Arc<dyn StatsSink>) -> Self {
        DpsNode::with_shared_config(Arc::new(cfg), sink)
    }

    /// Creates a node sharing an existing configuration allocation — the
    /// bulk-construction path: the `dps` facade hands every node the same
    /// `Arc`, so a 100k-node network stores one config, not 100k copies.
    pub fn with_shared_config(cfg: Arc<DpsConfig>, sink: Arc<dyn StatsSink>) -> Self {
        let seen_cap = cfg.seen_cap;
        DpsNode {
            id: NodeId::from_index(0), // fixed up in on_start
            cfg,
            sink,
            peers: Vec::new(),
            tree_cache: HashMap::new(),
            next_sub: 0,
            next_pub: 0,
            subs: FilterIndex::new(),
            sub_scratch: MatchScratch::new(),
            memberships: Vec::new(),
            pending_subs: Vec::new(),
            pending_pubs: Vec::new(),
            walks: Vec::new(),
            seen_route: SeenCache::new(seen_cap * 4),
            label_ids: HashMap::new(),
            seen_node: SeenCache::new(seen_cap),
            active_gossip: Vec::new(),
            recent_pubs: VecDeque::new(),
            pubs_received: 0,
            pubs_notified: 0,
            probes: BTreeMap::new(),
            nonce_counter: 0,
            suspected: SeenCache::new(128),
            verify_at: HashMap::new(),
        }
    }

    /// Seeds the random peer sample (the simulator's stand-in for an out-of-band
    /// bootstrap service; every peer-to-peer system needs one).
    pub fn seed_peers(&mut self, peers: Vec<NodeId>) {
        for p in peers {
            if !self.peers.contains(&p) {
                self.peers.push(p);
            }
        }
        let cap = self.cfg.peer_view;
        if self.peers.len() > cap {
            self.peers.truncate(cap);
        }
    }

    // ---- inspection API (used by the facade, the oracle and tests) ----

    /// This node's id (valid after `on_start`).
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The configuration in force.
    pub fn config(&self) -> &DpsConfig {
        &self.cfg
    }

    /// Active subscriptions, in subscription-id order.
    pub fn subscriptions(&self) -> impl Iterator<Item = (SubId, &Filter)> + '_ {
        self.subs.entries()
    }

    /// Number of active subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subs.len()
    }

    /// Current group memberships.
    pub fn memberships(&self) -> &[Membership] {
        &self.memberships
    }

    /// Attributes whose tree this node owns (it maintains the root vertex).
    pub fn owned_attrs(&self) -> Vec<AttrName> {
        self.memberships
            .iter()
            .filter(|m| m.label.is_root() && m.is_leader())
            .map(|m| m.label.attr().clone())
            .collect()
    }

    /// Number of subscriptions not yet placed in a group.
    pub fn pending_subscriptions(&self) -> usize {
        self.pending_subs.len()
    }

    /// Debug view of the pending subscriptions: `(phase, retries, deadline)`.
    #[doc(hidden)]
    pub fn pending_subscription_states(&self) -> Vec<(&'static str, u32, Step)> {
        self.pending_subs
            .iter()
            .map(|p| {
                let phase = match p.phase {
                    SubPhase::FindingTree => "finding-tree",
                    SubPhase::Traversing => "traversing",
                    SubPhase::Joining(_) => "joining",
                };
                (phase, p.retries, p.deadline)
            })
            .collect()
    }

    /// Publications received (any group, counted once per publication).
    pub fn publications_received(&self) -> u64 {
        self.pubs_received
    }

    /// Publications received that matched one of this node's filters.
    pub fn publications_notified(&self) -> u64 {
        self.pubs_notified
    }

    // ---- shared internals ----

    pub(crate) fn membership(&self, label: &GroupLabel) -> Option<&Membership> {
        self.memberships.iter().find(|m| &m.label == label)
    }

    pub(crate) fn membership_mut(&mut self, label: &GroupLabel) -> Option<&mut Membership> {
        self.memberships.iter_mut().find(|m| &m.label == label)
    }

    pub(crate) fn membership_index(&self, label: &GroupLabel) -> Option<usize> {
        self.memberships.iter().position(|m| &m.label == label)
    }

    /// Memberships within the tree of `attr`.
    pub(crate) fn memberships_in(&self, attr: &AttrName) -> Vec<usize> {
        (0..self.memberships.len())
            .filter(|&i| self.memberships[i].label.attr() == attr)
            .collect()
    }

    /// The descriptor advertising a group we belong to.
    ///
    /// Epidemic groups have no maintained leadership: the `leader` field of a
    /// membership is only the contact that was current when we joined, and
    /// nothing ever updates it when that node dies (there is no takeover
    /// protocol in epidemic mode). Advertising it would hand joiners and
    /// publishers a possibly-dead contact forever — the failure that left
    /// subscribers permanently unplaced under churn. Since *any* epidemic
    /// member can serve joins and entries, we advertise ourselves, with a few
    /// live-believed members as backup contacts.
    pub(crate) fn descriptor(&self, m: &Membership) -> GroupDescriptor {
        let epidemic = self.cfg.comm == crate::config::CommKind::Epidemic;
        let leader = if m.is_leader() || epidemic {
            self.id
        } else {
            m.leader
        };
        let co_leaders = if epidemic {
            m.members
                .iter()
                .copied()
                .filter(|n| *n != self.id && !self.suspected.contains(n))
                .take(2)
                .collect()
        } else {
            m.co_leaders.clone()
        };
        GroupDescriptor {
            label: m.label.clone(),
            leader,
            co_leaders,
            owner: m.owner,
            owner_epoch: m.owner_epoch,
        }
    }

    /// Group refs advertising this node (and co-leaders) as contacts of group `m`.
    /// Epidemic mode leads with ourselves — the `leader` field is an unmaintained
    /// hint there (see [`descriptor`](Self::descriptor)) and must not become the
    /// primary contact neighbors route through.
    pub(crate) fn own_refs(&self, m: &Membership) -> Vec<GroupRef> {
        let gref = |node: NodeId| GroupRef {
            label: m.label.clone(),
            node,
        };
        let mut v = if self.cfg.comm == crate::config::CommKind::Epidemic {
            let mut v = vec![gref(self.id)];
            v.extend(
                m.members
                    .iter()
                    .copied()
                    .filter(|n| *n != self.id && !self.suspected.contains(n))
                    .take(2)
                    .map(gref),
            );
            v
        } else {
            vec![gref(if m.is_leader() { self.id } else { m.leader })]
        };
        for c in &m.co_leaders {
            v.push(gref(*c));
        }
        if !v.iter().any(|r| r.node == self.id) {
            v.push(gref(self.id));
        }
        v
    }

    /// The owner of the tree of `attr`, as far as this node knows: the claim with
    /// the highest epoch wins (ties broken toward the smaller node id).
    pub(crate) fn known_owner(&self, attr: &AttrName) -> Option<NodeId> {
        self.known_owner_claim(attr).map(|(o, _)| o)
    }

    /// The best `(owner, epoch)` claim this node holds for the tree of `attr`.
    pub(crate) fn known_owner_claim(&self, attr: &AttrName) -> Option<(NodeId, u64)> {
        let mut best: Option<(NodeId, u64)> = None;
        for i in self.memberships_in(attr) {
            let m = &self.memberships[i];
            let claim = (m.owner, m.owner_epoch);
            best = Some(match best {
                Some(b) if !claim_beats(claim, b) => b,
                _ => claim,
            });
        }
        if let Some(c) = self.tree_cache.get(attr) {
            if let Some(o) = c.owner {
                let claim = (o, c.epoch);
                best = Some(match best {
                    Some(b) if !claim_beats(claim, b) => b,
                    _ => claim,
                });
            }
        }
        best
    }

    /// Records local receipt of a publication at step `now`: instrumentation
    /// plus the `Notify` upcall when one of our filters matches (§2). Returns
    /// `true` on first receipt.
    pub(crate) fn deliver_local(&mut self, id: PubId, event: &Event, now: Step) -> bool {
        if !self.seen_node.insert(id) {
            return false;
        }
        self.pubs_received += 1;
        self.sink.on_contact(id, self.id, now);
        let matched = match match_mode() {
            MatchMode::Scan => self.subs.entries().any(|(_, f)| f.matches(event)),
            MatchMode::Index => self.subs.any_match(event, &mut self.sub_scratch),
        };
        if matched {
            self.pubs_notified += 1;
            self.sink.on_notify(id, self.id, now);
            self.sink.on_deliver(id, self.id, event, now);
        }
        true
    }

    pub(crate) fn fresh_nonce(&mut self) -> u64 {
        self.nonce_counter += 1;
        self.nonce_counter
    }

    /// The interned id of `label` for [`seen_route`](Self::seen_route) keys,
    /// assigned on first sight. The id is node-local and never leaves this
    /// node, so assignment order (deterministic: driven by the node's own
    /// message-processing order) is free to differ between nodes.
    pub(crate) fn label_id(&mut self, label: &GroupLabel) -> u32 {
        if let Some(&id) = self.label_ids.get(label) {
            return id;
        }
        let id = self.label_ids.len() as u32;
        self.label_ids.insert(label.clone(), id);
        id
    }

    /// Digest of the recently processed publications (for the anti-entropy
    /// exchange riding `ViewPush`: receivers answer only with events missing
    /// from the sender's digest).
    pub(crate) fn recent_digest(&self) -> Vec<PubId> {
        self.recent_pubs.iter().map(|(id, _, _)| *id).collect()
    }

    /// Remembers a publication this node processed, for post-repair
    /// re-flushes. Bounded: entries older than `repub_window` retire, and the
    /// buffer never exceeds [`RECENT_PUBS_CAP`].
    pub(crate) fn remember_pub(&mut self, id: PubId, event: &SharedEvent, now: Step) {
        let window = self.cfg.repub_window;
        while let Some((_, _, at)) = self.recent_pubs.front() {
            if now.saturating_sub(*at) > window {
                self.recent_pubs.pop_front();
            } else {
                break;
            }
        }
        if self.recent_pubs.iter().any(|(i, _, _)| *i == id) {
            return;
        }
        if self.recent_pubs.len() >= RECENT_PUBS_CAP {
            self.recent_pubs.pop_front();
        }
        self.recent_pubs.push_back((id, event.clone(), now));
    }

    /// Creates a brand-new group membership led by us.
    pub(crate) fn new_led_membership(
        &mut self,
        sub_id: Option<SubId>,
        label: GroupLabel,
        owner: NodeId,
    ) -> usize {
        let mut m = Membership::new(sub_id, label, Role::Leader, self.id);
        m.owner = owner;
        m.leader = self.id;
        m.members = vec![self.id];
        self.memberships.push(m);
        self.memberships.len() - 1
    }
}

impl Process for DpsNode {
    type Msg = DpsMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, DpsMsg>) {
        self.id = ctx.me();
    }

    fn on_message(&mut self, from: NodeId, msg: DpsMsg, ctx: &mut Context<'_, DpsMsg>) {
        // Hearing from a node proves it alive: retract any suspicion (suspicions
        // also arise heuristically, e.g. contacts that never acked a publication)
        // and settle any outstanding probe — crashed nodes cannot send, so this
        // never masks a real failure, and under link loss it stops chatty
        // neighbors from being condemned over one missing pong.
        let revived = self.suspected.remove(&from);
        if let Some(p) = self.probes.get_mut(&from) {
            p.outstanding = None;
            p.misses = 0;
        }
        // A suspect proving alive usually means a partition healed (crashed
        // nodes never speak again): owners immediately re-walk their trees
        // for duplicates instead of waiting out the owner-walk period — this
        // is what lets two healed sides start merging within a shuffle
        // period of the cut lifting. Throttled through `rewalk_once`: after
        // a big heal, dozens of suspects revive within a few steps, and each
        // must not stack another walk (nor keep resetting the pending walk's
        // deadline).
        if revived {
            for attr in self.owned_attrs() {
                self.rewalk_once(&attr, ctx);
            }
        }
        match msg {
            // Bootstrap.
            DpsMsg::Shuffle { peers } => self.handle_shuffle(from, peers, ctx),
            DpsMsg::ShuffleReply { peers } => self.merge_peers(&peers),
            DpsMsg::FindTree { attr, origin, ttl } => self.handle_find_tree(attr, origin, ttl, ctx),
            DpsMsg::TreeFound {
                attr,
                contact,
                owner,
                epoch,
            } => self.handle_tree_found(attr, contact, owner, epoch, ctx),
            DpsMsg::TreeNotFound { attr } => self.handle_tree_not_found(attr, ctx),
            DpsMsg::OwnerAnnounce { attr, owner, epoch } => {
                self.handle_owner_announce(attr, owner, epoch, ctx)
            }
            DpsMsg::DissolveTree {
                attr,
                contact,
                new_owner,
                epoch,
            } => self.handle_dissolve(attr, contact, new_owner, epoch, ctx),

            // Subscription.
            DpsMsg::FindGroup(t) => self.handle_find_group(t, ctx),
            DpsMsg::SubscribeTo { ticket, group } => self.handle_subscribe_to(ticket, group, ctx),
            DpsMsg::CreateGroup {
                ticket,
                parent,
                adopted,
            } => self.handle_create_group(ticket, parent, adopted, ctx),
            DpsMsg::JoinGroup {
                sub_id,
                label,
                member,
            } => self.handle_join_group(sub_id, label, member, ctx),
            DpsMsg::JoinAck {
                sub_id,
                group,
                co_leader,
                members,
                predview,
                succviews,
            } => self.handle_join_ack(sub_id, group, co_leader, members, predview, succviews, ctx),
            DpsMsg::CreateDone {
                parent_label,
                child,
            } => self.handle_create_done(parent_label, child, ctx),
            DpsMsg::NewParent {
                child_label,
                parent,
                parent_chain,
            } => self.handle_new_parent(child_label, parent, parent_chain),
            DpsMsg::GossipSub {
                label,
                members,
                branches,
                hops,
            } => self.handle_gossip_sub(label, members, branches, hops, ctx),

            // Publication.
            DpsMsg::Publish(t) => self.handle_publish(t, ctx),
            DpsMsg::PubAck { id, attr } => self.handle_pub_ack(id, attr),
            DpsMsg::PublishGroup { id, event, label } => {
                self.handle_publish_group(from, id, event, label, ctx)
            }

            // Management & healing.
            DpsMsg::Ping { nonce } => ctx.send(from, DpsMsg::Pong { nonce }),
            DpsMsg::Pong { nonce } => self.handle_pong(from, nonce),
            DpsMsg::GroupInfo {
                label,
                leader,
                co_leaders,
                owner,
                owner_epoch,
            } => self.handle_group_info(label, leader, co_leaders, owner, owner_epoch, ctx),
            DpsMsg::MemberJoined { label, member } => {
                if let Some(m) = self.membership_mut(&label) {
                    m.add_member(member);
                }
            }
            DpsMsg::MemberLeft { label, member } => {
                if let Some(m) = self.membership_mut(&label) {
                    m.forget_node(member);
                }
            }
            DpsMsg::LeaderGone { label, dead } => self.handle_leader_gone(label, dead, ctx),
            DpsMsg::ParentChain { child_label, chain } => {
                let cap = self.cfg.view_depth + self.cfg.co_leaders;
                if let Some(m) = self.membership_mut(&child_label) {
                    m.set_predview(chain, cap + 2);
                }
            }
            DpsMsg::ChildReport {
                parent_label,
                branch,
            } => self.handle_child_report(parent_label, branch, ctx),
            DpsMsg::Reattach { branch, ttl } => self.handle_reattach(branch, ttl, ctx),
            DpsMsg::Leave { label, member } => self.handle_leave(label, member, ctx),
            DpsMsg::ViewPull { label } => self.handle_view_pull(from, label, ctx),
            DpsMsg::ViewPush {
                label,
                members,
                predview,
                branches,
                recent,
            } => self.handle_view_push(from, label, members, predview, branches, recent, ctx),
        }
    }

    fn on_tick(&mut self, ctx: &mut Context<'_, DpsMsg>) {
        self.tick_probes(ctx);
        self.tick_pending(ctx);
        self.tick_gossip(ctx);
        self.tick_periodic(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn label(s: &str) -> GroupLabel {
        GroupLabel::from(s.parse::<dps_content::Predicate>().unwrap())
    }

    /// Route dedup is keyed by `(PubId, interned label id)`: interning is
    /// stable (same label → same id), dense from zero, and never allocates
    /// past first sight — so the per-hop dedup check clones no `Label`.
    #[test]
    fn route_dedup_uses_interned_label_ids() {
        let mut node = DpsNode::new(DpsConfig::default());
        let a = label("a > 2");
        let b = label("b = 1");
        let root = GroupLabel::Root("a".into());

        // Dense, first-sight assignment; repeat lookups are stable.
        assert_eq!(node.label_id(&a), 0);
        assert_eq!(node.label_id(&b), 1);
        assert_eq!(node.label_id(&a), 0);
        assert_eq!(node.label_id(&root), 2);
        assert_eq!(node.label_ids.len(), 3);

        // The dedup cache distinguishes routes by (publication, label id):
        // a second arrival of the same publication on the same group is a
        // duplicate, while the same publication on a sibling group is not.
        let id = PubId(NodeId::from_index(7), 0);
        let lid_a = node.label_id(&a);
        let lid_b = node.label_id(&b);
        assert!(node.seen_route.insert((id, lid_a)));
        assert!(!node.seen_route.insert((id, lid_a)));
        assert!(node.seen_route.insert((id, lid_b)));

        // A structurally equal label parsed afresh interns to the same id —
        // the property that makes the u32 a faithful stand-in for the label.
        assert_eq!(node.label_id(&label("a > 2")), lid_a);
    }
}
