//! Self-healing (§4.3): heartbeat failure detection over the view pointers,
//! co-leader promotion, whole-group failure recovery through multi-level views,
//! reattachment of orphaned branches, and the periodic view-exchange / merge
//! processes that keep the overlay consistent under churn.

use std::collections::BTreeSet;

use dps_content::SharedEvent;
use dps_sim::{Context, NodeId};
use rand::seq::IteratorRandom;
use rand::Rng;

use crate::config::CommKind;
use crate::label::GroupLabel;
use crate::msg::{BranchInfo, DpsMsg, GroupRef, PubId};
use crate::node::{claim_beats, DpsNode, Probe};
use crate::views::{Branch, Role};

impl DpsNode {
    // ---- heartbeat probing ----

    /// The neighbors this node monitors: "nodes in the predview and succview
    /// structure are periodically monitored for failures" (§4.3), plus the group
    /// leadership a member depends on.
    pub(crate) fn monitor_targets(&self) -> BTreeSet<NodeId> {
        let mut set = BTreeSet::new();
        for m in &self.memberships {
            match self.cfg.comm {
                CommKind::Leader => {
                    if m.is_leader() {
                        set.extend(m.co_leaders.iter().copied());
                        for b in &m.branches {
                            set.extend(b.primary());
                        }
                        set.extend(m.predview.first().map(|r| r.node));
                    } else {
                        set.insert(m.leader);
                        set.extend(m.co_leaders.iter().copied());
                    }
                }
                CommKind::Epidemic => {
                    set.extend(m.members.iter().take(3).copied());
                    set.extend(m.predview.iter().take(2).map(|r| r.node));
                    for b in &m.branches {
                        set.extend(b.refs.first().map(|r| r.node));
                    }
                }
            }
        }
        set.remove(&self.id);
        set
    }

    /// Drives the heartbeat machinery: schedule pings (per-edge period drawn
    /// uniformly from `[heartbeat_min, heartbeat_max]`, §5.2), time out missing
    /// pongs and trigger healing.
    pub(crate) fn tick_probes(&mut self, ctx: &mut Context<'_, DpsMsg>) {
        let now = ctx.now();
        let targets = self.monitor_targets();
        self.probes.retain(|k, _| targets.contains(k));
        for t in &targets {
            if !self.probes.contains_key(t) {
                let every = ctx
                    .rng()
                    .random_range(self.cfg.heartbeat_min..=self.cfg.heartbeat_max);
                let phase = ctx.rng().random_range(0..every);
                self.probes.insert(
                    *t,
                    Probe {
                        every,
                        next_at: now + phase,
                        outstanding: None,
                        misses: 0,
                    },
                );
            }
        }
        let timeout = self.cfg.probe_timeout;
        let retries = self.cfg.probe_retries;
        let mut dead: Vec<NodeId> = Vec::new();
        let mut pings: Vec<(NodeId, u64)> = Vec::new();
        for (t, p) in self.probes.iter_mut() {
            match p.outstanding {
                Some((_, sent)) if now.saturating_sub(sent) > timeout => {
                    if p.misses >= retries {
                        dead.push(*t);
                    } else {
                        // Re-probe before condemning: a single lost pong must
                        // not look like a crash (nonce assigned below).
                        p.misses += 1;
                        pings.push((*t, 0));
                        p.outstanding = Some((0, now));
                    }
                }
                Some(_) => {}
                None if p.next_at <= now => {
                    pings.push((*t, 0)); // nonce assigned below (needs &mut self)
                    p.next_at = now + p.every;
                    p.outstanding = Some((0, now));
                }
                None => {}
            }
        }
        for (t, _) in &pings {
            let nonce = self.fresh_nonce();
            if let Some(p) = self.probes.get_mut(t) {
                if let Some((_, sent)) = p.outstanding {
                    p.outstanding = Some((nonce, sent));
                }
            }
            ctx.send(*t, DpsMsg::Ping { nonce });
        }
        for d in dead {
            self.probes.remove(&d);
            self.on_dead(d, ctx);
        }
    }

    pub(crate) fn handle_pong(&mut self, from: NodeId, nonce: u64) {
        if let Some(p) = self.probes.get_mut(&from) {
            if matches!(p.outstanding, Some((n, _)) if n == nonce) {
                p.outstanding = None;
            }
            p.misses = 0; // any pong proves liveness, even a late one
        }
    }

    // ---- failure reactions ----

    /// A monitored neighbor was declared dead: scrub it everywhere and run the
    /// role-specific healing of §4.3.
    pub(crate) fn on_dead(&mut self, dead: NodeId, ctx: &mut Context<'_, DpsMsg>) {
        self.suspected.insert(dead);
        self.peers.retain(|p| *p != dead);
        self.tree_cache.retain(|_, c| {
            if c.owner == Some(dead) {
                c.owner = None;
            }
            c.contact != dead
        });

        for i in 0..self.memberships.len() {
            let label = self.memberships[i].label.clone();
            let was_leader_dead = self.memberships[i].leader == dead;
            let was_my_lead = self.memberships[i].is_leader();

            // Scrub the views first.
            self.memberships[i].forget_node(dead);

            match self.cfg.comm {
                CommKind::Leader => {
                    if was_leader_dead && !was_my_lead {
                        self.leader_takeover(i, dead, ctx);
                    }
                    if was_my_lead {
                        self.leader_heal_after(i, dead, ctx);
                    }
                }
                CommKind::Epidemic => {
                    // The leader field is only a contact hint in epidemic mode
                    // and nothing maintains it: point it at ourselves so stale
                    // descriptors cannot keep advertising the dead node.
                    if was_leader_dead {
                        self.memberships[i].leader = self.id;
                    }
                    // Pull a fresh view from a surviving member (§4.3: the failed
                    // node "is immediately replaced by pulling a view update from
                    // the other alive nodes"), and bridge branches whose whole
                    // group died using the deeper succview entries.
                    let me = self.id;
                    let target = self.memberships[i]
                        .members
                        .iter()
                        .copied()
                        .filter(|n| *n != me)
                        .choose(ctx.rng());
                    if let Some(n) = target {
                        ctx.send(
                            n,
                            DpsMsg::ViewPull {
                                label: label.clone(),
                            },
                        );
                    }
                    self.bridge_dead_branches(i, dead, ctx);
                }
            }

            // Orphaned (no predecessor left)? Reattach or take the root over.
            if self.memberships[i].predview.is_empty() && !self.memberships[i].label.is_root() {
                self.reattach_or_promote(i, ctx);
            }
        }
    }

    /// A member or co-leader noticed the leader die. Co-leaders rank themselves:
    /// the first co-leader not known to be dead promotes itself (§4.3: "one
    /// co-leader, for example, the one with the lowest identifier, becomes the
    /// new leader"). Plain members alert the co-leaders.
    fn leader_takeover(&mut self, i: usize, dead: NodeId, ctx: &mut Context<'_, DpsMsg>) {
        let label = self.memberships[i].label.clone();
        match self.memberships[i].role {
            Role::CoLeader => {
                let first_alive = self.memberships[i]
                    .co_leaders
                    .iter()
                    .copied()
                    .find(|c| !self.suspected.contains(c));
                let me = self.id;
                if first_alive == Some(me) || self.memberships[i].co_leaders.is_empty() {
                    self.promote_to_leader(i, ctx);
                } else if let Some(c) = first_alive {
                    ctx.send(c, DpsMsg::LeaderGone { label, dead });
                }
            }
            Role::Member => {
                let cos = self.memberships[i].co_leaders.clone();
                for c in cos {
                    ctx.send(
                        c,
                        DpsMsg::LeaderGone {
                            label: label.clone(),
                            dead,
                        },
                    );
                }
            }
            Role::Leader => {}
        }
    }

    /// Become the leader of membership `i`: recruit co-leaders back to `Kc`, then
    /// announce the new leadership to members, parent and children (§4.3).
    pub(crate) fn promote_to_leader(&mut self, i: usize, ctx: &mut Context<'_, DpsMsg>) {
        let me = self.id;
        {
            let m = &mut self.memberships[i];
            m.role = Role::Leader;
            m.leader = me;
            m.co_leaders.retain(|c| *c != me);
            m.add_member(me);
        }
        self.recruit_co_leaders(i);
        let m = &self.memberships[i];
        let info = DpsMsg::GroupInfo {
            label: m.label.clone(),
            leader: me,
            co_leaders: m.co_leaders.clone(),
            owner: m.owner,
            owner_epoch: m.owner_epoch,
        };
        let audience: Vec<NodeId> = m
            .members
            .iter()
            .copied()
            .chain(m.predview.iter().map(|r| r.node))
            .chain(m.branches.iter().filter_map(|b| b.primary()))
            .filter(|n| *n != me)
            .collect();
        for n in audience {
            ctx.send(n, info.clone());
        }
    }

    /// Top up the co-leader list from ordinary members.
    fn recruit_co_leaders(&mut self, i: usize) {
        let me = self.id;
        let kc = self.cfg.co_leaders;
        let m = &mut self.memberships[i];
        let candidates: Vec<NodeId> = m
            .members
            .iter()
            .copied()
            .filter(|n| *n != me && !m.co_leaders.contains(n))
            .collect();
        for c in candidates {
            if m.co_leaders.len() >= kc {
                break;
            }
            m.co_leaders.push(c);
        }
    }

    /// Healing a leader performs when one of its contacts died: replace a lost
    /// co-leader, tell the group, and bridge across fully-failed child groups
    /// using the deeper succview entries.
    fn leader_heal_after(&mut self, i: usize, dead: NodeId, ctx: &mut Context<'_, DpsMsg>) {
        let me = self.id;
        let before = self.memberships[i].co_leaders.len();
        self.recruit_co_leaders(i);
        let changed = self.memberships[i].co_leaders.len() != before
            || self.memberships[i].co_leaders.len() < self.cfg.co_leaders;
        if changed {
            let m = &self.memberships[i];
            let info = DpsMsg::GroupInfo {
                label: m.label.clone(),
                leader: me,
                co_leaders: m.co_leaders.clone(),
                owner: m.owner,
                owner_epoch: m.owner_epoch,
            };
            let members: Vec<NodeId> = m.members.iter().copied().filter(|n| *n != me).collect();
            for n in members {
                ctx.send(n, info.clone());
            }
        }
        self.bridge_dead_branches(i, dead, ctx);
    }

    /// Bridge whole-group failures: a branch left with no entry in its own group
    /// is adopted through its deeper (grandchild) refs. Used by both leader-mode
    /// and epidemic healing — the multi-level views exist exactly for this
    /// ("in order to handle multiple concurrent failures involving a whole group
    /// at once", §4).
    pub(crate) fn bridge_dead_branches(
        &mut self,
        i: usize,
        dead: NodeId,
        ctx: &mut Context<'_, DpsMsg>,
    ) {
        let me = self.id;
        let mut adoptions: Vec<(GroupLabel, Vec<GroupRef>)> = Vec::new();
        {
            let m = &mut self.memberships[i];
            let mut kept: Vec<Branch> = Vec::new();
            for b in std::mem::take(&mut m.branches) {
                if b.primary().is_some() {
                    kept.push(b);
                } else if !b.refs.is_empty() {
                    // Group the deeper refs by label: each becomes a direct child.
                    let mut by_label: Vec<(GroupLabel, Vec<GroupRef>)> = Vec::new();
                    for r in &b.refs {
                        match by_label.iter_mut().find(|(l, _)| *l == r.label) {
                            Some((_, v)) => v.push(r.clone()),
                            None => by_label.push((r.label.clone(), vec![r.clone()])),
                        }
                    }
                    adoptions.extend(by_label);
                }
                // Branches with no refs at all dissolve; the orphan side
                // reattaches through its own healing.
            }
            m.branches = kept;
        }
        let depth = self.cfg.view_depth;
        for (label, refs) in adoptions {
            let info = BranchInfo {
                label: label.clone(),
                refs: refs.clone(),
            };
            self.memberships[i].upsert_branch(info.clone(), depth);
            let parent = self.descriptor(&self.memberships[i]);
            let chain = {
                let mut v = self.own_refs(&self.memberships[i]);
                v.extend(self.memberships[i].predview.iter().cloned());
                v
            };
            for r in refs.iter().filter(|r| r.node != dead && r.node != me) {
                ctx.send(
                    r.node,
                    DpsMsg::NewParent {
                        child_label: label.clone(),
                        parent: parent.clone(),
                        parent_chain: chain.clone(),
                    },
                );
            }
            // Publications that crossed the dead edge during the failure
            // window are gone for the whole adopted subtree: re-flush the
            // recent ones through the freshly bridged branch.
            self.flush_recent_to_branch(i, &info, ctx);
        }
    }

    /// Membership `i` lost every predecessor pointer: ask an ancestor to adopt us
    /// via [`DpsMsg::Reattach`], or — when the whole upper tree is gone — take
    /// ownership of the attribute and rebuild the root above ourselves.
    pub(crate) fn reattach_or_promote(&mut self, i: usize, ctx: &mut Context<'_, DpsMsg>) {
        let label = self.memberships[i].label.clone();
        let attr = label.attr().clone();
        if self.cfg.comm == CommKind::Leader && !self.memberships[i].is_leader() {
            return; // the leader of our group is responsible
        }
        let branch = BranchInfo {
            label: label.clone(),
            refs: self.own_refs(&self.memberships[i]),
        };
        let contact = self
            .known_owner(&attr)
            .filter(|o| *o != self.id && !self.suspected.contains(o))
            .or_else(|| {
                self.tree_cache
                    .get(&attr)
                    .map(|c| c.contact)
                    .filter(|c| *c != self.id && !self.suspected.contains(c))
            });
        match contact {
            Some(n) => {
                ctx.send(
                    n,
                    DpsMsg::Reattach {
                        branch,
                        ttl: 100_000,
                    },
                );
            }
            None => {
                // Nobody above us is reachable: become the owner (§4.1's tree
                // creation, replayed after catastrophic failure). Duplicate roots
                // created by racing siblings are merged by the owner walks.
                if !self.owns_tree(&attr) {
                    self.create_tree(attr.clone(), ctx);
                }
                let root_label = GroupLabel::Root(attr);
                let depth = self.cfg.view_depth;
                let me = self.id;
                if let Some(root) = self.membership_mut(&root_label) {
                    root.upsert_branch(branch, depth);
                }
                let m = &mut self.memberships[i];
                m.owner = me;
                m.set_predview(
                    vec![GroupRef {
                        label: root_label,
                        node: me,
                    }],
                    4,
                );
            }
        }
    }

    /// Routes an orphan branch down the tree to its designated predecessor and
    /// grafts it there (the descent mirrors `FIND_GROUP`).
    pub(crate) fn handle_reattach(
        &mut self,
        branch: BranchInfo,
        ttl: u32,
        ctx: &mut Context<'_, DpsMsg>,
    ) {
        if ttl == 0 {
            return;
        }
        let Some(pred) = branch.label.predicate().cloned() else {
            return;
        };
        let attr = pred.name().clone();
        let mems = self.memberships_in(&attr);
        if mems.is_empty() {
            if let Some(c) = self.tree_cache.get(&attr) {
                let to = c.contact;
                if to != self.id {
                    ctx.send(
                        to,
                        DpsMsg::Reattach {
                            branch,
                            ttl: ttl - 1,
                        },
                    );
                }
            }
            return;
        }
        // Find the deepest on-path membership we have.
        let mut best: Option<usize> = None;
        for &i in &mems {
            let l = &self.memberships[i].label;
            if l == &branch.label {
                // Duplicate of our own group: merge their contacts in.
                let me = self.id;
                let info = DpsMsg::GroupInfo {
                    label: branch.label.clone(),
                    leader: if self.memberships[i].is_leader() {
                        me
                    } else {
                        self.memberships[i].leader
                    },
                    co_leaders: self.memberships[i].co_leaders.clone(),
                    owner: self.memberships[i].owner,
                    owner_epoch: self.memberships[i].owner_epoch,
                };
                for r in &branch.refs {
                    if r.node != me {
                        ctx.send(r.node, info.clone());
                    }
                }
                return;
            }
            if l.on_path_to(&pred) {
                best = Some(match best {
                    None => i,
                    Some(b) => {
                        let lb = &self.memberships[b].label;
                        let deeper = match (lb.predicate(), l.predicate()) {
                            (None, Some(_)) => true,
                            (Some(pb), Some(pi)) => pb.strictly_includes(pi),
                            _ => false,
                        };
                        if deeper {
                            i
                        } else {
                            b
                        }
                    }
                });
            }
        }
        let Some(i) = best else {
            return;
        };
        if self.cfg.comm == CommKind::Leader && !self.memberships[i].is_leader() {
            let leader = self.memberships[i].leader;
            if leader != self.id {
                ctx.send(
                    leader,
                    DpsMsg::Reattach {
                        branch,
                        ttl: ttl - 1,
                    },
                );
            }
            return;
        }
        // Descend if a branch is on the designated path.
        let m = &self.memberships[i];
        if let Some(b) = m.branch(&branch.label) {
            // The branch already exists here: merge refs and re-point the orphan.
            let was_live = b.primary().is_some();
            // Two same-label cohorts are meeting (e.g. a dissolved duplicate
            // tree's group grafting next to the survivor's): introduce their
            // contacts to each other so the epidemic view merge can unify the
            // member views — otherwise publications entering via one cohort's
            // refs never reach the other.
            if self.cfg.comm == CommKind::Epidemic {
                let incumbents: Vec<NodeId> = b
                    .refs
                    .iter()
                    .filter(|r| r.label == branch.label)
                    .map(|r| r.node)
                    .collect();
                let newcomers: Vec<NodeId> = branch
                    .refs
                    .iter()
                    .filter(|r| r.label == branch.label)
                    .map(|r| r.node)
                    .collect();
                let fresh: Vec<NodeId> = newcomers
                    .iter()
                    .copied()
                    .filter(|n| !incumbents.contains(n))
                    .collect();
                if !incumbents.is_empty() && !fresh.is_empty() {
                    let intro = |members: Vec<NodeId>| DpsMsg::ViewPush {
                        label: branch.label.clone(),
                        members,
                        predview: Vec::new(),
                        branches: Vec::new(),
                        // Empty digest: the receiving cohort replays its whole
                        // recent window to the other side.
                        recent: Vec::new(),
                    };
                    ctx.send(incumbents[0], intro(fresh.clone()));
                    ctx.send(fresh[0], intro(incumbents.clone()));
                }
            }
            let depth = self.cfg.view_depth;
            self.memberships[i].upsert_branch(branch.clone(), depth);
            self.send_new_parent_for(i, &branch, ctx);
            if !was_live {
                self.flush_recent_to_branch(i, &branch, ctx);
            }
            return;
        }
        let branch_preds: Vec<dps_content::Predicate> = m
            .branches
            .iter()
            .filter_map(|b| b.label.predicate().cloned())
            .collect();
        if let Some(ci) = dps_content::placement::choose_branch(branch_preds.iter(), &pred) {
            let target_label = GroupLabel::Pred(branch_preds[ci].clone());
            if let Some(b) = m.branch(&target_label) {
                if let Some(n) = b.primary().or_else(|| b.refs.first().map(|r| r.node)) {
                    ctx.send(
                        n,
                        DpsMsg::Reattach {
                            branch,
                            ttl: ttl - 1,
                        },
                    );
                    return;
                }
            }
        }
        // We are the designated predecessor: graft the orphan here.
        let depth = self.cfg.view_depth;
        let was_live = self.memberships[i]
            .branch(&branch.label)
            .and_then(Branch::primary)
            .is_some();
        self.memberships[i].upsert_branch(branch.clone(), depth);
        self.send_new_parent_for(i, &branch, ctx);
        if !was_live {
            self.flush_recent_to_branch(i, &branch, ctx);
        }
    }

    fn send_new_parent_for(
        &mut self,
        i: usize,
        branch: &BranchInfo,
        ctx: &mut Context<'_, DpsMsg>,
    ) {
        let parent = self.descriptor(&self.memberships[i]);
        let mut chain = self.own_refs(&self.memberships[i]);
        chain.extend(self.memberships[i].predview.iter().cloned());
        let me = self.id;
        for r in branch.refs.iter().filter(|r| r.label == branch.label) {
            if r.node != me {
                ctx.send(
                    r.node,
                    DpsMsg::NewParent {
                        child_label: branch.label.clone(),
                        parent: parent.clone(),
                        parent_chain: chain.clone(),
                    },
                );
            }
        }
    }

    // ---- leadership announcements ----

    pub(crate) fn handle_group_info(
        &mut self,
        label: GroupLabel,
        leader: NodeId,
        co_leaders: Vec<NodeId>,
        owner: NodeId,
        owner_epoch: u64,
        ctx: &mut Context<'_, DpsMsg>,
    ) {
        let me = self.id;
        if let Some(m) = self.membership_mut(&label) {
            let owner_claim_wins = claim_beats((owner, owner_epoch), (m.owner, m.owner_epoch))
                || (owner, owner_epoch) == (m.owner, m.owner_epoch);
            if m.is_leader() && leader != me {
                // Two concurrent promotions: the smaller node id wins.
                if leader < me {
                    m.role = Role::CoLeader;
                    m.leader = leader;
                    m.co_leaders = co_leaders;
                    if owner_claim_wins {
                        m.owner = owner;
                        m.owner_epoch = owner_epoch;
                    }
                    // Our cohort is merging under the winner (same-label
                    // groups meeting after a duplicate-tree dissolve, or a
                    // promotion race): hand it our members/branches so the
                    // two member views actually unify, and point our members
                    // at the winning leader — without this the winner never
                    // learns our side existed and its forwards skip them.
                    let push = DpsMsg::ViewPush {
                        label: m.label.clone(),
                        members: m.members.clone(),
                        predview: m.predview.clone(),
                        branches: m.branches.iter().map(Branch::info).collect(),
                        recent: Vec::new(),
                    };
                    ctx.send(leader, push);
                    let info = DpsMsg::GroupInfo {
                        label: m.label.clone(),
                        leader,
                        co_leaders: m.co_leaders.clone(),
                        owner: m.owner,
                        owner_epoch: m.owner_epoch,
                    };
                    let cohort: Vec<NodeId> = m
                        .members
                        .iter()
                        .copied()
                        .filter(|n| *n != me && *n != leader)
                        .collect();
                    for n in cohort {
                        ctx.send(n, info.clone());
                    }
                } else {
                    // Reassert our leadership to the pretender.
                    let info = DpsMsg::GroupInfo {
                        label: m.label.clone(),
                        leader: me,
                        co_leaders: m.co_leaders.clone(),
                        owner: m.owner,
                        owner_epoch: m.owner_epoch,
                    };
                    ctx.send(leader, info);
                }
                return;
            }
            m.leader = leader;
            if owner_claim_wins {
                m.owner = owner;
                m.owner_epoch = owner_epoch;
            }
            m.co_leaders = co_leaders.clone();
            m.add_member(leader);
            if leader == me {
                // Leadership handover (e.g. the previous leader unsubscribed and
                // named us heir).
                m.role = Role::Leader;
            } else if co_leaders.contains(&me) {
                m.role = Role::CoLeader;
            } else if m.role == Role::CoLeader {
                m.role = Role::Member;
            }
            return;
        }
        // Not our group: it may be a neighbor group we point at.
        let fresh: Vec<GroupRef> = std::iter::once(leader)
            .chain(co_leaders.iter().copied())
            .map(|n| GroupRef {
                label: label.clone(),
                node: n,
            })
            .collect();
        for m in &mut self.memberships {
            if let Some(b) = m.branch_mut(&label) {
                // Refresh the in-group entries, keeping deeper levels.
                b.refs.retain(|r| r.label != label);
                let mut refs = fresh.clone();
                refs.append(&mut b.refs);
                b.refs = refs;
                b.refs.dedup();
            }
            if m.predview.iter().any(|r| r.label == label) {
                // The refreshed entries replace the stale ones in front: this
                // group is our nearest known predecessor level.
                m.predview.retain(|r| r.label != label);
                let mut pv = fresh.clone();
                pv.append(&mut m.predview);
                m.predview = pv;
            }
        }
    }

    pub(crate) fn handle_leader_gone(
        &mut self,
        label: GroupLabel,
        dead: NodeId,
        ctx: &mut Context<'_, DpsMsg>,
    ) {
        self.suspected.insert(dead);
        let Some(i) = self.membership_index(&label) else {
            return;
        };
        if self.memberships[i].leader != dead || self.memberships[i].is_leader() {
            return; // stale alarm
        }
        self.memberships[i].forget_node(dead);
        self.leader_takeover(i, dead, ctx);
    }

    pub(crate) fn handle_leave(
        &mut self,
        label: GroupLabel,
        member: NodeId,
        ctx: &mut Context<'_, DpsMsg>,
    ) {
        let Some(m) = self.membership_mut(&label) else {
            return;
        };
        m.forget_node(member);
        if m.is_leader() {
            let msg = DpsMsg::MemberLeft {
                label: label.clone(),
                member,
            };
            let cos = m.co_leaders.clone();
            for c in cos {
                ctx.send(c, msg.clone());
            }
            let i = self.membership_index(&label).unwrap();
            self.recruit_co_leaders(i);
        }
    }

    // ---- periodic maintenance ----

    /// Periodic work beyond heartbeats: peer shuffles, view exchange (leader
    /// mode), anti-entropy/merge pushes (epidemic mode), duplicate-tree walks.
    pub(crate) fn tick_periodic(&mut self, ctx: &mut Context<'_, DpsMsg>) {
        let now = ctx.now();
        let phase = self.id.index() as u64;

        // Peer shuffle every ~16 steps.
        if (now + phase).is_multiple_of(16) {
            let sample = self.peer_sample(ctx, 4);
            if let Some(p) = self.peer_sample(ctx, 1).first().copied() {
                ctx.send(p, DpsMsg::Shuffle { peers: sample });
            }
        }

        let exch = self.cfg.view_exchange_every.max(1);
        if (now + phase).is_multiple_of(exch) {
            match self.cfg.comm {
                CommKind::Leader => self.leader_view_exchange(ctx),
                CommKind::Epidemic => self.epidemic_merge_push(ctx),
            }
            // Expire blocks whose CreateDone was lost to a crash, flushing the
            // withheld events toward whatever contact the branch still has.
            let limit = 2 * self.cfg.request_timeout;
            for i in 0..self.memberships.len() {
                let mut flush = Vec::new();
                for b in &mut self.memberships[i].branches {
                    if b.blocked && now.saturating_sub(b.blocked_since) > limit {
                        b.blocked = false;
                        flush.push((b.info(), std::mem::take(&mut b.buffered)));
                    }
                }
                for (info, tickets) in flush {
                    for t in tickets {
                        self.send_to_branch(&info, t, ctx);
                    }
                }
            }
            // Orphans retry their reattachment.
            for i in 0..self.memberships.len() {
                if self.memberships[i].predview.is_empty() && !self.memberships[i].label.is_root() {
                    self.reattach_or_promote(i, ctx);
                }
            }
        }

        let merge = self.cfg.owner_merge_every.max(1);
        if (now + phase).is_multiple_of(merge) {
            self.owner_merge_walk(ctx);
        }
    }

    /// Leader-mode view exchange: parent chain down, child report up, full mirror
    /// to co-leaders (keeps multi-level views warm, §4: views "point not only to
    /// nodes in the direct successor group but also to successors/predecessors at
    /// upper/lower levels, in order to handle multiple concurrent failures
    /// involving a whole group at once").
    fn leader_view_exchange(&mut self, ctx: &mut Context<'_, DpsMsg>) {
        let me = self.id;
        for i in 0..self.memberships.len() {
            if !self.memberships[i].is_leader() {
                continue;
            }
            let m = &self.memberships[i];
            let label = m.label.clone();
            // Down: each child receives our identity plus our own predecessors.
            let mut chain = self.own_refs(m);
            chain.extend(m.predview.iter().cloned());
            chain.truncate(self.cfg.view_depth + self.cfg.co_leaders + 2);
            for b in &m.branches {
                if let Some(n) = b.primary() {
                    if n != me {
                        ctx.send(
                            n,
                            DpsMsg::ParentChain {
                                child_label: b.label.clone(),
                                chain: chain.clone(),
                            },
                        );
                    }
                }
            }
            // Up: report ourselves and our children to the parent.
            if let Some(parent) = m.predview.first().cloned() {
                let mut refs = self.own_refs(m);
                for b in &m.branches {
                    refs.extend(
                        b.refs
                            .iter()
                            .filter(|r| r.label == b.label)
                            .take(1)
                            .cloned(),
                    );
                }
                if parent.node != me {
                    ctx.send(
                        parent.node,
                        DpsMsg::ChildReport {
                            parent_label: parent.label.clone(),
                            branch: BranchInfo {
                                label: label.clone(),
                                refs,
                            },
                        },
                    );
                }
            }
            // Mirror to co-leaders.
            let m = &self.memberships[i];
            let push = DpsMsg::ViewPush {
                label: label.clone(),
                members: m.members.clone(),
                predview: m.predview.clone(),
                branches: m.branches.iter().map(Branch::info).collect(),
                recent: self.recent_digest(),
            };
            for c in m.co_leaders.clone() {
                if c != me {
                    ctx.send(c, push.clone());
                }
            }
        }
    }

    /// Epidemic merge process (§4.2.2): periodically push the succview to
    /// successors and a view digest to a random member; receivers discover nodes
    /// they did not know, merging divergent groups.
    fn epidemic_merge_push(&mut self, ctx: &mut Context<'_, DpsMsg>) {
        let me = self.id;
        for i in 0..self.memberships.len() {
            let m = &self.memberships[i];
            let push = DpsMsg::ViewPush {
                label: m.label.clone(),
                members: m.members.clone(),
                predview: m.predview.clone(),
                branches: m.branches.iter().map(Branch::info).collect(),
                recent: self.recent_digest(),
            };
            let mut targets: Vec<NodeId> = Vec::new();
            if let Some(n) = m
                .members
                .iter()
                .copied()
                .filter(|n| *n != me && !self.suspected.contains(n))
                .choose(ctx.rng())
            {
                targets.push(n);
            }
            for b in &m.branches {
                if let Some(r) = b.refs.iter().find(|r| !self.suspected.contains(&r.node)) {
                    if r.node != me {
                        targets.push(r.node);
                    }
                }
            }
            for t in targets {
                ctx.send(t, push.clone());
            }
            // Multi-level exchange, as the leader-mode view exchange does: report
            // ourselves and our children upward so ancestors can bridge our whole
            // group failing; ship our predecessor chain downward. The report goes
            // to the first two live-believed parent entries — with a single
            // (possibly stale) target, one dead parent contact silences the
            // child for whole exchange periods.
            let parents: Vec<GroupRef> = m
                .predview
                .iter()
                .filter(|r| r.node != me && !self.suspected.contains(&r.node))
                .take(2)
                .cloned()
                .collect();
            if !parents.is_empty() {
                let mut refs = self.own_refs(m);
                for b in &m.branches {
                    refs.extend(
                        b.refs
                            .iter()
                            .filter(|r| r.label == b.label)
                            .take(1)
                            .cloned(),
                    );
                }
                for parent in parents {
                    ctx.send(
                        parent.node,
                        DpsMsg::ChildReport {
                            parent_label: parent.label.clone(),
                            branch: BranchInfo {
                                label: m.label.clone(),
                                refs: refs.clone(),
                            },
                        },
                    );
                }
            }
            let mut chain = self.own_refs(m);
            chain.extend(m.predview.iter().cloned());
            chain.truncate(self.cfg.view_depth + 3);
            for b in &m.branches {
                if let Some(r) = b
                    .refs
                    .iter()
                    .find(|r| r.label == b.label && !self.suspected.contains(&r.node))
                {
                    if r.node != me {
                        ctx.send(
                            r.node,
                            DpsMsg::ParentChain {
                                child_label: b.label.clone(),
                                chain: chain.clone(),
                            },
                        );
                    }
                }
            }
        }
    }

    /// A child refreshed its branch entry. Before accepting it we re-check
    /// constraint C2: if another of our branches lies on the child's designated
    /// path (it was re-parented while this report was in flight), the child
    /// belongs below that branch — route it down instead of resurrecting a stale
    /// direct edge.
    pub(crate) fn handle_child_report(
        &mut self,
        parent_label: GroupLabel,
        branch: BranchInfo,
        ctx: &mut Context<'_, DpsMsg>,
    ) {
        let depth = self.cfg.view_depth;
        let ttl = self.cfg.walk_ttl;
        let Some(i) = self.membership_index(&parent_label) else {
            return;
        };
        if let Some(pred) = branch.label.predicate() {
            let deeper: Vec<dps_content::Predicate> = self.memberships[i]
                .branches
                .iter()
                .filter(|b| b.label != branch.label)
                .filter_map(|b| b.label.predicate().cloned())
                .collect();
            if let Some(ci) = dps_content::placement::choose_branch(deeper.iter(), pred) {
                let via = GroupLabel::Pred(deeper[ci].clone());
                self.memberships[i].remove_branch(&branch.label);
                if let Some(b) = self.memberships[i].branch(&via) {
                    if let Some(n) = b.primary().or_else(|| b.refs.first().map(|r| r.node)) {
                        ctx.send(n, DpsMsg::Reattach { branch, ttl });
                        return;
                    }
                }
                return;
            }
        }
        let was_live = self.memberships[i]
            .branch(&branch.label)
            .and_then(Branch::primary)
            .is_some();
        self.memberships[i].upsert_branch(branch.clone(), depth);
        if !was_live {
            // The child went silent long enough to lose its direct entry (or
            // was never attached here): besides restoring the pointer, replay
            // what it may have missed.
            self.flush_recent_to_branch(i, &branch, ctx);
        }
    }

    pub(crate) fn handle_view_pull(
        &mut self,
        from: NodeId,
        label: GroupLabel,
        ctx: &mut Context<'_, DpsMsg>,
    ) {
        let Some(m) = self.membership(&label) else {
            return;
        };
        ctx.send(
            from,
            DpsMsg::ViewPush {
                label,
                members: m.members.clone(),
                predview: m.predview.clone(),
                branches: m.branches.iter().map(Branch::info).collect(),
                recent: self.recent_digest(),
            },
        );
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_view_push(
        &mut self,
        from: NodeId,
        label: GroupLabel,
        members: Vec<NodeId>,
        predview: Vec<GroupRef>,
        branches: Vec<BranchInfo>,
        recent: Vec<PubId>,
        ctx: &mut Context<'_, DpsMsg>,
    ) {
        let epidemic = self.cfg.comm == CommKind::Epidemic;
        let cap = if epidemic {
            self.cfg.group_view_cap
        } else {
            usize::MAX
        };
        let depth = self.cfg.view_depth;
        let pv_cap = self.cfg.view_depth + self.cfg.co_leaders + 2;
        let suspected: Vec<NodeId> = members
            .iter()
            .copied()
            .filter(|n| self.suspected.contains(n))
            .collect();
        let me = self.id;
        let Some(m) = self.membership_mut(&label) else {
            return;
        };
        for n in members {
            if !suspected.contains(&n) {
                m.add_member(n);
            }
        }
        m.evict_members_to_cap(cap, me, ctx.rng());
        m.merge_predview(&predview, pv_cap);
        for b in branches {
            if b.label != label {
                m.upsert_branch(b, depth);
            }
        }
        // A leader absorbing members it did not know (a demoted same-label
        // cohort handing itself over) tops its co-leadership back up from the
        // enlarged membership and announces, so the merged group can survive
        // the leader leaving or crashing — and so the newcomers learn they
        // are ours.
        if !epidemic {
            if let Some(i) = self.membership_index(&label) {
                if self.memberships[i].is_leader() {
                    let before = self.memberships[i].co_leaders.clone();
                    self.recruit_co_leaders(i);
                    let m = &self.memberships[i];
                    if m.co_leaders != before {
                        let info = DpsMsg::GroupInfo {
                            label: m.label.clone(),
                            leader: me,
                            co_leaders: m.co_leaders.clone(),
                            owner: m.owner,
                            owner_epoch: m.owner_epoch,
                        };
                        let members: Vec<NodeId> =
                            m.members.iter().copied().filter(|n| *n != me).collect();
                        for n in members {
                            ctx.send(n, info.clone());
                        }
                    }
                }
            }
        }
        // Publication anti-entropy (the merge process applied to events, in
        // the spirit of lpbcast): answer the pusher with the fresh matching
        // publications we hold. A member that partial-view gossip skipped
        // pushes its view somewhere within a couple of exchange periods and
        // gets the missed events straight back; receivers deduplicate, so the
        // exchange is idempotent.
        if epidemic {
            let now = ctx.now();
            let window = 4 * self.cfg.view_exchange_every;
            let missing: Vec<(PubId, SharedEvent)> = self
                .recent_pubs
                .iter()
                .filter(|(id, _, _)| !recent.contains(id))
                .filter(|(_, _, at)| now.saturating_sub(*at) <= window)
                .filter(|(_, ev, _)| label.matches_event(ev))
                .map(|(id, ev, _)| (*id, ev.clone()))
                .collect();
            for (id, event) in missing {
                ctx.send(
                    from,
                    DpsMsg::PublishGroup {
                        id,
                        event,
                        label: label.clone(),
                    },
                );
            }
        }
    }

    /// Pending-request timeouts, from `on_tick`.
    pub(crate) fn tick_pending(&mut self, ctx: &mut Context<'_, DpsMsg>) {
        let now = ctx.now();
        self.walks.retain(|w| w.deadline > now);
        self.retry_due_subscriptions(ctx);
        self.retry_due_publications(ctx);
    }
}
